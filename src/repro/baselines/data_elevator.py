"""Data Elevator reimplementation (Dong et al., HiPC'16; §III-A here).

Data Elevator transparently redirects writes aimed at the PFS into the
shared burst buffer and asynchronously flushes them to Lustre.  The three
design differences from UniviStor that the evaluation leans on:

1. the cache keeps the application's **one shared HDF5 file** layout
   (DataWarp stripes it across BB nodes; N-to-1 contention follows),
   where UniviStor's DHP re-formats into file-per-process logs;
2. it can only cache on the **shared burst buffer** — node-local DRAM is
   out of reach;
3. its flush uses the system-**default striping** and has no
   interference-aware scheduling of the flushing servers.

Like UniviStor in the evaluation, Data Elevator runs 2 server processes
per compute node (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.analysis.metrics import Telemetry
from repro.cluster.cpu import PlacementPolicy, cpu_availability
from repro.cluster.topology import Machine
from repro.core.striping import default_plan
from repro.sim.engine import Event
from repro.simmpi.adio import ADIODriver, OpenContext
from repro.simmpi.mpiio import IORequest
from repro.storage.posix import SimFile

__all__ = ["DataElevatorConfig", "DataElevatorServers", "DataElevatorDriver"]

DE_PROGRAM = "data-elevator-server"


@dataclass(frozen=True)
class DataElevatorConfig:
    """Deployment knobs for the Data Elevator baseline.

    Mirrors :class:`~repro.core.config.UniviStorConfig` so both systems
    install the same way: ``sim.install_data_elevator(config)``.
    """

    servers_per_node: int = 2  # the evaluation runs 2 per node (§III-A)

    def __post_init__(self):
        if self.servers_per_node < 1:
            raise ValueError("servers_per_node must be >= 1")


class DataElevatorServers:
    """The Data Elevator server program (2 per node, like the evaluation)."""

    def __init__(self, machine: Machine,
                 config: Optional[DataElevatorConfig] = None):
        self.machine = machine
        self.engine = machine.engine
        self.config = config or DataElevatorConfig()
        self.servers_per_node = servers_per_node = self.config.servers_per_node
        if machine.burst_buffer is None:
            raise ValueError("Data Elevator requires a shared burst buffer")
        machine.register_program(DE_PROGRAM,
                                 len(machine.nodes) * servers_per_node,
                                 kind="server",
                                 procs_per_node=servers_per_node)
        self.total_servers = len(machine.nodes) * servers_per_node

    def flush_cpu_efficiency(self) -> float:
        """DE has no interference-aware migration: its flushing servers
        time-share with whatever the OS scheduler stacked them with."""
        vals = []
        for node in self.machine.nodes:
            if node.procs_of(DE_PROGRAM) == 0:
                continue
            vals.append(cpu_availability(
                node.placement(PlacementPolicy.CFS), DE_PROGRAM,
                self.machine.spec.scheduling))
        return sum(vals) / len(vals) if vals else 1.0


@dataclass
class _Session:
    """Server-side state for one cached shared file."""

    path: str
    bb_file: SimFile
    bytes_cached: float = 0.0
    flushed_bytes: float = 0.0
    flush_event: Optional[Event] = None
    #: Application that produced the cached data.  Data Elevator is a
    #: *write* cache: the producing application's own reads are redirected
    #: to the BB copy, but a different application opening the file gets
    #: the PFS copy — it must wait for the flush and read from Lustre.
    #: (This is the §III-D behaviour that costs DE so dearly in the
    #: workflow experiments while its §III-B micro-benchmark reads, issued
    #: by the writing job itself, stay burst-buffer fast.)
    writer_app: Optional[str] = None


@dataclass
class _OpenFile:
    ctx: OpenContext
    session: _Session
    wrote: bool = False


class DataElevatorDriver(ADIODriver):
    """Data Elevator's transparent-caching driver."""

    name = "data_elevator"

    def __init__(self, servers: DataElevatorServers, telemetry: Telemetry):
        self.servers = servers
        self.machine = servers.machine
        self.engine = servers.engine
        self.telemetry = telemetry
        self._sessions: Dict[str, _Session] = {}

    def _session(self, path: str) -> _Session:
        sess = self._sessions.get(path)
        if sess is None:
            sess = _Session(path=path,
                            bb_file=self.machine.bb_files.create(path))
            self._sessions[path] = sess
        return sess

    # -- ADIO surface ------------------------------------------------------------
    def open(self, ctx: OpenContext) -> Generator:
        t0 = self.engine.now
        yield self.machine.network.rpc(1, serialized=False)
        yield ctx.comm.bcast_small()
        state = _OpenFile(ctx=ctx, session=self._session(ctx.path))
        self.telemetry.record(app=ctx.comm.name, op="open", path=ctx.path,
                              t_start=t0, driver=self.name)
        return state

    def write_at_all(self, state: _OpenFile, requests: List[IORequest]
                     ) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        sess = state.session
        total = 0.0
        writers = 0
        for req in requests:
            if req.length == 0:
                continue
            sess.bb_file.write_at(req.offset, req.length, req.payload,
                                  req.payload_offset)
            total += req.length
            writers += 1
        if writers:
            bb = self.machine.burst_buffer
            net = self.machine.network
            cap = min(bb.client_write_cap(ctx.comm.procs_per_node),
                      net.injection_cap(ctx.comm.procs_per_node))
            # The cache keeps the shared-file layout: N-to-1 penalty.
            yield bb.write(total / writers, streams=writers,
                           shared_file=True, per_stream_cap=cap,
                           tag=f"de-write:{ctx.path}")
        sess.bytes_cached += total
        state.wrote = state.wrote or total > 0
        if total > 0 and sess.writer_app is None:
            sess.writer_app = ctx.comm.name
        self.telemetry.record(app=ctx.comm.name, op="write", path=ctx.path,
                              t_start=t0, nbytes=total, driver=self.name)

    def read_at_all(self, state: _OpenFile, requests: List[IORequest]
                    ) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        sess = state.session
        cross_app = (sess.writer_app is not None
                     and sess.writer_app != ctx.comm.name)
        if cross_app:
            # Another application's data: DE only guarantees the PFS
            # copy — wait for the flush, then read from Lustre.
            if sess.flush_event is not None and not sess.flush_event.processed:
                yield sess.flush_event
            source = self.machine.pfs_files.open(sess.path)
        else:
            source = sess.bb_file
        results: Dict[int, list] = {}
        total = 0.0
        readers = 0
        for req in requests:
            results[req.rank] = source.read_at(req.offset, req.length)
            if req.length > 0:
                total += req.length
                readers += 1
        if readers:
            net = self.machine.network
            if cross_app:
                lustre = self.machine.lustre
                cap = min(net.injection_cap(ctx.comm.procs_per_node),
                          lustre.spec.client_node_bandwidth
                          / ctx.comm.procs_per_node)
                yield lustre.read_shared_file(
                    total / readers, readers=readers, per_stream_cap=cap,
                    tag=f"de-read-pfs:{ctx.path}")
            else:
                bb = self.machine.burst_buffer
                cap = min(bb.client_read_cap(ctx.comm.procs_per_node),
                          net.injection_cap(ctx.comm.procs_per_node))
                yield bb.read(total / readers, streams=readers,
                              shared_file=True, per_stream_cap=cap,
                              tag=f"de-read:{ctx.path}")
        self.telemetry.record(app=ctx.comm.name, op="read", path=ctx.path,
                              t_start=t0, nbytes=total, driver=self.name)
        return results

    def close(self, state: _OpenFile) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        yield self.machine.network.rpc(1, serialized=False)
        if state.wrote:
            self._start_flush(state.session, ctx.comm.name)
        self.telemetry.record(app=ctx.comm.name, op="close", path=ctx.path,
                              t_start=t0, driver=self.name)

    def sync(self, state: _OpenFile) -> Generator:
        sess = state.session
        if sess.flush_event is not None and not sess.flush_event.processed:
            yield sess.flush_event

    # -- flush ------------------------------------------------------------
    def _start_flush(self, sess: _Session, app: str) -> Event:
        pending = sess.bytes_cached - sess.flushed_bytes
        if pending <= 0:
            ev = self.engine.event(name="de-flush-noop")
            ev.succeed(0.0)
            sess.flush_event = ev
            return ev
        proc = self.engine.process(self._flush(sess, pending, app),
                                   name=f"de-flush:{sess.path}")
        sess.flush_event = proc
        return proc

    def _flush(self, sess: _Session, pending: float, app: str) -> Generator:
        t0 = self.engine.now
        machine = self.machine
        servers = self.servers.total_servers
        # Default striping, shared-file output layout, no IA migration.
        plan = default_plan(pending, servers, machine.spec.lustre)
        cpu_eff = self.servers.flush_cpu_efficiency()
        injection_cap = machine.network.injection_cap(
            self.servers.servers_per_node)
        bb = machine.burst_buffer
        flows = [
            machine.lustre.write_with_layout(
                plan.bytes_per_server, plan.layout,
                per_stream_cap=injection_cap, efficiency=cpu_eff,
                shared_file_writers=servers,
                tag=f"de-flush-write:{sess.path}"),
            bb.read(pending / servers, streams=servers,
                    per_stream_cap=bb.flush_cap(self.servers.servers_per_node),
                    efficiency=cpu_eff, tag=f"de-flush-read:{sess.path}"),
        ]
        yield self.engine.all_of(flows)
        # Functionally materialise on the PFS.
        out = machine.pfs_files.create(sess.path)
        for extent in sess.bb_file.read_at(0, sess.bb_file.size):
            out.write_at(extent.offset, extent.length, extent.payload,
                         extent.payload_offset)
        sess.flushed_bytes += pending
        self.telemetry.record(app=app, op="flush", path=sess.path,
                              t_start=t0, nbytes=pending, driver=self.name)
        return pending
