"""The paper's comparison systems (§III-A).

* :class:`~repro.baselines.lustre_direct.LustreDirectDriver` — plain
  MPI-IO onto the disk-based Lustre PFS: one shared file, N-to-1 writes,
  no caching tier.
* :class:`~repro.baselines.data_elevator.DataElevatorDriver` — a
  reimplementation of Data Elevator (Dong et al., HiPC'16): transparent
  caching of the shared HDF5 file on the *shared burst buffer* and an
  asynchronous server-side flush to Lustre.  Unlike UniviStor it keeps
  the shared-file layout on the BB (no file-per-process transformation),
  cannot use node-local DRAM, and flushes with default striping and no
  interference-aware scheduling — exactly the differences the evaluation
  attributes UniviStor's wins to.
"""

from repro.baselines.data_elevator import (
    DataElevatorConfig,
    DataElevatorDriver,
    DataElevatorServers,
)
from repro.baselines.lustre_direct import LustreDirectDriver

__all__ = [
    "DataElevatorConfig",
    "DataElevatorDriver",
    "DataElevatorServers",
    "LustreDirectDriver",
]
