"""Plain-Lustre baseline: MPI-IO straight onto the PFS (§III-A).

"Applications can only use Lustre to write data from local DRAM to the
file system" — one shared file, N-to-1 access, the system-default stripe
settings, no caching anywhere.

The driver also implements ROMIO's classic **two-phase collective
buffering** as an opt-in hint (``hints={"cb_nodes": N}``): ranks shuffle
their data to N aggregator processes over the interconnect, and only the
aggregators touch Lustre — far fewer writers on the extent locks, at the
cost of an extra network pass.  The paper's baseline runs without it (its
Lustre numbers match untuned N-to-1 behaviour); the
``test_ablation_collective_buffering`` bench quantifies how much of
UniviStor's win survives a tuned baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.analysis.metrics import Telemetry
from repro.cluster.topology import Machine
from repro.simmpi.adio import ADIODriver, OpenContext
from repro.simmpi.mpiio import IORequest
from repro.storage.posix import SimFile

__all__ = ["LustreDirectDriver"]


@dataclass
class _OpenFile:
    ctx: OpenContext
    sim_file: SimFile
    #: Aggregator count for two-phase collective buffering (0 = off).
    cb_nodes: int = 0


class LustreDirectDriver(ADIODriver):
    """The ``ufs``-on-Lustre ADIO driver."""

    name = "lustre"

    def __init__(self, machine: Machine, telemetry: Telemetry):
        self.machine = machine
        self.engine = machine.engine
        self.telemetry = telemetry

    def open(self, ctx: OpenContext) -> Generator:
        t0 = self.engine.now
        net = self.machine.network
        # Collective open: rank 0 creates/stats at the MDS, broadcast.
        yield self.engine.timeout(self.machine.spec.lustre.latency)
        yield net.rpc(1, serialized=False)
        yield ctx.comm.bcast_small()
        sim_file = self.machine.pfs_files.create(ctx.path)
        cb_nodes = int(ctx.hints.get("cb_nodes", 0))
        if cb_nodes < 0:
            raise ValueError(f"cb_nodes must be >= 0, got {cb_nodes}")
        self.telemetry.record(app=ctx.comm.name, op="open", path=ctx.path,
                              t_start=t0, driver=self.name)
        return _OpenFile(ctx=ctx, sim_file=sim_file, cb_nodes=cb_nodes)

    def write_at_all(self, state: _OpenFile, requests: List[IORequest]
                     ) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        total = 0.0
        writers = 0
        for req in requests:
            if req.length == 0:
                continue
            state.sim_file.write_at(req.offset, req.length, req.payload,
                                    req.payload_offset)
            total += req.length
            writers += 1
        if writers and state.cb_nodes > 0:
            yield from self._two_phase_write(state, total, writers)
        elif writers:
            lustre = self.machine.lustre
            net = self.machine.network
            cap = min(net.injection_cap(ctx.comm.procs_per_node),
                      lustre.spec.client_node_bandwidth
                      / ctx.comm.procs_per_node)
            yield lustre.write_shared_file(total / writers, writers=writers,
                                           per_stream_cap=cap,
                                           tag=f"lustre-write:{ctx.path}")
        self.telemetry.record(app=ctx.comm.name, op="write", path=ctx.path,
                              t_start=t0, nbytes=total, driver=self.name)

    def _two_phase_write(self, state: _OpenFile, total: float,
                         writers: int) -> Generator:
        """ROMIO collective buffering: shuffle to aggregators, then few
        contiguous-range writers hit Lustre."""
        ctx = state.ctx
        lustre = self.machine.lustre
        net = self.machine.network
        aggregators = min(state.cb_nodes, writers)
        # Phase 1: all ranks exchange data with the aggregators.
        yield net.transfer(total / writers, streams=writers,
                           streams_per_node=ctx.comm.procs_per_node,
                           tag=f"cb-shuffle:{ctx.path}")
        # Phase 2: aggregators write contiguous, lock-aligned ranges —
        # the mild range contention instead of the N-to-1 plateau.
        from repro.core.striping import default_plan
        plan = default_plan(max(total, 1.0), aggregators, lustre.spec)
        agg_per_node = max(1, aggregators // len(self.machine.nodes))
        # Aggregators ride the same llite/LNET client path as any rank.
        cap = min(net.injection_cap(agg_per_node),
                  lustre.spec.client_node_bandwidth / agg_per_node)
        yield lustre.write_with_layout(
            total / aggregators, plan.layout, per_stream_cap=cap,
            shared_file_writers=aggregators,
            tag=f"cb-write:{ctx.path}")

    def read_at_all(self, state: _OpenFile, requests: List[IORequest]
                    ) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        results: Dict[int, list] = {}
        total = 0.0
        readers = 0
        for req in requests:
            results[req.rank] = state.sim_file.read_at(req.offset, req.length)
            if req.length > 0:
                total += req.length
                readers += 1
        if readers:
            lustre = self.machine.lustre
            net = self.machine.network
            cap = min(net.injection_cap(ctx.comm.procs_per_node),
                      lustre.spec.client_node_bandwidth
                      / ctx.comm.procs_per_node)
            yield lustre.read_shared_file(total / readers, readers=readers,
                                          per_stream_cap=cap,
                                          tag=f"lustre-read:{ctx.path}")
        self.telemetry.record(app=ctx.comm.name, op="read", path=ctx.path,
                              t_start=t0, nbytes=total, driver=self.name)
        return results

    def close(self, state: _OpenFile) -> Generator:
        t0 = self.engine.now
        yield self.machine.network.rpc(1, serialized=False)
        self.telemetry.record(app=state.ctx.comm.name, op="close",
                              path=state.ctx.path, t_start=t0,
                              driver=self.name)
