"""Point-to-point messaging between simulated ranks.

The evaluation's applications coordinate through files (that is the
paper's point — §II-E), but a simulated MPI substrate should also offer
plain ``send``/``recv`` so users can build coupled applications that
exchange control messages or stream data directly (the DataSpaces-style
in-transit pattern the paper contrasts itself with).

Semantics: eager, buffered, FIFO per (source, destination) channel —
``send`` completes when the payload has left the source (timed by the
interconnect for cross-node pairs, by a memory copy for intra-node),
``recv`` blocks until a matching message arrives.  Messages between the
same pair are never reordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Tuple

from repro.sim.resources import Store
from repro.simmpi.comm import Communicator

__all__ = ["Message", "MessageContext"]


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    source: int
    dest: int
    nbytes: float
    payload: Any = None
    tag: int = 0


class MessageContext:
    """Mailboxes + timing for one communicator's ranks."""

    #: Effective per-message intra-node copy bandwidth (shared-memory
    #: transport) and software latency.
    INTRA_NODE_BANDWIDTH = 25e9
    SOFTWARE_LATENCY = 2e-6

    def __init__(self, comm: Communicator):
        self.comm = comm
        self.engine = comm.engine
        self._boxes: Dict[Tuple[int, int], Store] = {}
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def _box(self, source: int, dest: int) -> Store:
        key = (source, dest)
        box = self._boxes.get(key)
        if box is None:
            box = Store(self.engine, name=f"p2p:{source}->{dest}")
            self._boxes[key] = box
        return box

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.comm.size:
            raise ValueError(f"rank {rank} outside [0, {self.comm.size})")

    # -- operations ---------------------------------------------------------
    def send(self, source: int, dest: int, nbytes: float,
             payload: Any = None, tag: int = 0) -> Generator:
        """Timed eager send; completes when the payload left the source."""
        self._check_rank(source)
        self._check_rank(dest)
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        src_node = self.comm.node_of_rank(source)
        dst_node = self.comm.node_of_rank(dest)
        if src_node.node_id == dst_node.node_id:
            yield self.engine.timeout(
                self.SOFTWARE_LATENCY + nbytes / self.INTRA_NODE_BANDWIDTH)
        else:
            net = self.comm.machine.network
            yield net.transfer(nbytes, streams=1,
                               streams_per_node=1,
                               tag=f"p2p:{source}->{dest}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self._box(source, dest).put(
            Message(source, dest, nbytes, payload, tag))

    def recv(self, dest: int, source: int) -> Generator:
        """Blocking receive of the next message from ``source``."""
        self._check_rank(source)
        self._check_rank(dest)
        message = yield self._box(source, dest).get()
        return message

    def sendrecv(self, a: int, b: int, nbytes: float,
                 payload: Any = None) -> Generator:
        """Convenience ping: a sends to b, returns b's received message."""
        yield from self.send(a, b, nbytes, payload)
        message = yield from self.recv(b, a)
        return message

    def pending(self, source: int, dest: int) -> int:
        """Messages queued from ``source`` to ``dest`` (not yet received)."""
        return len(self._box(source, dest))
