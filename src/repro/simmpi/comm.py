"""Communicators: an application's ranks and their node placement.

A :class:`Communicator` plays the role of ``MPI_COMM_WORLD`` for one
simulated parallel application: it knows how many ranks the application
has, which compute node each rank runs on (block distribution, the MPI
default), and prices small-message collectives using the interconnect
model.  Creating a communicator registers the program on its nodes so the
CPU-placement model (§II-C) sees it.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.cluster.node import ComputeNode
from repro.cluster.topology import Machine
from repro.sim.engine import Engine, Event

__all__ = ["Communicator"]


class Communicator:
    """The ranks of one parallel program and their placement."""

    def __init__(self, machine: Machine, name: str, size: int,
                 procs_per_node: Optional[int] = None,
                 kind: str = "client", node_offset: int = 0):
        """``node_offset`` places the program's first rank on a later
        node — producer and consumer applications on *disjoint* node sets
        (the in-transit configuration of §I)."""
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.machine = machine
        self.engine: Engine = machine.engine
        self.name = name
        self.size = size
        n_nodes = len(machine.nodes)
        if procs_per_node is None:
            procs_per_node = math.ceil(size / max(1, n_nodes - node_offset))
        self.procs_per_node = procs_per_node
        self.kind = kind
        self.node_offset = node_offset
        self._per_node_counts = machine.register_program(
            name, size, kind=kind, procs_per_node=procs_per_node,
            node_offset=node_offset)

    # -- topology queries -------------------------------------------------
    def node_of_rank(self, rank: int) -> ComputeNode:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        idx = self.node_offset + rank // self.procs_per_node
        if idx >= len(self.machine.nodes):
            raise ValueError(f"rank {rank} maps past the last node")
        return self.machine.nodes[idx]

    def shard_of_rank(self, rank: int) -> int:
        """Engine shard key for a process acting as this rank: its node
        id, so node-local processes share an event queue on a sharded
        engine (``Engine(shards=N)`` reduces the key modulo N; inert on
        the default single-shard engine)."""
        return self.node_of_rank(rank).node_id

    def ranks_on_node(self, node_id: int) -> List[int]:
        lo = (node_id - self.node_offset) * self.procs_per_node
        hi = min(self.size, lo + self.procs_per_node)
        if node_id < self.node_offset or lo >= self.size:
            return []
        return list(range(max(0, lo), hi))

    @property
    def nodes_used(self) -> List[ComputeNode]:
        return [n for n in self.machine.nodes
                if self._per_node_counts[n.node_id] > 0]

    def procs_on_node(self, node_id: int) -> int:
        return self._per_node_counts[node_id]

    # -- timed collectives (small messages) ---------------------------------
    def barrier(self) -> Event:
        """Dissemination barrier: ceil(log2 p) network hops."""
        net = self.machine.network
        if self.size <= 1:
            return self.engine.timeout(0.0)
        hops = math.ceil(math.log2(self.size))
        return self.engine.timeout(hops * 2 * net.spec.latency)

    def bcast_small(self) -> Event:
        """Broadcast of a small (metadata-sized) message from the root."""
        return self.engine.timeout(
            self.machine.network.bcast_cost(self.size))

    def gather_small(self) -> Event:
        """Gather of small messages to the root (tree, same cost shape)."""
        return self.engine.timeout(
            self.machine.network.bcast_cost(self.size))

    # -- timed data collectives (bulk payloads) --------------------------
    def _data_collective(self, wire_bytes_per_rank: float,
                         rounds: int) -> Event:
        """Completion event: each rank pushes ``wire_bytes_per_rank``
        through its node's injection share, plus per-round latency."""
        net = self.machine.network.spec
        per_rank_bw = net.injection_bandwidth / max(1, self.procs_per_node)
        return self.engine.timeout(wire_bytes_per_rank / per_rank_bw
                                   + rounds * 2 * net.latency)

    def allgather(self, nbytes_per_rank: float) -> Event:
        """MPI_Allgather of ``nbytes_per_rank`` contributions: every rank
        ends with p*b bytes; a ring/Bruck schedule moves (p-1)*b per rank
        over ceil(log2 p) rounds."""
        if nbytes_per_rank < 0:
            raise ValueError(f"negative payload {nbytes_per_rank}")
        wire = (self.size - 1) * nbytes_per_rank
        rounds = max(1, math.ceil(math.log2(max(2, self.size))))
        return self._data_collective(wire, rounds)

    def alltoall(self, nbytes_per_pair: float) -> Event:
        """MPI_Alltoall with ``nbytes_per_pair`` to every peer: each rank
        sends and receives (p-1)*b bytes over p-1 exchange rounds."""
        if nbytes_per_pair < 0:
            raise ValueError(f"negative payload {nbytes_per_pair}")
        wire = (self.size - 1) * nbytes_per_pair
        return self._data_collective(wire, max(1, self.size - 1))

    def reduce_data(self, nbytes: float) -> Event:
        """MPI_Reduce of an ``nbytes`` buffer: binomial tree, each rank
        forwards one partial per level."""
        if nbytes < 0:
            raise ValueError(f"negative payload {nbytes}")
        levels = max(1, math.ceil(math.log2(max(2, self.size))))
        return self._data_collective(nbytes, levels)

    def free(self) -> None:
        """Tear down: unregister the program from its nodes."""
        self.machine.unregister_program(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Communicator {self.name!r} size={self.size} "
                f"ppn={self.procs_per_node}>")
