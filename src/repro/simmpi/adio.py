"""ADIO: the abstract-device interface for MPI-IO drivers.

Real ROMIO lets a file-system vendor implement ``ADIOI_xxx_Open/WriteStrided
/ReadStrided/Close`` and selects the implementation from the file-system
type (or the ``ROMIO_FSTYPE_FORCE`` override).  The reproduction mirrors
that seam: an :class:`ADIODriver` implements collective open / write / read
/ close as simulation generators, and a :class:`DriverRegistry` resolves a
driver name per file the way the environment flag does (§II-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.simmpi.comm import Communicator

__all__ = ["OpenContext", "ADIODriver", "DriverRegistry"]


@dataclass
class OpenContext:
    """Everything a driver sees at collective-open time."""

    path: str
    mode: str  # "r" | "w" | "rw"
    comm: Communicator
    hints: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.mode not in ("r", "w", "rw"):
            raise ValueError(f"invalid open mode {self.mode!r}")


class ADIODriver:
    """Base class for MPI-IO file-system drivers.

    Subclasses implement the five collective operations as generators
    yielding simulation events.  ``open`` returns an opaque per-file state
    object that the other operations receive back — exactly ROMIO's
    ``ADIO_File`` pattern.
    """

    #: Registry key, e.g. ``"univistor"`` — the ROMIO_FSTYPE_FORCE value.
    name: str = "abstract"

    def open(self, ctx: OpenContext) -> Generator:
        """Collective open; returns the driver's per-file state."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_at_all(self, state: Any, requests: List) -> Generator:
        """Collective write of per-rank requests."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read_at_all(self, state: Any, requests: List) -> Generator:
        """Collective read; returns {rank: [Extent]} describing the data."""
        raise NotImplementedError
        yield  # pragma: no cover

    def close(self, state: Any) -> Generator:
        """Collective close (may trigger asynchronous flushing)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write_at(self, state: Any, request) -> Generator:
        """Independent (non-collective) write by a single rank.

        Default: a degenerate one-request collective — correct for every
        driver here because the collective paths impose no barrier; only
        the COC metadata optimisation differs, and that is an open/close
        concern, not a data-path one.
        """
        yield from self.write_at_all(state, [request])

    def read_at(self, state: Any, request) -> Generator:
        """Independent read by a single rank; returns that rank's extents."""
        results = yield from self.read_at_all(state, [request])
        return results[request.rank]

    def sync(self, state: Any) -> Generator:
        """Block until all asynchronous work for this file has completed.

        Base implementation: nothing outstanding.
        """
        return
        yield  # pragma: no cover


class DriverRegistry:
    """Name -> driver instance, one registry per simulated job."""

    def __init__(self):
        self._drivers: Dict[str, ADIODriver] = {}
        #: Equivalent of ``ROMIO_FSTYPE_FORCE``: when set, every open
        #: resolves to this driver regardless of the requested type.
        self.fstype_force: Optional[str] = None

    def register(self, driver: ADIODriver) -> ADIODriver:
        if not driver.name or driver.name == "abstract":
            raise ValueError("driver must define a concrete name")
        if driver.name in self._drivers:
            raise ValueError(f"driver {driver.name!r} already registered")
        self._drivers[driver.name] = driver
        return driver

    def resolve(self, fstype: Optional[str] = None) -> ADIODriver:
        name = self.fstype_force or fstype
        if name is None:
            raise KeyError("no driver requested and ROMIO_FSTYPE_FORCE unset")
        try:
            return self._drivers[name]
        except KeyError:
            raise KeyError(
                f"no ADIO driver named {name!r}; registered: "
                f"{sorted(self._drivers)}") from None

    def names(self) -> List[str]:
        return sorted(self._drivers)
