"""The MPI-IO file API (the surface applications program against).

Applications call :meth:`File.open` / :meth:`File.write_at_all` /
:meth:`File.read_at_all` / :meth:`File.close` from inside simulation
processes with ``yield from``; every method delegates to the ADIO driver
selected for the file, so swapping UniviStor for Data Elevator or plain
Lustre is a one-string change — exactly the transparency claim of §II-F.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.simmpi.adio import ADIODriver, DriverRegistry, OpenContext
from repro.simmpi.comm import Communicator
from repro.storage.datamodel import Payload

__all__ = ["IORequest", "File"]


@dataclass(frozen=True)
class IORequest:
    """One rank's slice of a collective I/O operation.

    For writes, ``payload``/``payload_offset`` describe the data; for reads
    they are unused (``payload=None``).
    """

    rank: int
    offset: int
    length: int
    payload: Optional[Payload] = None
    payload_offset: int = 0

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError(f"negative rank {self.rank}")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length < 0:
            raise ValueError(f"negative length {self.length}")

    @property
    def end(self) -> int:
        return self.offset + self.length

    @staticmethod
    def contiguous_block(rank: int, block_bytes: int, payload: Payload,
                         payload_offset: int = 0,
                         base_offset: int = 0) -> "IORequest":
        """Rank ``r`` owns the ``r``-th contiguous block — the canonical
        HDF5 micro-benchmark pattern (§III-A)."""
        return IORequest(rank, base_offset + rank * block_bytes, block_bytes,
                         payload, payload_offset)


class File:
    """An open MPI file; thin shim over the resolved ADIO driver."""

    def __init__(self, comm: Communicator, path: str, mode: str,
                 driver: ADIODriver, state: Any):
        self.comm = comm
        self.path = path
        self.mode = mode
        self.driver = driver
        self._state = state
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    @classmethod
    def open(cls, registry: DriverRegistry, comm: Communicator, path: str,
             mode: str, fstype: Optional[str] = None,
             hints: Optional[Dict[str, Any]] = None) -> Generator:
        """Collective MPI_File_open.  ``yield from`` this from a process."""
        driver = registry.resolve(fstype)
        ctx = OpenContext(path=path, mode=mode, comm=comm,
                          hints=dict(hints or {}))
        state = yield from driver.open(ctx)
        return cls(comm, path, mode, driver, state)

    def close(self) -> Generator:
        """Collective MPI_File_close; may trigger asynchronous flushing."""
        self._ensure_open()
        self._closed = True
        yield from self.driver.close(self._state)

    def sync(self) -> Generator:
        """Wait for any asynchronous work (flush) on this file to finish.

        Unlike the other operations this is legal on a closed file: the
        paper measures "Flush" time after MPI_File_close returns.
        """
        yield from self.driver.sync(self._state)

    # -- data -------------------------------------------------------------
    def write_at_all(self, requests: List[IORequest]) -> Generator:
        """Collective write (MPI_File_write_at_all)."""
        self._ensure_open()
        if self.mode == "r":
            raise PermissionError(f"{self.path}: file opened read-only")
        self._validate(requests, writing=True)
        yield from self.driver.write_at_all(self._state, requests)

    def read_at_all(self, requests: List[IORequest]) -> Generator:
        """Collective read; returns ``{rank: [Extent]}``."""
        self._ensure_open()
        if self.mode == "w":
            raise PermissionError(f"{self.path}: file opened write-only")
        self._validate(requests, writing=False)
        result = yield from self.driver.read_at_all(self._state, requests)
        return result

    # -- independent (non-collective) operations --------------------------
    def write_at(self, request: IORequest) -> Generator:
        """Independent MPI_File_write_at by one rank."""
        self._ensure_open()
        if self.mode == "r":
            raise PermissionError(f"{self.path}: file opened read-only")
        self._validate([request], writing=True)
        yield from self.driver.write_at(self._state, request)

    def read_at(self, request: IORequest) -> Generator:
        """Independent MPI_File_read_at; returns the rank's extents."""
        self._ensure_open()
        if self.mode == "w":
            raise PermissionError(f"{self.path}: file opened write-only")
        self._validate([request], writing=False)
        result = yield from self.driver.read_at(self._state, request)
        return result

    # -- internals ------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self.path}: file is closed")

    def _validate(self, requests: List[IORequest], writing: bool) -> None:
        if not requests:
            raise ValueError("collective I/O with no requests")
        for req in requests:
            if req.rank >= self.comm.size:
                raise ValueError(
                    f"request rank {req.rank} outside communicator of size "
                    f"{self.comm.size}")
            if writing and req.length > 0 and req.payload is None:
                raise ValueError(f"write request without payload: {req}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<File {self.path!r} via {self.driver.name} ({state})>"
