"""Byte-counted MPI datatypes (enough for I/O size arithmetic)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Datatype", "BYTE", "CHAR", "INT", "FLOAT", "DOUBLE"]


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype reduced to what I/O needs: a name and a size."""

    name: str
    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"datatype size must be positive, got {self.size}")

    def extent(self, count: int) -> int:
        """Bytes occupied by ``count`` elements."""
        if count < 0:
            raise ValueError(f"negative count {count}")
        return self.size * count

    def contiguous(self, count: int) -> "Datatype":
        """Derived contiguous type of ``count`` elements (MPI_Type_contiguous)."""
        return Datatype(f"{self.name}[{count}]", self.size * count)


BYTE = Datatype("byte", 1)
CHAR = Datatype("char", 1)
INT = Datatype("int", 4)
FLOAT = Datatype("float", 4)
DOUBLE = Datatype("double", 8)
