"""Simulated MPI substrate.

The paper implements UniviStor as an I/O driver inside MPI-IO's
Abstract-Device Interface (ADIO, §II-F), so the reproduction provides the
same seams:

* :class:`~repro.simmpi.comm.Communicator` — a parallel application's
  ranks, their node placement and (timed) small-message collectives.
* :class:`~repro.simmpi.mpiio.File` — the MPI-IO file API
  (``open``/``write_at_all``/``read_at_all``/``close``) expressed as
  simulation generators.
* :mod:`~repro.simmpi.adio` — the driver registry; UniviStor, Data
  Elevator and the plain-Lustre baseline all plug in as ADIO drivers, and
  are selected per job exactly like ``ROMIO_FSTYPE_FORCE`` selects them on
  a real system.
"""

from repro.simmpi.comm import Communicator
from repro.simmpi.datatypes import BYTE, CHAR, DOUBLE, FLOAT, INT, Datatype
from repro.simmpi.adio import ADIODriver, DriverRegistry, OpenContext
from repro.simmpi.mpiio import File, IORequest
from repro.simmpi.p2p import Message, MessageContext

__all__ = [
    "ADIODriver",
    "BYTE",
    "CHAR",
    "Communicator",
    "Datatype",
    "DOUBLE",
    "DriverRegistry",
    "FLOAT",
    "File",
    "INT",
    "IORequest",
    "Message",
    "MessageContext",
    "OpenContext",
]
