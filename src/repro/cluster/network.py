"""Interconnect model.

Storage flows embed the per-node injection limit as per-stream caps on the
target device's pipe (documented in DESIGN.md §5); the backbone resource
here carries *node-to-node* data — the location-aware read service's
server round-trips and server-to-server metadata shuffles — plus the
latency/RPC cost model used by open/close and KV look-ups.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.spec import NetworkSpec
from repro.sim.engine import Engine, Event
from repro.sim.resources import BandwidthResource

__all__ = ["Interconnect"]


class Interconnect:
    """Cray-Aries-like network: backbone pipe + latency/RPC accounting."""

    def __init__(self, engine: Engine, spec: NetworkSpec, nodes: int):
        self.engine = engine
        self.spec = spec
        self.nodes = nodes
        backbone = min(spec.backbone_bandwidth,
                       nodes * spec.injection_bandwidth)
        self.backbone = BandwidthResource(engine, backbone,
                                          latency=spec.latency,
                                          name="backbone")

    # -- bulk data --------------------------------------------------------
    def transfer(self, nbytes_per_stream: float, streams: int = 1,
                 streams_per_node: int = 1, efficiency: float = 1.0,
                 tag: Optional[str] = None) -> Event:
        """Move data across nodes; each stream is capped by its node's
        injection share (``injection_bw / streams_per_node``)."""
        cap = self.spec.injection_bandwidth / max(1, streams_per_node)
        return self.backbone.transfer(nbytes_per_stream, streams=streams,
                                      per_stream_cap=cap,
                                      efficiency=efficiency,
                                      tag=tag or "net")

    def injection_cap(self, streams_per_node: int) -> float:
        """Per-stream bandwidth ceiling for ``streams_per_node`` concurrent
        streams leaving (or entering) one node — passed to storage pipes."""
        return self.spec.injection_bandwidth / max(1, streams_per_node)

    # -- small messages ----------------------------------------------------
    def rpc_cost(self, requests: int, serialized: bool = True,
                 op_time: Optional[float] = None) -> float:
        """Time for ``requests`` metadata RPCs at one endpoint.

        ``serialized=True`` models an all-to-one pattern (the §II-F
        open/close problem): the target server works the requests off one
        by one.  Non-serialised requests cost a single round trip.
        ``op_time`` overrides the per-request server-side cost (defaults
        to the KV ``rpc_time``; file opens pass the heavier create/stat
        costs).
        """
        if requests <= 0:
            return 0.0
        cost = self.spec.rpc_time if op_time is None else op_time
        if serialized:
            return requests * cost + 2 * self.spec.latency
        return cost + 2 * self.spec.latency

    def bcast_cost(self, nprocs: int) -> float:
        """Binomial-tree broadcast of a small message to ``nprocs`` ranks."""
        if nprocs <= 1:
            return 0.0
        hops = math.ceil(math.log2(nprocs))
        return hops * (self.spec.latency + self.spec.rpc_time * 0.1)

    def rpc(self, requests: int = 1, serialized: bool = True,
            op_time: Optional[float] = None) -> Event:
        """Timed variant of :meth:`rpc_cost` as an engine event."""
        return self.engine.timeout(
            self.rpc_cost(requests, serialized, op_time=op_time))
