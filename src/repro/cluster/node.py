"""Compute-node model: local devices + the processes placed on the node."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cpu import (
    CorePlacement,
    PlacementPolicy,
    ProgramOnNode,
    placement_efficiency,
)
from repro.cluster.spec import MachineSpec, NodeSpec
from repro.sim.engine import Engine
from repro.sim.rng import StreamRNG
from repro.storage.device import StorageDevice
from repro.storage.posix import FileStore

__all__ = ["ComputeNode"]


class ComputeNode:
    """One compute node: DRAM cache device, optional local SSD, CPU state.

    The node tracks which program slices run on it
    (:meth:`register_program`) so the placement model can reproduce
    Fig. 4's scenarios, and owns the *node-local* storage devices that
    UniviStor's DHP uses as its fastest layers.
    """

    def __init__(self, engine: Engine, node_id: int, machine_spec: MachineSpec,
                 rng: StreamRNG):
        self.engine = engine
        self.node_id = node_id
        self.machine_spec = machine_spec
        self.spec: NodeSpec = machine_spec.node
        self.rng = rng
        # The device pipe carries the *raw* (copy-engine) DRAM bandwidth;
        # the much lower client cache-path rate (dram_cache_bandwidth) is
        # imposed per flow by the UniviStor client/read service via
        # per-stream caps, so server flush reads of large log regions are
        # not throttled to the client-copy rate.
        self.dram = StorageDevice(
            engine, f"node{node_id}.dram",
            capacity=self.spec.dram_cache_capacity,
            bandwidth=self.spec.dram_bandwidth * 0.5,
            latency=self.spec.dram_latency,
            read_factor=self.spec.dram_read_factor, duplex=True)
        self.local_ssd: Optional[StorageDevice] = None
        if self.spec.local_ssd_capacity is not None:
            self.local_ssd = StorageDevice(
                engine, f"node{node_id}.ssd",
                capacity=self.spec.local_ssd_capacity,
                bandwidth=self.spec.local_ssd_bandwidth,
                latency=self.spec.local_ssd_latency)
        #: Files living in this node's memory/SSD (UniviStor logs).
        self.files = FileStore(name=f"node{node_id}")
        self._programs: Dict[str, ProgramOnNode] = {}
        self._placement_cache: Dict[Tuple, CorePlacement] = {}
        #: Bumped on every register/unregister; an O(1) stand-in for the
        #: co-resident program set in downstream cache keys (multi-job
        #: runs change tenancy mid-simulation).
        self.tenancy_epoch = 0
        #: True while a server-side flush is running on this node (drives
        #: the Fig. 4d migration in the interference-aware policy).
        self.flush_active = False

    # -- program registry -----------------------------------------------
    def register_program(self, name: str, nprocs: int,
                         kind: str = "client") -> None:
        """Declare that ``nprocs`` processes of ``name`` run on this node."""
        if nprocs <= 0:
            return
        self._programs[name] = ProgramOnNode(name, nprocs, kind)
        self._placement_cache.clear()
        self.tenancy_epoch += 1

    def unregister_program(self, name: str) -> None:
        self._programs.pop(name, None)
        self._placement_cache.clear()
        self.tenancy_epoch += 1

    def programs(self) -> List[ProgramOnNode]:
        return list(self._programs.values())

    def procs_of(self, name: str) -> int:
        prog = self._programs.get(name)
        return prog.nprocs if prog else 0

    def set_flush_active(self, active: bool) -> None:
        self.flush_active = active

    # -- placement / interference ------------------------------------------
    def placement(self, policy: PlacementPolicy) -> CorePlacement:
        """Current placement of all registered programs under ``policy``."""
        key = (policy, self.flush_active,
               tuple(sorted((p.name, p.nprocs, p.kind)
                            for p in self._programs.values())))
        cached = self._placement_cache.get(key)
        if cached is not None:
            return cached
        programs = self.programs()
        if policy is PlacementPolicy.INTERFERENCE_AWARE:
            placement = CorePlacement.place_interference_aware(
                self.spec, programs, flush_active=self.flush_active)
        else:
            placement = CorePlacement.place_cfs(
                self.spec, programs,
                self.rng.stream(f"cfs.node{self.node_id}"),
                spec=self.machine_spec.scheduling)
        self._placement_cache[key] = placement
        return placement

    def efficiency(self, program: str, policy: PlacementPolicy,
                   sensitivity: float = 1.0,
                   idle_programs: frozenset = frozenset()) -> float:
        """Scheduling-derived throughput factor for ``program`` on this node."""
        return placement_efficiency(
            self.placement(policy), program,
            self.machine_spec.scheduling, sensitivity=sensitivity,
            idle_programs=idle_programs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputeNode {self.node_id} programs={list(self._programs)}>"
