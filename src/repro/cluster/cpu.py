"""Core placement and the interference model (§II-C, Fig. 4).

Two placement algorithms are implemented:

* :meth:`CorePlacement.place_cfs` — a model of Linux CFS placement as the
  paper describes its failure modes (Fig. 4a): processes land on cores
  without program awareness, so processes stack on shared cores while other
  cores idle, and one program's processes may crowd a single NUMA socket.

* :meth:`CorePlacement.place_interference_aware` — UniviStor's policy
  (Fig. 4b–d): processes of every program are spread evenly across NUMA
  sockets; under oversubscription extra client processes borrow the server
  program's cores while servers are idle (Fig. 4c) and are migrated away
  when a flush makes the servers busy (Fig. 4d).

:func:`placement_efficiency` translates a concrete placement into a
throughput factor for a synchronised, bandwidth-bound collective operation:
the operation completes when its slowest process finishes, so socket
imbalance and per-core stacking both stretch completion time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.spec import NodeSpec, SchedulingSpec

__all__ = [
    "PlacementPolicy",
    "ProgramOnNode",
    "CorePlacement",
    "placement_efficiency",
    "cpu_availability",
]


class PlacementPolicy(enum.Enum):
    """How processes are assigned to cores on a node."""

    CFS = "cfs"
    INTERFERENCE_AWARE = "interference_aware"


@dataclass
class ProgramOnNode:
    """The slice of one parallel program running on one node.

    ``kind`` distinguishes UniviStor ``server`` processes (whose cores may
    be borrowed while idle) from application ``client`` processes.
    """

    name: str
    nprocs: int
    kind: str = "client"  # "client" | "server"

    def __post_init__(self):
        if self.nprocs < 0:
            raise ValueError(f"nprocs must be >= 0, got {self.nprocs}")
        if self.kind not in ("client", "server"):
            raise ValueError(f"unknown program kind {self.kind!r}")


@dataclass
class CorePlacement:
    """An assignment of (program, local process index) pairs to cores.

    ``core_occupants[c]`` lists the processes currently runnable on core
    ``c``.  Cores are numbered socket-major: with ``cores_per_socket = k``,
    core ``c`` belongs to socket ``c // k`` (matching Fig. 4's C1–C3 on one
    socket, C4–C6 on the other).
    """

    node: NodeSpec
    core_occupants: List[List[Tuple[str, int]]] = field(default_factory=list)
    policy: PlacementPolicy = PlacementPolicy.INTERFERENCE_AWARE
    #: Which processes are currently parked on borrowed server cores
    #: (only meaningful for interference-aware oversubscription).
    borrowed: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self):
        if not self.core_occupants:
            self.core_occupants = [[] for _ in range(self.node.cores)]

    # -- queries --------------------------------------------------------
    def socket_of(self, core: int) -> int:
        return core // self.node.cores_per_socket

    def cores_of(self, program: str) -> List[int]:
        return [c for c, occ in enumerate(self.core_occupants)
                if any(p == program for p, _ in occ)]

    def processes_of(self, program: str) -> List[Tuple[int, int]]:
        """Return (core, proc_index) pairs for ``program``."""
        out = []
        for c, occ in enumerate(self.core_occupants):
            for p, idx in occ:
                if p == program:
                    out.append((c, idx))
        return out

    def socket_loads(self, program: str) -> List[int]:
        """Processes of ``program`` per socket."""
        loads = [0] * self.node.numa_sockets
        for c, occ in enumerate(self.core_occupants):
            s = self.socket_of(c)
            loads[s] += sum(1 for p, _ in occ if p == program)
        return loads

    def stacking(self) -> Dict[int, int]:
        """core -> number of runnable processes (only cores with > 1)."""
        return {c: len(occ) for c, occ in enumerate(self.core_occupants)
                if len(occ) > 1}

    def total_processes(self) -> int:
        return sum(len(occ) for occ in self.core_occupants)

    # -- placement algorithms --------------------------------------------
    @classmethod
    def place_cfs(cls, node: NodeSpec, programs: Sequence[ProgramOnNode],
                  rng: np.random.Generator,
                  spec: Optional[SchedulingSpec] = None) -> "CorePlacement":
        """Program-agnostic placement: the Fig. 4a failure modes.

        Each process picks a core at random among the least-loaded cores of
        a randomly biased socket: with probability ``cfs_socket_bias`` a
        process follows its program's previous process onto the same socket
        (CFS wake affinity), otherwise it picks uniformly.  This yields both
        stacking-with-idle-cores and same-socket crowding, the two issues
        the paper calls out, while staying statistically reasonable.
        """
        spec = spec or SchedulingSpec()
        placement = cls(node=node, policy=PlacementPolicy.CFS)
        last_socket: Dict[str, int] = {}
        for prog in programs:
            for idx in range(prog.nprocs):
                if prog.name in last_socket and rng.random() < spec.cfs_socket_bias:
                    socket = last_socket[prog.name]
                else:
                    socket = int(rng.integers(0, node.numa_sockets))
                base = socket * node.cores_per_socket
                # CFS's per-CPU runqueues balance lazily: choose among a
                # random sample of the socket's cores, take the less loaded.
                candidates = rng.integers(0, node.cores_per_socket, size=2)
                loads = [len(placement.core_occupants[base + int(c)])
                         for c in candidates]
                core = base + int(candidates[int(np.argmin(loads))])
                placement.core_occupants[core].append((prog.name, idx))
                last_socket[prog.name] = socket
        return placement

    @classmethod
    def place_interference_aware(
            cls, node: NodeSpec, programs: Sequence[ProgramOnNode],
            flush_active: bool = False) -> "CorePlacement":
        """UniviStor's placement (Fig. 4b–d).

        Every program's processes are spread evenly across NUMA sockets
        (remainders to the less-loaded socket).  If total processes exceed
        cores, extra *client* processes are assigned to the server
        program's cores while the servers are idle (Fig. 4c); when
        ``flush_active`` the borrowed processes are migrated back onto
        client cores instead (Fig. 4d).
        """
        placement = cls(node=node,
                        policy=PlacementPolicy.INTERFERENCE_AWARE)
        sockets = node.numa_sockets
        per_socket_free: List[List[int]] = [
            list(range(s * node.cores_per_socket,
                       (s + 1) * node.cores_per_socket))
            for s in range(sockets)
        ]
        socket_load = [0] * sockets
        overflow: List[Tuple[str, int, str]] = []

        def least_loaded_socket() -> int:
            return int(np.argmin(socket_load))

        # Pass 1: spread every program across sockets onto free cores.
        for prog in programs:
            base, rem = divmod(prog.nprocs, sockets)
            counts = [base] * sockets
            # Remainder processes go to the less-loaded sockets (§II-C).
            order = sorted(range(sockets), key=lambda s: socket_load[s])
            for i in range(rem):
                counts[order[i]] += 1
            idx = 0
            for s in range(sockets):
                for _ in range(counts[s]):
                    if per_socket_free[s]:
                        core = per_socket_free[s].pop(0)
                        placement.core_occupants[core].append((prog.name, idx))
                        socket_load[s] += 1
                    else:
                        overflow.append((prog.name, idx, prog.kind))
                    idx += 1

        # Pass 2: oversubscription — state-aware borrowing (Fig. 4c/d).
        server_cores = [c for c, occ in enumerate(placement.core_occupants)
                        if any(_kind_of(programs, p) == "server"
                               for p, _ in occ)]
        own_cores: Dict[str, List[int]] = {
            prog.name: placement.cores_of(prog.name) for prog in programs}
        for name, idx, kind in overflow:
            if kind == "client" and server_cores and not flush_active:
                # Borrow an idle server core (Fig. 4c).
                core = min(server_cores,
                           key=lambda c: len(placement.core_occupants[c]))
                placement.borrowed.append((name, idx))
            else:
                # Stack on the program's own least-loaded core (Fig. 4d
                # migration target, or plain fallback).
                candidates = own_cores.get(name) or list(
                    range(node.cores))
                core = min(candidates,
                           key=lambda c: len(placement.core_occupants[c]))
            placement.core_occupants[core].append((name, idx))
        return placement


def _kind_of(programs: Sequence[ProgramOnNode], name: str) -> str:
    for prog in programs:
        if prog.name == name:
            return prog.kind
    return "client"


def placement_efficiency(placement: CorePlacement, program: str,
                         scheduling: SchedulingSpec,
                         sensitivity: float = 1.0,
                         straggler_weight: float = 0.6,
                         idle_programs: frozenset = frozenset()) -> float:
    """Throughput factor in (0, 1] for ``program``'s collective operation.

    The model charges two effects visible in a placement:

    * **NUMA imbalance** — the program's processes on socket ``s`` share
      that socket's slice of memory bandwidth; a crowded socket starves its
      processes and the synchronised collective waits for them.
    * **Core stacking** — a process sharing a core with another *active*
      process runs at ``context_switch_factor`` (times
      ``cross_program_factor`` if the co-runner belongs to a different
      program).  Programs in ``idle_programs`` are blocked (e.g. UniviStor
      servers while clients write into shared-memory logs) and inflict no
      penalty — this is exactly the state-awareness that lets Fig. 4c's
      borrowed cores come for free.

    ``sensitivity`` in [0, 1] says how bandwidth-bound the operation is
    (1.0 for cache writes, lower for reads that also wait on the network);
    ``straggler_weight`` blends worst-process and mean-process rates, since
    CFS migrates processes over time and softens pure stragglers.
    """
    if not 0.0 <= sensitivity <= 1.0:
        raise ValueError(f"sensitivity must be in [0, 1], got {sensitivity}")
    node = placement.node
    procs = placement.processes_of(program)
    if not procs:
        return 1.0
    p = len(procs)

    def active(name: str) -> bool:
        return name == program or name not in idle_programs

    # Active processes of any program per socket compete for that socket's
    # memory channels; the target program's processes per socket define its
    # own share.
    active_socket_loads = [0] * node.numa_sockets
    for c, occ in enumerate(placement.core_occupants):
        s = placement.socket_of(c)
        active_socket_loads[s] += sum(1 for name, _ in occ if active(name))

    # Per-process achievable rate relative to the balanced ideal (which
    # would be node_bw / p for every process).
    ideal_rate = 1.0 / p  # in units of node bandwidth
    rates = []
    for core, _idx in procs:
        socket = placement.socket_of(core)
        n_on_socket = max(1, active_socket_loads[socket])
        mem_rate = (1.0 / node.numa_sockets) / n_on_socket
        occupants = placement.core_occupants[core]
        active_corunners = [name for name, _ in occupants
                            if active(name)]
        cpu = 1.0
        if len(active_corunners) > 1:
            cpu = scheduling.context_switch_factor ** (len(active_corunners) - 1)
            if any(other != program for other in active_corunners):
                cpu *= scheduling.cross_program_factor
        rates.append(min(mem_rate, ideal_rate * node.numa_sockets) * cpu)

    rates_arr = np.asarray(rates)
    blended = (straggler_weight * rates_arr.min()
               + (1.0 - straggler_weight) * rates_arr.mean())
    eff = min(1.0, blended / ideal_rate)
    if placement.policy is PlacementPolicy.INTERFERENCE_AWARE:
        eff = min(eff, 1.0) * scheduling.ia_overhead_factor
    # Interpolate toward 1.0 for operations that are not purely
    # bandwidth-bound.
    eff = eff ** sensitivity if sensitivity > 0 else 1.0
    return float(max(1e-3, min(1.0, eff)))


def cpu_availability(placement: CorePlacement, program: str,
                     scheduling: SchedulingSpec,
                     idle_programs: frozenset = frozenset(),
                     straggler_weight: float = 0.6,
                     sensitivity: float = 0.35) -> float:
    """CPU-time factor in (0, 1] for ``program``'s processes.

    Used for operations whose bottleneck is *not* node memory bandwidth —
    most importantly the server-side flush (§II-C's Fig. 4d scenario): a
    flushing server stacked with active client processes loses CPU time to
    time-sharing; a server with a dedicated core does not.  ``sensitivity``
    captures how much lost CPU translates into lost flush goodput (a
    network-bound flush tolerates some CPU loss).
    """
    procs = placement.processes_of(program)
    if not procs:
        return 1.0

    def active(name: str) -> bool:
        return name == program or name not in idle_programs

    shares = []
    for core, _idx in procs:
        occupants = [name for name, _ in placement.core_occupants[core]
                     if active(name)]
        share = 1.0 / max(1, len(occupants))
        if len(occupants) > 1:
            share *= scheduling.context_switch_factor
            if any(other != program for other in occupants):
                share *= scheduling.cross_program_factor
        shares.append(share)
    arr = np.asarray(shares)
    blended = straggler_weight * arr.min() + (1 - straggler_weight) * arr.mean()
    if placement.policy is PlacementPolicy.INTERFERENCE_AWARE:
        blended *= scheduling.ia_overhead_factor
    eff = blended ** sensitivity if sensitivity > 0 else 1.0
    return float(max(1e-3, min(1.0, eff)))
