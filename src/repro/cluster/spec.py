"""Hardware specifications and performance-model tunables.

Every number the performance model consumes lives here, so calibrating the
reproduction against the paper's ratio bands is a matter of adjusting one
frozen dataclass.  The defaults describe a Cori-Haswell-like machine:

* compute node: 32 cores on 2 NUMA sockets, 128 GiB DDR4 (§III-A),
* shared burst buffer: DataWarp-style SSD appliance nodes,
* Lustre: 248 OSTs (§III-A).

Capacities use binary units; bandwidths use decimal GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.units import GB, GiB, MiB, TiB, USEC

__all__ = [
    "NodeSpec",
    "BurstBufferSpec",
    "LustreSpec",
    "NetworkSpec",
    "SchedulingSpec",
    "MachineSpec",
]


@dataclass(frozen=True)
class NodeSpec:
    """A compute node.

    ``dram_cache_capacity`` is the slice of DRAM UniviStor may use for its
    memory-mapped logs (the application keeps the rest); the paper sizes
    this implicitly via "the dataset is too large to fit" experiments.
    """

    cores: int = 32
    numa_sockets: int = 2
    dram_capacity: float = 128 * GiB
    #: STREAM-like aggregate node memory bandwidth (both sockets).
    dram_bandwidth: float = 110 * GB
    #: Fraction of raw memory bandwidth achievable by cache-style writes
    #: into UniviStor's mmap'd logs: client-side copy into shared memory,
    #: log/chunk bookkeeping and metadata-record generation all ride on the
    #: same cores, so the paper-scale effective rate is a few GB/s per node
    #: (calibrated against Fig. 6a's UniviStor/DRAM-to-Lustre ratios).
    dram_copy_efficiency: float = 0.025
    #: Reads skip the append-side bookkeeping; they run this much faster.
    dram_read_factor: float = 1.4
    #: DRAM capacity UniviStor's caching service may occupy per node.
    #: Sized so 5 VPIC-IO steps fit and 10 steps spill roughly half
    #: (§III-C): 32 procs x 256 MiB x 5 steps = 40 GiB < 48 GiB < 80 GiB.
    dram_cache_capacity: float = 48 * GiB
    #: Per-operation software latency of the local cache path.
    dram_latency: float = 25 * USEC
    #: Optional node-local SSD/NVRAM burst buffer (Cori Haswell had none;
    #: kept for machines like Summit).  ``None`` disables the layer.
    local_ssd_capacity: Optional[float] = None
    local_ssd_bandwidth: float = 2 * GB
    local_ssd_latency: float = 80 * USEC

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.numa_sockets < 1:
            raise ValueError("numa_sockets must be >= 1")
        if self.cores % self.numa_sockets != 0:
            raise ValueError(
                f"cores ({self.cores}) not divisible by sockets "
                f"({self.numa_sockets})")
        if self.dram_cache_capacity > self.dram_capacity:
            raise ValueError("dram_cache_capacity exceeds dram_capacity")

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.numa_sockets

    @property
    def dram_cache_bandwidth(self) -> float:
        """Effective per-node bandwidth of the DRAM caching layer."""
        return self.dram_bandwidth * self.dram_copy_efficiency


@dataclass(frozen=True)
class BurstBufferSpec:
    """The shared (network-attached) burst buffer, DataWarp-style.

    Per-compute-node throughput is far below the appliance aggregate and
    differs by access style: many small client streams ride the DVS mount
    and see ~1 GB/s/node, while a server flush doing large sequential log
    reads sustains several GB/s — both match published DataWarp numbers.
    """

    #: Appliance nodes backing the job's burst-buffer allocation.
    nodes: int = 48
    per_node_bandwidth: float = 4.0 * GB
    capacity: float = 80 * TiB
    latency: float = 250 * USEC
    #: Aggregate read speed relative to write (SSD appliances read faster).
    read_factor: float = 1.3
    #: Per-compute-node ceilings for *client* I/O streams.
    client_node_write_bandwidth: float = 0.95 * GB
    client_node_read_bandwidth: float = 0.85 * GB
    #: Per-compute-node ceiling for server flush streams (large sequential
    #: log reads/writes).
    flush_node_bandwidth: float = 8.0 * GB
    #: Lock/serialisation penalty exponent for *shared-file* writes: with W
    #: concurrent writers to one striped shared file the per-writer
    #: efficiency is ``1 / (1 + shared_file_alpha * log2(W))`` — DataWarp
    #: stripes a shared file across BB nodes much like a PFS, so writers
    #: collide on stripe boundaries.  File-per-process I/O pays nothing.
    shared_file_alpha: float = 0.04

    @property
    def aggregate_bandwidth(self) -> float:
        return self.nodes * self.per_node_bandwidth

    def shared_file_efficiency(self, writers: int) -> float:
        """Per-writer goodput factor for a shared-file access pattern."""
        if writers <= 1:
            return 1.0
        import math
        return 1.0 / (1.0 + self.shared_file_alpha * math.log2(writers))


@dataclass(frozen=True)
class LustreSpec:
    """Disk-based parallel file system with ``osts`` object storage targets."""

    osts: int = 248
    ost_bandwidth: float = 1.1 * GB
    capacity: float = 28_000 * TiB
    latency: float = 2_000 * USEC
    #: Default stripe settings applied when a file is created without the
    #: adaptive policy (Cori's defaults were 1 MiB / broad striping for
    #: large shared files; we model progressive-file-layout-free defaults).
    default_stripe_size: float = 1 * MiB
    default_stripe_count: int = 248
    #: Largest stripe size the system allows (``S_max`` in Eq. 3).
    max_stripe_size: float = 1 * GiB
    #: ``alpha`` in Eq. 2 — the smallest number of OSTs that saturates one
    #: flushing server's bandwidth.
    saturation_stripe_count: int = 8
    #: N-to-1 (single shared file) writes hit an extent-lock plateau that
    #: grows sub-linearly with the writer count: total goodput is about
    #: ``plateau_base * sqrt(W)`` — the well-documented flat-ish scaling of
    #: untuned shared-file I/O on Lustre.  Reads take shared locks and
    #: plateau higher.
    shared_write_plateau_base: float = 0.175 * GB
    shared_read_plateau_base: float = 0.5 * GB
    #: Contiguous non-overlapping ranges into one shared file (the flush
    #: pattern) conflict only at range boundaries — a mild penalty:
    #: ``1 / (1 + range_write_alpha * log2(W))``.
    range_write_alpha: float = 0.03
    #: Per-compute-node ceiling for *client* Lustre streams (llite/LNET
    #: software path with many concurrent client writers); server flush
    #: streams do large sequential RPCs and are only injection-bound.
    client_node_bandwidth: float = 1.2 * GB
    #: Per-extra-OST synchronisation overhead a single writer pays when its
    #: data is striped over k OSTs: ``1 / (1 + stripe_sync_cost * (k-1))``.
    stripe_sync_cost: float = 0.003
    #: File-per-process writes scale well but not perfectly: W concurrent
    #: per-process files cost MDS traffic and OST seek interleaving,
    #: ``1 / (1 + fpp_alpha * log2(W))``.
    fpp_alpha: float = 0.025
    #: Disk arrays seek-thrash when reads and writes mix: while both are
    #: in flight on the OSTs, every flow runs at this factor.  (This is
    #: why placing a workflow's data on the PFS is so much worse than its
    #: write-only cost suggests — Fig. 10's UniviStor/(Disk) case.)
    mixed_workload_factor: float = 0.42

    def shared_file_plateau(self, writers: int, read: bool = False) -> float:
        """Aggregate goodput ceiling for W-writer N-to-1 access."""
        import math
        base = (self.shared_read_plateau_base if read
                else self.shared_write_plateau_base)
        return min(base * math.sqrt(max(1, writers)),
                   self.aggregate_bandwidth)

    def fpp_efficiency(self, writers: int) -> float:
        """Per-writer factor for file-per-process access."""
        if writers <= 1:
            return 1.0
        import math
        return 1.0 / (1.0 + self.fpp_alpha * math.log2(writers))

    def range_write_efficiency(self, writers: int) -> float:
        """Per-writer factor for contiguous-range shared-file writes."""
        if writers <= 1:
            return 1.0
        import math
        return 1.0 / (1.0 + self.range_write_alpha * math.log2(writers))

    def stripe_sync_efficiency(self, stripe_count_per_writer: int) -> float:
        """Goodput factor for one writer spreading over ``k`` OSTs."""
        k = max(1, stripe_count_per_writer)
        return 1.0 / (1.0 + self.stripe_sync_cost * (k - 1))

    @property
    def aggregate_bandwidth(self) -> float:
        return self.osts * self.ost_bandwidth


@dataclass(frozen=True)
class NetworkSpec:
    """Cray-Aries-like interconnect."""

    #: Injection bandwidth per compute node.
    injection_bandwidth: float = 10 * GB
    #: Global backbone cap (bisection-style), shared by all cross-node data.
    backbone_bandwidth: float = 5_000 * GB
    #: One-way small-message latency.
    latency: float = 1.3 * USEC
    #: Cost per metadata/RPC request (software + wire) for KV look-ups
    #: and record inserts.
    rpc_time: float = 55 * USEC
    #: Server-side cost of a file create / EOF-update metadata operation
    #: (what every rank sends to the same server at open-for-write and at
    #: close-after-write when COC is off, §II-F).
    file_create_time: float = 500 * USEC
    #: Server-side cost of a file attribute fetch (open-for-read /
    #: close-after-read).
    file_stat_time: float = 120 * USEC


@dataclass(frozen=True)
class SchedulingSpec:
    """Tunables of the CPU-placement interference model (§II-C, Fig. 4).

    The placement *algorithms* are implemented faithfully in
    :mod:`repro.cluster.cpu`; these constants translate a concrete placement
    into a throughput factor.
    """

    #: Throughput multiplier for each process stacked beyond the first on a
    #: core (context-switch + cache-thrash waste under CFS).
    context_switch_factor: float = 0.62
    #: Extra penalty when processes of *different* programs share a core
    #: (the P1_1/P2_1 interference of Fig. 4a).
    cross_program_factor: float = 0.80
    #: How much of the CFS placement's socket imbalance translates into
    #: lost memory bandwidth (1.0 = fully bandwidth-bound workload).
    numa_sensitivity: float = 1.0
    #: Probability weight of CFS co-locating same-program processes on one
    #: socket; used by the randomised CFS placement model.
    cfs_socket_bias: float = 0.35
    #: Efficiency of the interference-aware placement itself (bookkeeping
    #: and migration are not free).
    ia_overhead_factor: float = 0.985
    #: During a server flush without IA migration, co-located clients steal
    #: this fraction of the servers' effective CPU/memory time.
    flush_interference_factor: float = 0.66


@dataclass(frozen=True)
class MachineSpec:
    """Full machine: ``nodes`` compute nodes + shared BB + Lustre + network."""

    nodes: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)
    burst_buffer: Optional[BurstBufferSpec] = field(default_factory=BurstBufferSpec)
    lustre: LustreSpec = field(default_factory=LustreSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    scheduling: SchedulingSpec = field(default_factory=SchedulingSpec)
    seed: int = 2018

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")

    @staticmethod
    def cori_haswell(nodes: int = 8, seed: int = 2018, **overrides) -> "MachineSpec":
        """The evaluation platform of §III-A.

        Any field of :class:`MachineSpec` can be overridden by keyword.
        """
        spec = MachineSpec(nodes=nodes, seed=seed)
        return replace(spec, **overrides) if overrides else spec

    @staticmethod
    def summit_like(nodes: int = 8, seed: int = 2018,
                    **overrides) -> "MachineSpec":
        """A machine with *node-local* NVMe burst buffers (Fig. 1's
        "DRAM and/or NVRAM-based burst buffer on each compute node"):
        Summit-style 1.6 TB/node XFS-on-NVMe at ~2 GB/s write.

        Exercises the full four-layer hierarchy DRAM -> local SSD ->
        shared BB -> PFS.
        """
        node = NodeSpec(local_ssd_capacity=1.6 * 1e12,
                        local_ssd_bandwidth=2 * GB,
                        local_ssd_latency=80 * USEC)
        spec = MachineSpec(nodes=nodes, node=node, seed=seed)
        return replace(spec, **overrides) if overrides else spec

    @staticmethod
    def small_test(nodes: int = 2, seed: int = 7) -> "MachineSpec":
        """A tiny machine for fast unit/integration tests."""
        return MachineSpec(
            nodes=nodes,
            node=NodeSpec(cores=4, numa_sockets=2,
                          dram_capacity=4 * GiB,
                          dram_cache_capacity=2 * GiB,
                          dram_bandwidth=10 * GB),
            burst_buffer=BurstBufferSpec(nodes=2, per_node_bandwidth=1 * GB,
                                         capacity=8 * GiB),
            lustre=LustreSpec(osts=8, ost_bandwidth=0.5 * GB,
                              capacity=1 * TiB,
                              default_stripe_count=8),
            network=NetworkSpec(),
            seed=seed,
        )

    def with_nodes(self, nodes: int) -> "MachineSpec":
        return replace(self, nodes=nodes)
