"""The assembled machine: nodes + interconnect + shared BB + Lustre."""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.network import Interconnect
from repro.cluster.node import ComputeNode
from repro.cluster.spec import MachineSpec
from repro.sim.engine import Engine
from repro.sim.rng import StreamRNG
from repro.storage.burstbuffer import SharedBurstBuffer
from repro.storage.lustre import LustreFS
from repro.storage.posix import FileStore

__all__ = ["Machine"]


class Machine:
    """A job's view of the machine (Fig. 1's storage hierarchy).

    Owns the compute nodes allocated to the job, the interconnect, the
    shared burst buffer (if the job requested one) and the Lustre PFS.
    Each storage tier pairs a timed device model with a functional
    :class:`~repro.storage.posix.FileStore` namespace:

    * per-node DRAM / local SSD files live in ``node.files``,
    * shared-BB files in :attr:`bb_files`,
    * PFS files in :attr:`pfs_files`.
    """

    def __init__(self, engine: Engine, spec: Optional[MachineSpec] = None,
                 pfs_files: Optional[FileStore] = None):
        """``pfs_files`` carries a *persistent* PFS namespace between jobs:
        node-local and burst-buffer contents are job-scoped (their
        integrity is only assured within the job's life cycle, §I), but a
        new job handed the previous job's ``pfs_files`` sees everything
        that was flushed to Lustre."""
        self.engine = engine
        self.spec = spec or MachineSpec()
        self.rng = StreamRNG(self.spec.seed)
        self.nodes: List[ComputeNode] = [
            ComputeNode(engine, i, self.spec, self.rng.spawn(f"node{i}"))
            for i in range(self.spec.nodes)
        ]
        self.network = Interconnect(engine, self.spec.network,
                                    self.spec.nodes)
        self.burst_buffer: Optional[SharedBurstBuffer] = None
        if self.spec.burst_buffer is not None:
            self.burst_buffer = SharedBurstBuffer(engine,
                                                  self.spec.burst_buffer)
        self.lustre = LustreFS(engine, self.spec.lustre)
        self.bb_files = FileStore(name="shared-bb")
        self.pfs_files = pfs_files if pfs_files is not None else FileStore(
            name="pfs")

    # -- conveniences ------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.spec.nodes * self.spec.node.cores

    def node_of_rank(self, rank: int, procs_per_node: int) -> ComputeNode:
        """Block distribution of ranks onto nodes (MPI default)."""
        if rank < 0:
            raise ValueError(f"negative rank {rank}")
        idx = rank // procs_per_node
        if idx >= len(self.nodes):
            raise ValueError(
                f"rank {rank} with {procs_per_node} procs/node needs node "
                f"{idx}, machine has {len(self.nodes)}")
        return self.nodes[idx]

    def register_program(self, name: str, nprocs: int, kind: str = "client",
                         procs_per_node: Optional[int] = None,
                         node_offset: int = 0) -> List[int]:
        """Register a parallel program across nodes (block distribution).

        Returns the per-node process counts.  ``procs_per_node`` defaults
        to filling nodes evenly; ``node_offset`` starts the block at a
        later node — how an *in-transit* analysis program is placed on a
        disjoint node set from its producer.
        """
        n_nodes = len(self.nodes)
        if not 0 <= node_offset < n_nodes:
            raise ValueError(f"node_offset {node_offset} outside "
                             f"[0, {n_nodes})")
        if procs_per_node is None:
            procs_per_node = (nprocs + (n_nodes - node_offset) - 1) \
                // (n_nodes - node_offset)
        counts = [0] * n_nodes
        remaining = nprocs
        for node in self.nodes[node_offset:]:
            here = min(procs_per_node, max(0, remaining))
            counts[node.node_id] = here
            if here > 0:
                node.register_program(name, here, kind)
            remaining -= here
        if remaining > 0:
            raise ValueError(
                f"program {name!r}: {nprocs} procs do not fit on "
                f"{n_nodes - node_offset} nodes x {procs_per_node} "
                f"procs/node (offset {node_offset})")
        return counts

    def unregister_program(self, name: str) -> None:
        for node in self.nodes:
            node.unregister_program(name)

    def set_flush_active(self, active: bool) -> None:
        """Toggle flush state machine-wide (drives Fig. 4d migration)."""
        for node in self.nodes:
            node.set_flush_active(active)
