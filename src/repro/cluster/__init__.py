"""Machine model: nodes, NUMA sockets, interconnect and attached storage.

The model is parameterised by :class:`~repro.cluster.spec.MachineSpec`; the
default, :meth:`MachineSpec.cori_haswell`, matches the published
configuration of NERSC Cori's Haswell partition that the paper evaluated on
(32 cores / 2 NUMA sockets / 128 GB DRAM per node, DataWarp shared burst
buffer, Lustre with 248 OSTs).
"""

from repro.cluster.spec import (
    BurstBufferSpec,
    LustreSpec,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    SchedulingSpec,
)
from repro.cluster.node import ComputeNode
from repro.cluster.cpu import CorePlacement, PlacementPolicy, placement_efficiency
from repro.cluster.network import Interconnect
from repro.cluster.topology import Machine

__all__ = [
    "BurstBufferSpec",
    "ComputeNode",
    "CorePlacement",
    "Interconnect",
    "LustreSpec",
    "Machine",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "PlacementPolicy",
    "SchedulingSpec",
    "placement_efficiency",
]
