"""UniviStor reproduction: integrated hierarchical and distributed storage.

A full, simulation-backed reproduction of *"UniviStor: Integrated
Hierarchical and Distributed Storage for HPC"* (Wang, Byna, Dong, Tang —
IEEE CLUSTER 2018).  The library implements the paper's data-management
middleware — DHP log placement, virtual addressing, the distributed
metadata service, location-aware reads, interference-aware scheduling,
adaptive striping and lightweight workflow management — on top of a
discrete-event model of a Cori-class machine (compute nodes with NUMA
sockets, a DataWarp-like shared burst buffer, and a 248-OST Lustre file
system), plus the two comparison systems (Data Elevator and plain Lustre).

Quick start::

    from repro import MachineSpec, Simulation, UniviStorConfig

    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only())
    ...

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every figure in the paper's evaluation.
"""

from repro.analysis import OpRecord, Table, Telemetry, fmt_markdown_table
from repro.baselines import (
    DataElevatorDriver,
    DataElevatorServers,
    LustreDirectDriver,
)
from repro.cluster import (
    BurstBufferSpec,
    LustreSpec,
    Machine,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    SchedulingSpec,
)
from repro.core import (
    StorageTier,
    UniviStorConfig,
    UniviStorDriver,
    UniviStorServers,
)
from repro.sim import Engine
from repro.simmpi import Communicator, File, IORequest
from repro.simulation import Simulation
from repro.storage import BytesPayload, PatternPayload

__version__ = "1.0.0"

__all__ = [
    "BurstBufferSpec",
    "BytesPayload",
    "Communicator",
    "DataElevatorDriver",
    "DataElevatorServers",
    "Engine",
    "File",
    "IORequest",
    "LustreDirectDriver",
    "LustreSpec",
    "Machine",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "OpRecord",
    "PatternPayload",
    "SchedulingSpec",
    "Simulation",
    "StorageTier",
    "Table",
    "Telemetry",
    "UniviStorConfig",
    "UniviStorDriver",
    "UniviStorServers",
    "fmt_markdown_table",
    "__version__",
]
