"""UniviStor reproduction: integrated hierarchical and distributed storage.

A full, simulation-backed reproduction of *"UniviStor: Integrated
Hierarchical and Distributed Storage for HPC"* (Wang, Byna, Dong, Tang —
IEEE CLUSTER 2018).  The library implements the paper's data-management
middleware — DHP log placement, virtual addressing, the distributed
metadata service, location-aware reads, interference-aware scheduling,
adaptive striping and lightweight workflow management — on top of a
discrete-event model of a Cori-class machine (compute nodes with NUMA
sockets, a DataWarp-like shared burst buffer, and a 248-OST Lustre file
system), plus the two comparison systems (Data Elevator and plain Lustre).

Quick start::

    from repro import MachineSpec, Simulation, UniviStorConfig

    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only())
    ...

This module is the **stable public surface** (see ``docs/API.md``,
"API stability"): exactly the names in ``__all__`` are supported here.
Everything else lives in its home subpackage — importing a relocated
name from ``repro`` raises an :class:`AttributeError` that states the
new import path.

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every figure in the paper's evaluation.
"""

from repro.analysis.metrics import Telemetry
from repro.analysis.report import Table
from repro.cluster.spec import MachineSpec
from repro.core.config import UniviStorConfig
from repro.sim.faults import FaultSpec
from repro.simmpi.mpiio import File, IORequest
from repro.simulation import Simulation
from repro.storage.datamodel import PatternPayload
from repro.workloads.engine import WorkloadSpec, run_trace

__version__ = "2.1.0"

__all__ = [
    "FaultSpec",
    "File",
    "IORequest",
    "MachineSpec",
    "PatternPayload",
    "Simulation",
    "Table",
    "Telemetry",
    "UniviStorConfig",
    "WorkloadSpec",
    "run_experiment",
    "run_trace",
]

#: Names that used to be re-exported here; each maps to the module that
#: now owns it.  ``__getattr__`` turns a stale top-level import into an
#: error message carrying the new path.
_MOVED = {
    "BurstBufferSpec": "repro.cluster",
    "BytesPayload": "repro.storage",
    "Communicator": "repro.simmpi",
    "DataElevatorDriver": "repro.baselines",
    "DataElevatorServers": "repro.baselines",
    "Engine": "repro.sim",
    "LustreDirectDriver": "repro.baselines",
    "LustreSpec": "repro.cluster",
    "Machine": "repro.cluster",
    "NetworkSpec": "repro.cluster",
    "NodeSpec": "repro.cluster",
    "OpRecord": "repro.analysis",
    "SchedulingSpec": "repro.cluster",
    "StorageTier": "repro.core",
    "UniviStorDriver": "repro.core",
    "UniviStorServers": "repro.core",
    "fmt_markdown_table": "repro.analysis",
}


def __getattr__(name):
    if name == "run_experiment":
        # Lazy: resolving the experiment registry imports every figure
        # runner, which plain ``import repro`` should not pay for.
        from repro.experiments import run_experiment
        return run_experiment
    if name in _MOVED:
        raise AttributeError(
            f"{name!r} is not part of the stable public API of 'repro'; "
            f"import it from its home module instead: "
            f"'from {_MOVED[name]} import {name}'")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
