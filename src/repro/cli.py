"""Command-line interface.

Subcommands::

    repro machine   [--preset cori|summit] [--nodes N]
    repro micro     --procs N --system SYSTEM [--mb-per-proc M] [--read]
    repro vpic      --procs N --system SYSTEM [--steps S] [--compute SEC]
    repro workflow  --procs N --system SYSTEM [--steps S] [--overlap]
    repro chaos     [--seeds N] [--first-seed S]
                    [--mix storm|storm_legacy|partition|hotspot|storm2]
                    [--baseline] [--jobs N] [--verbose] [--lease-ttl T]
                    [--heartbeat-interval T] [--suspect-heartbeats K]
                    [--dead-heartbeats K]
    repro figures   [--sweep paper|small|...] [--out DIR] [--only fig6a,..]
    repro bench     [run_bench.py args] [--profile BENCH]
    repro workload  generate --out TRACE [--jobs N] [--mix MIX] [--seed S]
    repro workload  run [--trace TRACE] [--strategy NAME] [spec knobs]
    repro workload  compare-strategies [--trace TRACE] [--strategies A,B]
                    [--repeats N] [spec knobs]

``repro`` is installed as a console script; ``python -m repro.cli`` works
too.  SYSTEM is one of the paper's legend labels: ``UniviStor/DRAM``,
``UniviStor/BB``, ``UniviStor/(DRAM+BB)``, ``UniviStor/(Disk)``, ``DE``,
``Lustre``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.timeline import build_timeline
from repro.analysis.utilisation import machine_utilisation
from repro.cluster.spec import MachineSpec
from repro.experiments.common import (
    PROCS_PER_NODE,
    build_simulation,
    io_rate,
)
from repro.sim.faults import FaultSpec
from repro.units import MiB, fmt_bytes, fmt_rate, fmt_time
from repro.workloads import MicroBench, VpicIO

__all__ = ["main"]

SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "UniviStor/(DRAM+BB)",
           "UniviStor/(Disk)", "DE", "Lustre"]


def _spec(preset: str, nodes: int) -> MachineSpec:
    if preset == "cori":
        return MachineSpec.cori_haswell(nodes=nodes)
    if preset == "summit":
        return MachineSpec.summit_like(nodes=nodes)
    raise SystemExit(f"unknown preset {preset!r}")


def cmd_machine(args) -> int:
    spec = _spec(args.preset, args.nodes)
    node = spec.node
    print(f"machine preset: {args.preset} ({spec.nodes} nodes)")
    print(f"  node: {node.cores} cores / {node.numa_sockets} NUMA sockets, "
          f"{fmt_bytes(node.dram_capacity)} DRAM "
          f"({fmt_bytes(node.dram_cache_capacity)} UniviStor cache at "
          f"{fmt_rate(node.dram_cache_bandwidth)})")
    if node.local_ssd_capacity:
        print(f"  node-local SSD: {fmt_bytes(node.local_ssd_capacity)} at "
              f"{fmt_rate(node.local_ssd_bandwidth)}")
    bb = spec.burst_buffer
    if bb is not None:
        print(f"  shared burst buffer: {bb.nodes} appliance nodes, "
              f"{fmt_rate(bb.aggregate_bandwidth)} aggregate, "
              f"{fmt_bytes(bb.capacity)}")
    lustre = spec.lustre
    print(f"  lustre: {lustre.osts} OSTs x "
          f"{fmt_rate(lustre.ost_bandwidth)} = "
          f"{fmt_rate(lustre.aggregate_bandwidth)} aggregate")
    print(f"  network: {fmt_rate(spec.network.injection_bandwidth)} "
          f"injection/node")
    print(f"  capacity for clients: {spec.nodes * node.cores} cores -> "
          f"{spec.nodes * PROCS_PER_NODE} ranks at 32/node")
    return 0


def _install_faults(sim, args) -> None:
    """Arm the --fault-spec campaign (UniviStor systems only)."""
    if not getattr(args, "fault_spec", None):
        return
    if sim.univistor is None:
        raise SystemExit(
            "--fault-spec needs a UniviStor system (faults target its "
            "crash/degrade hooks)")
    injector = sim.install_faults(FaultSpec.parse(args.fault_spec),
                                  seed=args.fault_seed)
    print(f"fault timeline ({len(injector.timeline)} events, "
          f"seed {args.fault_seed}):")
    for fault in injector.timeline:
        print(f"  t={fault.at:g}s {fault.describe()}")


def _print_fault_report(sim) -> None:
    if sim.fault_injector is None:
        return
    ops = ("fault-node-crash", "fault-server-crash", "fault-node-storage-lost",
           "fault-device-degrade", "fault-device-fail", "fault-write-errors",
           "fault-net-degrade", "fault-net-delay", "fault-data-corrupt",
           "fault-restore", "metadata-failover", "re-replicate", "io-retry",
           "replicate-lost", "replicate-failed", "flush-lost", "flush-failed",
           "health-suspect", "health-dead", "recovery-takeover",
           "recovery-replay", "read-corrupt", "scrub", "scrub-repair",
           "scrub-lost", "scrub-rereplicate",
           "fault-partition", "partition-heal", "health-fenced",
           "health-recovered", "lease-expired", "recovery-replay-resume",
           "recovery-replay-aborted", "pfs-namespace-fallback")
    rows = [r for r in sim.telemetry.records if r.op in ops]
    print(f"\nfault/recovery telemetry ({len(rows)} events):")
    for r in rows:
        print(f"  t={r.t_end:8.3f}s {r.op:<24s} {r.path}")


def cmd_micro(args) -> int:
    sim, fstype = build_simulation(args.procs, args.system)
    _install_faults(sim, args)
    comm = sim.comm("iobench", size=args.procs)
    bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                       bytes_per_proc=args.mb_per_proc * MiB)

    def app():
        yield from bench.write_phase(sync=args.sync)
        if args.read:
            yield from bench.read_phase(verify=True)

    sim.run_to_completion(app(), name="micro")
    w = io_rate(sim, "iobench", ops=("open", "write", "close"),
                data_ops=("write",))
    print(f"{args.system}: {args.procs} procs x "
          f"{args.mb_per_proc} MiB")
    print(f"  write: {fmt_rate(w)}")
    if args.read:
        r = io_rate(sim, "iobench", ops=("open", "read", "close"),
                    data_ops=("read",))
        print(f"  read:  {fmt_rate(r)}  (verified)")
    flush_rate = sim.telemetry.io_rate(op="flush")
    if flush_rate:
        print(f"  flush: {fmt_rate(flush_rate)}")
    print(f"  simulated time: {fmt_time(sim.now)}")
    if args.utilisation:
        print("\nutilisation:")
        print(machine_utilisation(sim.machine).to_markdown(top=8))
    _print_fault_report(sim)
    return 0


def cmd_vpic(args) -> int:
    sim, fstype = build_simulation(args.procs, args.system)
    _install_faults(sim, args)
    comm = sim.comm("vpic", size=args.procs)
    vpic = VpicIO(sim, comm, fstype, steps=args.steps,
                  compute_seconds=args.compute)
    sim.run_to_completion(vpic.run(sync_last=True), name="vpic")
    print(f"{args.system}: {args.steps}-step VPIC-IO at {args.procs} procs")
    print(f"  measured I/O time: {fmt_time(vpic.measured_io_time())}")
    print(f"  exposed last flush: "
          f"{fmt_time(sim.telemetry.total_time(op='flush-wait'))}")
    print(f"  total elapsed (incl. compute): {fmt_time(sim.now)}")
    if args.timeline:
        print("\ntimeline:")
        print(build_timeline(sim.telemetry,
                             ops=["write", "flush", "flush-wait"]).render())
    _print_fault_report(sim)
    return 0


def cmd_workflow(args) -> int:
    from repro.experiments.fig9 import run_workflow
    elapsed = run_workflow(args.procs, args.system, args.overlap,
                           args.steps, verify=True)
    mode = "overlap" if args.overlap else "nonoverlap"
    print(f"{args.system} {mode}: {args.steps}-step VPIC + BD-CATS at "
          f"{args.procs} procs -> elapsed {fmt_time(elapsed)} (verified)")
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import MIXES, _config, run_campaign
    if args.mix not in MIXES:
        print(f"error: unknown chaos mix {args.mix!r}; available mixes: "
              f"{', '.join(MIXES)}")
        return 2
    hardened = not args.baseline
    mode = "hardened" if hardened else "baseline"
    # Detector/lease tuning: lower heartbeat intervals and thresholds
    # shrink detection latency but raise the false-positive risk under
    # transient cuts (a partitioned-but-alive server gets fenced sooner).
    overrides = {key: value for key, value in (
        ("heartbeat_interval", args.heartbeat_interval),
        ("suspect_heartbeats", args.suspect_heartbeats),
        ("dead_heartbeats", args.dead_heartbeats),
        ("lease_ttl", args.lease_ttl),
        ("range_split_threshold", args.split_threshold),
        ("range_merge_threshold", args.merge_threshold),
        ("hotspot_interval", args.hotspot_interval),
        ("pool_max_servers", args.pool_max),
        ("data_quorum", args.data_quorum)) if value is not None}
    config = None
    if overrides:
        import dataclasses
        config = dataclasses.replace(_config(hardened, args.mix), **overrides)
    campaign = run_campaign(args.seeds, hardened=hardened,
                            first_seed=args.first_seed, jobs=args.jobs,
                            mix=args.mix, config=config)
    lost = campaign.reads_total - campaign.reads_ok
    print(f"chaos campaign: {args.seeds} seeds "
          f"[{args.first_seed}, {args.first_seed + args.seeds}), "
          f"{mode} configuration, {args.mix} mix")
    print(f"  reads: {campaign.reads_ok}/{campaign.reads_total} correct "
          f"({campaign.success_rate:.2%}), {lost} structured losses")
    if args.mix in ("partition", "hotspot", "storm2"):
        total_writes = campaign.writes_ok + campaign.writes_lost
        print(f"  mid-storm overwrites: {campaign.writes_ok}/"
              f"{total_writes} committed on a majority, "
              f"{campaign.writes_lost} rejected whole (quorum lost)")
    print(f"  invariant violations: {len(campaign.violations)}")
    if args.summary_json:
        import json
        with open(args.summary_json, "w") as fh:
            json.dump(campaign.summary(), fh, indent=2)
        print(f"  summary written to {args.summary_json}")
    for violation in campaign.violations:
        print(f"    VIOLATION {violation}")
    if args.verbose:
        for run in campaign.runs:
            status = "ok" if run.ok else "VIOLATED"
            print(f"  seed {run.seed:4d}: {run.reads_ok}/{run.reads_total} "
                  f"reads, {len(run.faults)} faults, {status}  "
                  f"digest {run.digest[:12]}")
    if not campaign.ok:
        print("FAIL: durability invariant violated (silent corruption or "
              "unhandled exception)")
        return 1
    print("OK: every read returned correct bytes or a structured "
          "DataLossError")
    return 0


def cmd_figures(args) -> int:
    from repro.experiments.runall import main as runall_main
    forwarded: List[str] = []
    if args.sweep:
        forwarded += ["--sweep", args.sweep]
    if args.out:
        forwarded += ["--out", args.out]
    if args.only:
        forwarded += ["--only", args.only]
    return runall_main(forwarded)


def _workload_spec(args):
    """Map the ``repro workload`` flags onto a :class:`WorkloadSpec`."""
    from repro.workloads.engine import WorkloadSpec
    return WorkloadSpec(
        machine=args.machine, nodes=args.nodes,
        procs_per_node=args.procs_per_node, system=args.system,
        strategy=args.strategy, bb_pools=args.bb_pools,
        bb_fraction=args.bb_fraction, max_concurrent=args.max_concurrent,
        jobs=args.jobs, mix=args.mix, arrival_rate=args.arrival_rate,
        mean_mb_per_rank=args.mean_mb, max_ranks=args.max_ranks,
        compute_seconds=args.compute, seed=args.seed,
        fault_spec=getattr(args, "fault_spec", None),
        fault_seed=getattr(args, "fault_seed", 0),
        verify_reads=args.verify)


def _workload_trace(args, spec):
    from repro.workloads.jobs import JobTrace
    if args.trace:
        return JobTrace.load(args.trace)
    return spec.generate()


def cmd_workload_generate(args) -> int:
    spec = _workload_spec(args)
    trace = spec.generate()
    trace.save(args.out)
    total = sum(j.write_bytes for j in trace.jobs)
    print(f"wrote {args.out}: {len(trace)} jobs, mix={trace.mix}, "
          f"seed={trace.seed}, {fmt_bytes(total)} written in total")
    return 0


def cmd_workload_run(args) -> int:
    from repro.workloads.engine import run_trace
    spec = _workload_spec(args)
    result = run_trace(_workload_trace(args, spec), spec=spec)
    print(f"{args.strategy}: {len(result.jobs)} jobs, "
          f"makespan {fmt_time(result.makespan)}")
    for key, value in sorted(result.summary().items()):
        print(f"  {key:>16s}: {value:.4g}")
    print(f"  digest {result.digest}")
    return 0


def cmd_workload_compare(args) -> int:
    from repro.analysis.report import fmt_markdown_table
    from repro.analysis.workload import strategy_table
    from repro.workloads.engine import DEFAULT_STRATEGIES, compare_strategies
    spec = _workload_spec(args)
    strategies = (tuple(s for s in args.strategies.split(",") if s)
                  if args.strategies else DEFAULT_STRATEGIES)
    results = compare_strategies(_workload_trace(args, spec), spec=spec,
                                 strategies=strategies, repeats=args.repeats)
    any_result = next(iter(results.values()))
    print(f"{len(any_result.jobs)}-job {any_result.mix} trace, "
          f"{len(results)} strategies x {args.repeats} repeats "
          f"(digests bit-identical across repeats)")
    print(fmt_markdown_table(strategy_table(results), "{:.4g}"))
    for name in sorted(results):
        print(f"  {name:<20s} digest {results[name].digest}")
    return 0


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    """Spec knobs shared by every ``repro workload`` action."""
    g = p.add_argument_group("machine / system")
    g.add_argument("--machine", default="small",
                   choices=["small", "cori", "summit"])
    g.add_argument("--nodes", type=int, default=4)
    g.add_argument("--procs-per-node", type=int, default=4)
    g.add_argument("--system", default="UniviStor/BB",
                   choices=[s for s in SYSTEMS if s not in ("DE", "Lustre")])
    g = p.add_argument_group("storage scheduling")
    g.add_argument("--strategy", default="round_robin",
                   help="storage scheduler name (see "
                        "repro.workloads.available_strategies)")
    g.add_argument("--bb-pools", type=int, default=4)
    g.add_argument("--bb-fraction", type=float, default=0.10,
                   help="fraction of BB capacity the scheduler may reserve")
    g.add_argument("--max-concurrent", type=int, default=0,
                   help="cap on concurrently running jobs (0 = unlimited)")
    g = p.add_argument_group("trace")
    g.add_argument("--trace", default=None, metavar="PATH",
                   help="replay this JSON/CSV trace instead of generating")
    g.add_argument("--jobs", type=int, default=50)
    g.add_argument("--mix", default="cloud",
                   choices=["write_heavy", "read_heavy", "producer_consumer",
                            "cloud"])
    g.add_argument("--arrival-rate", type=float, default=16.0,
                   help="mean job arrivals per second")
    g.add_argument("--mean-mb", type=float, default=16.0,
                   help="mean MiB written per rank")
    g.add_argument("--max-ranks", type=int, default=0,
                   help="widest job (0 = nodes * procs-per-node)")
    g.add_argument("--compute", type=float, default=0.2,
                   help="mean compute seconds between I/O phases")
    g.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="verify read-back payloads byte-for-byte")
    _add_fault_args(p)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="inject faults, e.g. 'node-crash@120:node=0;"
             "device-degrade@60:tier=pfs,factor=0.25,duration=300' or "
             "'random:node_crash_rate=0.001,horizon=600'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault timelines")


def cmd_bench(bench_args: List[str]) -> int:
    """Forward to ``benchmarks/run_bench.py`` (the perf-trajectory
    harness), so ``repro bench --quick`` / ``repro bench --profile
    test_event_loop_throughput`` work from the CLI.  Source-checkout
    only: the benchmarks directory rides next to ``src/``, not inside
    the installed package."""
    import importlib.util
    import os
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    path = os.path.join(root, "benchmarks", "run_bench.py")
    if not os.path.exists(path):
        print("error: benchmarks/run_bench.py not found (repro bench "
              "needs a source checkout)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("_repro_run_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(bench_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UniviStor reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("machine", help="describe a machine preset")
    p.add_argument("--preset", default="cori", choices=["cori", "summit"])
    p.add_argument("--nodes", type=int, default=8)
    p.set_defaults(fn=cmd_machine)

    p = sub.add_parser("micro", help="run the §III-B micro-benchmark")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM", choices=SYSTEMS)
    p.add_argument("--mb-per-proc", type=float, default=256.0)
    p.add_argument("--read", action="store_true")
    p.add_argument("--sync", action="store_true",
                   help="wait for the flush and report its rate")
    p.add_argument("--utilisation", action="store_true")
    _add_fault_args(p)
    p.set_defaults(fn=cmd_micro)

    p = sub.add_parser("vpic", help="run the VPIC-IO kernel (§III-C)")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM", choices=SYSTEMS)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--compute", type=float, default=60.0)
    p.add_argument("--timeline", action="store_true",
                   help="render an ASCII Gantt of writes vs flushes")
    _add_fault_args(p)
    p.set_defaults(fn=cmd_vpic)

    p = sub.add_parser("workflow",
                       help="run the VPIC + BD-CATS workflow (§III-D)")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM",
                   choices=[s for s in SYSTEMS if s != "UniviStor/(Disk)"]
                   + ["UniviStor/(Disk)"])
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--overlap", action="store_true")
    p.set_defaults(fn=cmd_workflow)

    p = sub.add_parser("chaos",
                       help="run the seeded chaos campaign (durability "
                            "invariant check)")
    p.add_argument("--seeds", type=int, default=20,
                   help="number of consecutive seeds to run")
    p.add_argument("--first-seed", type=int, default=0)
    p.add_argument("--baseline", action="store_true",
                   help="disable detection/takeover/scrubbing (PR 1 "
                        "replication-only story) for comparison")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan seeds out over N worker processes "
                        "(per-seed digests stay bit-identical to the "
                        "serial run)")
    p.add_argument("--mix", default="storm",
                   help="fault mix, validated against the registered "
                        "mix names: crash/outage/corruption storm, "
                        "network partitions with a mid-cut overwrite "
                        "phase (quorum + fencing probes), skewed "
                        "hot-range overwrite waves under the adaptive "
                        "split/merge mitigation, or the storm2 "
                        "double-crash data-quorum gate")
    p.add_argument("--data-quorum", type=int, default=None, metavar="N",
                   help="override data_quorum (1 = legacy async "
                        "replication at close; 2 = writes ack only "
                        "after a synchronous shared-BB copy)")
    p.add_argument("--summary-json", default=None, metavar="PATH",
                   help="write the campaign summary (per-seed failure "
                        "causes, crash-window widths, digests) as JSON")
    p.add_argument("--split-threshold", type=int, default=None,
                   metavar="OPS",
                   help="override range_split_threshold (ops per "
                        "interval before a hot range splits)")
    p.add_argument("--merge-threshold", type=int, default=None,
                   metavar="OPS",
                   help="override range_merge_threshold (ops per "
                        "interval below which a split range re-merges)")
    p.add_argument("--hotspot-interval", type=float, default=None,
                   metavar="SEC",
                   help="override the mitigation manager's tick period")
    p.add_argument("--pool-max", type=int, default=None, metavar="N",
                   help="override pool_max_servers (elastic metadata "
                        "pool ceiling; 0 disables growth)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="SEC",
                   help="override the detector's heartbeat period "
                        "(smaller = faster detection, more "
                        "false-positive fencing under transient cuts)")
    p.add_argument("--suspect-heartbeats", type=int, default=None,
                   metavar="K",
                   help="missed beats before a target is suspected")
    p.add_argument("--dead-heartbeats", type=int, default=None,
                   metavar="K",
                   help="missed beats before a target is declared dead")
    p.add_argument("--lease-ttl", type=float, default=None, metavar="SEC",
                   help="override the ownership lease TTL (partitioned "
                        "ex-owners are fenced once it expires)")
    p.add_argument("--verbose", action="store_true",
                   help="per-seed read counts and digests")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("bench",
                       help="record the perf trajectory "
                            "(benchmarks/run_bench.py; --profile BENCH "
                            "writes results/profile_<BENCH>.txt)")
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to run_bench.py")

    p = sub.add_parser("figures",
                       help="regenerate the paper's figures (runall)")
    p.add_argument("--sweep", default=None)
    p.add_argument("--out", default=None)
    p.add_argument("--only", default=None)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("workload",
                       help="multi-job traces and storage-scheduler "
                            "comparison")
    wsub = p.add_subparsers(dest="workload_command", required=True)

    w = wsub.add_parser("generate", help="generate a job trace file")
    w.add_argument("--out", required=True, metavar="PATH",
                   help="output path (.csv writes CSV, anything else JSON)")
    _add_workload_args(w)
    w.set_defaults(fn=cmd_workload_generate)

    w = wsub.add_parser("run", help="replay a trace under one strategy")
    _add_workload_args(w)
    w.set_defaults(fn=cmd_workload_run)

    w = wsub.add_parser("compare-strategies",
                        help="replay one trace under several strategies")
    w.add_argument("--strategies", default=None, metavar="A,B,..",
                   help="comma list (default: all built-ins)")
    w.add_argument("--repeats", type=int, default=2,
                   help="reruns per strategy; digests must match")
    _add_workload_args(w)
    w.set_defaults(fn=cmd_workload_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        # Forwarded verbatim: run_bench.py owns the flag set, so the
        # dispatcher must not try to parse (or grow stale copies of)
        # its options.
        return cmd_bench(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
