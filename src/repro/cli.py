"""Command-line interface.

Subcommands::

    repro machine   [--preset cori|summit] [--nodes N]
    repro micro     --procs N --system SYSTEM [--mb-per-proc M] [--read]
    repro vpic      --procs N --system SYSTEM [--steps S] [--compute SEC]
    repro workflow  --procs N --system SYSTEM [--steps S] [--overlap]
    repro chaos     [--seeds N] [--first-seed S] [--mix storm|partition]
                    [--baseline] [--jobs N] [--verbose] [--lease-ttl T]
                    [--heartbeat-interval T] [--suspect-heartbeats K]
                    [--dead-heartbeats K]
    repro figures   [--sweep paper|small|...] [--out DIR] [--only fig6a,..]

``repro`` is installed as a console script; ``python -m repro.cli`` works
too.  SYSTEM is one of the paper's legend labels: ``UniviStor/DRAM``,
``UniviStor/BB``, ``UniviStor/(DRAM+BB)``, ``UniviStor/(Disk)``, ``DE``,
``Lustre``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.timeline import build_timeline
from repro.analysis.utilisation import machine_utilisation
from repro.cluster.spec import MachineSpec
from repro.experiments.common import (
    PROCS_PER_NODE,
    build_simulation,
    io_rate,
)
from repro.sim.faults import FaultSpec
from repro.units import MiB, fmt_bytes, fmt_rate, fmt_time
from repro.workloads import MicroBench, VpicIO

__all__ = ["main"]

SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "UniviStor/(DRAM+BB)",
           "UniviStor/(Disk)", "DE", "Lustre"]


def _spec(preset: str, nodes: int) -> MachineSpec:
    if preset == "cori":
        return MachineSpec.cori_haswell(nodes=nodes)
    if preset == "summit":
        return MachineSpec.summit_like(nodes=nodes)
    raise SystemExit(f"unknown preset {preset!r}")


def cmd_machine(args) -> int:
    spec = _spec(args.preset, args.nodes)
    node = spec.node
    print(f"machine preset: {args.preset} ({spec.nodes} nodes)")
    print(f"  node: {node.cores} cores / {node.numa_sockets} NUMA sockets, "
          f"{fmt_bytes(node.dram_capacity)} DRAM "
          f"({fmt_bytes(node.dram_cache_capacity)} UniviStor cache at "
          f"{fmt_rate(node.dram_cache_bandwidth)})")
    if node.local_ssd_capacity:
        print(f"  node-local SSD: {fmt_bytes(node.local_ssd_capacity)} at "
              f"{fmt_rate(node.local_ssd_bandwidth)}")
    bb = spec.burst_buffer
    if bb is not None:
        print(f"  shared burst buffer: {bb.nodes} appliance nodes, "
              f"{fmt_rate(bb.aggregate_bandwidth)} aggregate, "
              f"{fmt_bytes(bb.capacity)}")
    lustre = spec.lustre
    print(f"  lustre: {lustre.osts} OSTs x "
          f"{fmt_rate(lustre.ost_bandwidth)} = "
          f"{fmt_rate(lustre.aggregate_bandwidth)} aggregate")
    print(f"  network: {fmt_rate(spec.network.injection_bandwidth)} "
          f"injection/node")
    print(f"  capacity for clients: {spec.nodes * node.cores} cores -> "
          f"{spec.nodes * PROCS_PER_NODE} ranks at 32/node")
    return 0


def _install_faults(sim, args) -> None:
    """Arm the --fault-spec campaign (UniviStor systems only)."""
    if not getattr(args, "fault_spec", None):
        return
    if sim.univistor is None:
        raise SystemExit(
            "--fault-spec needs a UniviStor system (faults target its "
            "crash/degrade hooks)")
    injector = sim.install_faults(FaultSpec.parse(args.fault_spec),
                                  seed=args.fault_seed)
    print(f"fault timeline ({len(injector.timeline)} events, "
          f"seed {args.fault_seed}):")
    for fault in injector.timeline:
        print(f"  t={fault.at:g}s {fault.describe()}")


def _print_fault_report(sim) -> None:
    if sim.fault_injector is None:
        return
    ops = ("fault-node-crash", "fault-server-crash", "fault-node-storage-lost",
           "fault-device-degrade", "fault-device-fail", "fault-write-errors",
           "fault-net-degrade", "fault-net-delay", "fault-data-corrupt",
           "fault-restore", "metadata-failover", "re-replicate", "io-retry",
           "replicate-lost", "replicate-failed", "flush-lost", "flush-failed",
           "health-suspect", "health-dead", "recovery-takeover",
           "recovery-replay", "read-corrupt", "scrub", "scrub-repair",
           "scrub-lost", "scrub-rereplicate",
           "fault-partition", "partition-heal", "health-fenced",
           "health-recovered", "lease-expired", "recovery-replay-resume",
           "recovery-replay-aborted", "pfs-namespace-fallback")
    rows = [r for r in sim.telemetry.records if r.op in ops]
    print(f"\nfault/recovery telemetry ({len(rows)} events):")
    for r in rows:
        print(f"  t={r.t_end:8.3f}s {r.op:<24s} {r.path}")


def cmd_micro(args) -> int:
    sim, fstype = build_simulation(args.procs, args.system)
    _install_faults(sim, args)
    comm = sim.comm("iobench", size=args.procs)
    bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                       bytes_per_proc=args.mb_per_proc * MiB)

    def app():
        yield from bench.write_phase(sync=args.sync)
        if args.read:
            yield from bench.read_phase(verify=True)

    sim.run_to_completion(app(), name="micro")
    w = io_rate(sim, "iobench", ops=("open", "write", "close"),
                data_ops=("write",))
    print(f"{args.system}: {args.procs} procs x "
          f"{args.mb_per_proc} MiB")
    print(f"  write: {fmt_rate(w)}")
    if args.read:
        r = io_rate(sim, "iobench", ops=("open", "read", "close"),
                    data_ops=("read",))
        print(f"  read:  {fmt_rate(r)}  (verified)")
    flush_rate = sim.telemetry.io_rate(op="flush")
    if flush_rate:
        print(f"  flush: {fmt_rate(flush_rate)}")
    print(f"  simulated time: {fmt_time(sim.now)}")
    if args.utilisation:
        print("\nutilisation:")
        print(machine_utilisation(sim.machine).to_markdown(top=8))
    _print_fault_report(sim)
    return 0


def cmd_vpic(args) -> int:
    sim, fstype = build_simulation(args.procs, args.system)
    _install_faults(sim, args)
    comm = sim.comm("vpic", size=args.procs)
    vpic = VpicIO(sim, comm, fstype, steps=args.steps,
                  compute_seconds=args.compute)
    sim.run_to_completion(vpic.run(sync_last=True), name="vpic")
    print(f"{args.system}: {args.steps}-step VPIC-IO at {args.procs} procs")
    print(f"  measured I/O time: {fmt_time(vpic.measured_io_time())}")
    print(f"  exposed last flush: "
          f"{fmt_time(sim.telemetry.total_time(op='flush-wait'))}")
    print(f"  total elapsed (incl. compute): {fmt_time(sim.now)}")
    if args.timeline:
        print("\ntimeline:")
        print(build_timeline(sim.telemetry,
                             ops=["write", "flush", "flush-wait"]).render())
    _print_fault_report(sim)
    return 0


def cmd_workflow(args) -> int:
    from repro.experiments.fig9 import run_workflow
    elapsed = run_workflow(args.procs, args.system, args.overlap,
                           args.steps, verify=True)
    mode = "overlap" if args.overlap else "nonoverlap"
    print(f"{args.system} {mode}: {args.steps}-step VPIC + BD-CATS at "
          f"{args.procs} procs -> elapsed {fmt_time(elapsed)} (verified)")
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import _config, run_campaign
    hardened = not args.baseline
    mode = "hardened" if hardened else "baseline"
    # Detector/lease tuning: lower heartbeat intervals and thresholds
    # shrink detection latency but raise the false-positive risk under
    # transient cuts (a partitioned-but-alive server gets fenced sooner).
    overrides = {key: value for key, value in (
        ("heartbeat_interval", args.heartbeat_interval),
        ("suspect_heartbeats", args.suspect_heartbeats),
        ("dead_heartbeats", args.dead_heartbeats),
        ("lease_ttl", args.lease_ttl)) if value is not None}
    config = None
    if overrides:
        import dataclasses
        config = dataclasses.replace(_config(hardened, args.mix), **overrides)
    campaign = run_campaign(args.seeds, hardened=hardened,
                            first_seed=args.first_seed, jobs=args.jobs,
                            mix=args.mix, config=config)
    lost = campaign.reads_total - campaign.reads_ok
    print(f"chaos campaign: {args.seeds} seeds "
          f"[{args.first_seed}, {args.first_seed + args.seeds}), "
          f"{mode} configuration, {args.mix} mix")
    print(f"  reads: {campaign.reads_ok}/{campaign.reads_total} correct "
          f"({campaign.success_rate:.2%}), {lost} structured losses")
    if args.mix == "partition":
        total_writes = campaign.writes_ok + campaign.writes_lost
        print(f"  mid-partition overwrites: {campaign.writes_ok}/"
              f"{total_writes} committed on a majority, "
              f"{campaign.writes_lost} rejected whole (quorum lost)")
    print(f"  invariant violations: {len(campaign.violations)}")
    for violation in campaign.violations:
        print(f"    VIOLATION {violation}")
    if args.verbose:
        for run in campaign.runs:
            status = "ok" if run.ok else "VIOLATED"
            print(f"  seed {run.seed:4d}: {run.reads_ok}/{run.reads_total} "
                  f"reads, {len(run.faults)} faults, {status}  "
                  f"digest {run.digest[:12]}")
    if not campaign.ok:
        print("FAIL: durability invariant violated (silent corruption or "
              "unhandled exception)")
        return 1
    print("OK: every read returned correct bytes or a structured "
          "DataLossError")
    return 0


def cmd_figures(args) -> int:
    from repro.experiments.runall import main as runall_main
    forwarded: List[str] = []
    if args.sweep:
        forwarded += ["--sweep", args.sweep]
    if args.out:
        forwarded += ["--out", args.out]
    if args.only:
        forwarded += ["--only", args.only]
    return runall_main(forwarded)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="inject faults, e.g. 'node-crash@120:node=0;"
             "device-degrade@60:tier=pfs,factor=0.25,duration=300' or "
             "'random:node_crash_rate=0.001,horizon=600'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault timelines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UniviStor reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("machine", help="describe a machine preset")
    p.add_argument("--preset", default="cori", choices=["cori", "summit"])
    p.add_argument("--nodes", type=int, default=8)
    p.set_defaults(fn=cmd_machine)

    p = sub.add_parser("micro", help="run the §III-B micro-benchmark")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM", choices=SYSTEMS)
    p.add_argument("--mb-per-proc", type=float, default=256.0)
    p.add_argument("--read", action="store_true")
    p.add_argument("--sync", action="store_true",
                   help="wait for the flush and report its rate")
    p.add_argument("--utilisation", action="store_true")
    _add_fault_args(p)
    p.set_defaults(fn=cmd_micro)

    p = sub.add_parser("vpic", help="run the VPIC-IO kernel (§III-C)")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM", choices=SYSTEMS)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--compute", type=float, default=60.0)
    p.add_argument("--timeline", action="store_true",
                   help="render an ASCII Gantt of writes vs flushes")
    _add_fault_args(p)
    p.set_defaults(fn=cmd_vpic)

    p = sub.add_parser("workflow",
                       help="run the VPIC + BD-CATS workflow (§III-D)")
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--system", default="UniviStor/DRAM",
                   choices=[s for s in SYSTEMS if s != "UniviStor/(Disk)"]
                   + ["UniviStor/(Disk)"])
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--overlap", action="store_true")
    p.set_defaults(fn=cmd_workflow)

    p = sub.add_parser("chaos",
                       help="run the seeded chaos campaign (durability "
                            "invariant check)")
    p.add_argument("--seeds", type=int, default=20,
                   help="number of consecutive seeds to run")
    p.add_argument("--first-seed", type=int, default=0)
    p.add_argument("--baseline", action="store_true",
                   help="disable detection/takeover/scrubbing (PR 1 "
                        "replication-only story) for comparison")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan seeds out over N worker processes "
                        "(per-seed digests stay bit-identical to the "
                        "serial run)")
    p.add_argument("--mix", default="storm",
                   choices=["storm", "partition"],
                   help="fault mix: crash/outage/corruption storm, or "
                        "network partitions with a mid-cut overwrite "
                        "phase (quorum + fencing probes)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="SEC",
                   help="override the detector's heartbeat period "
                        "(smaller = faster detection, more "
                        "false-positive fencing under transient cuts)")
    p.add_argument("--suspect-heartbeats", type=int, default=None,
                   metavar="K",
                   help="missed beats before a target is suspected")
    p.add_argument("--dead-heartbeats", type=int, default=None,
                   metavar="K",
                   help="missed beats before a target is declared dead")
    p.add_argument("--lease-ttl", type=float, default=None, metavar="SEC",
                   help="override the ownership lease TTL (partitioned "
                        "ex-owners are fenced once it expires)")
    p.add_argument("--verbose", action="store_true",
                   help="per-seed read counts and digests")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("figures",
                       help="regenerate the paper's figures (runall)")
    p.add_argument("--sweep", default=None)
    p.add_argument("--out", default=None)
    p.add_argument("--only", default=None)
    p.set_defaults(fn=cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
