"""Discrete-event simulation kernel.

This subpackage provides the event engine that the whole UniviStor
reproduction runs on.  It is a small, deterministic, SimPy-like kernel:

* :class:`~repro.sim.engine.Engine` — the event loop with simulated time.
* :class:`~repro.sim.engine.Process` — cooperative processes written as
  Python generators that ``yield`` events.
* :class:`~repro.sim.resources.Resource` — a FIFO resource with finite
  capacity (used for mutexes, server slots, ...).
* :class:`~repro.sim.resources.BandwidthResource` — a fair-shared pipe with
  optional per-flow caps and contention models (used for storage devices,
  network links and NUMA memory channels).

The kernel is deliberately minimal but fully deterministic: ties in event
time are broken by a monotonically increasing sequence number, so repeated
runs with the same inputs produce bit-identical schedules.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.faults import Fault, FaultInjector, FaultSpec
from repro.sim.resources import (
    BandwidthResource,
    Flow,
    Resource,
    Store,
)
from repro.sim.rng import StreamRNG

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthResource",
    "Engine",
    "Event",
    "Fault",
    "FaultInjector",
    "FaultSpec",
    "Flow",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "StreamRNG",
    "Timeout",
]
