"""Deterministic random-number streams.

Every stochastic element of the machine model draws from its own named
stream so that adding a new consumer never perturbs existing draws — the
standard trick for reproducible parallel simulations.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["StreamRNG"]


class StreamRNG:
    """A family of independent, named ``numpy`` generators.

    >>> rng = StreamRNG(seed=7)
    >>> a = rng.stream("lustre.ost").integers(0, 10)
    >>> b = StreamRNG(seed=7).stream("lustre.ost").integers(0, 10)
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "StreamRNG":
        """Derive an independent child family (for nested components)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return StreamRNG(int.from_bytes(digest[:8], "little"))
