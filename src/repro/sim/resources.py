"""Shared resources for the simulation kernel.

Three resource kinds cover everything the storage models need:

* :class:`Resource` — a counted FIFO resource (mutexes, service slots).
* :class:`Store` — a FIFO queue of items (message queues between processes).
* :class:`BandwidthResource` — a max-min fair-shared pipe.  This is the
  workhorse: every storage device, network link and NUMA memory channel in
  the machine model is a ``BandwidthResource``.

Flow groups
-----------
At 8192 simulated MPI ranks, modelling each rank's transfer as its own flow
would make re-scheduling quadratic.  Collective I/O in HPC is barrier
synchronised, so a *flow group* represents ``streams`` identical parallel
streams moving ``nbytes`` each.  Fair sharing is computed per stream; the
group completes when its streams do.  Contention and overlap between
*different* groups (say, an application checkpoint racing a server flush)
still emerge from the event engine.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Resource", "Store", "Flow", "BandwidthResource"]

_EPS_BYTES = 1e-6


class Resource:
    """A counted resource with FIFO granting.

    ``request()`` returns an event that succeeds once one of ``capacity``
    slots is free; ``release()`` frees a slot.  Typical use inside a process::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: List[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        event = self.engine.event(name=f"request:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.pop(0)
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO store of items with blocking ``get``."""

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.engine.event(name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class Flow:
    """One group of identical parallel streams on a :class:`BandwidthResource`."""

    __slots__ = (
        "resource", "streams", "nbytes", "remaining", "per_stream_cap",
        "weight", "tag", "event", "rate", "started_at", "meta",
        "efficiency",
    )

    def __init__(self, resource: "BandwidthResource", nbytes: float,
                 streams: int, per_stream_cap: float, weight: float,
                 tag: Optional[str], event: Event, meta: Optional[dict],
                 efficiency: float = 1.0):
        self.resource = resource
        self.streams = streams
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)  # per stream
        self.per_stream_cap = per_stream_cap
        self.weight = weight
        self.tag = tag
        self.event = event
        self.rate = 0.0  # per-stream goodput, set by recompute
        self.started_at = resource.engine.now
        self.meta = meta or {}
        self.efficiency = efficiency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow tag={self.tag!r} streams={self.streams} "
                f"remaining={self.remaining:.3g}B rate={self.rate:.3g}B/s>")


# A contention model maps the live flow list to a per-flow efficiency in
# (0, 1].  It is consulted on every re-schedule, so it sees concurrency as
# it actually evolves in simulated time.
ContentionModel = Callable[["BandwidthResource", List[Flow]], Dict[Flow, float]]


class BandwidthResource:
    """A pipe of fixed aggregate bandwidth shared max-min fairly.

    Parameters
    ----------
    bandwidth:
        Aggregate bytes/second moved by the pipe when fully utilised.
    latency:
        Fixed per-transfer startup latency (seconds) charged before the
        transfer joins the share set.
    contention_model:
        Optional hook computing a per-flow *efficiency* factor from the live
        flow population — this is how Lustre lock contention, shared-file
        serialisation on the burst buffer, and NUMA interference are
        expressed.  Efficiency scales a flow's achieved goodput after its
        fair share is computed; it deliberately models *wasted* device time
        (the device is busy, the payload moves slower).
    """

    def __init__(self, engine: Engine, bandwidth: float, latency: float = 0.0,
                 contention_model: Optional[ContentionModel] = None,
                 name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.contention_model = contention_model
        self.name = name
        self._flows: List[Flow] = []
        self._last_update = engine.now
        self._wake_version = 0
        # Incremental bookkeeping: live flows with a finite per-stream
        # cap.  Zero (the common case) lets rescheduling skip the
        # water-filling machinery entirely.
        self._capped_flows = 0
        # Health scaling in (0, 1]: fault injection throttles the whole
        # pipe (stragglers, brownouts); applies to in-flight flows too.
        self._degrade_factor = 1.0
        # Cumulative accounting for utilisation reports.
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    # -- public API -----------------------------------------------------
    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    @property
    def active_streams(self) -> int:
        return sum(f.streams for f in self._flows)

    def transfer(self, nbytes: float, streams: int = 1,
                 per_stream_cap: float = math.inf, weight: float = 1.0,
                 tag: Optional[str] = None, latency: Optional[float] = None,
                 meta: Optional[dict] = None,
                 efficiency: float = 1.0) -> Event:
        """Start a transfer of ``nbytes`` per stream; returns completion event.

        ``efficiency`` is a static per-flow goodput factor in (0, 1] known
        at submit time (e.g. a scheduling-derived interference factor); it
        multiplies with any dynamic factor from the contention model.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        if per_stream_cap <= 0:
            raise ValueError("per_stream_cap must be positive")
        if not (0.0 < efficiency <= 1.0):
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        lat = self.latency if latency is None else latency
        event = self.engine.event(name=f"xfer:{self.name}:{tag}")
        flow = Flow(self, nbytes, streams, per_stream_cap, weight, tag, event,
                    meta, efficiency=efficiency)
        if nbytes == 0:
            # Pure-latency operation; never joins the share set.
            if lat > 0:
                def _finish(ev, event=event, flow=flow):
                    event.succeed(flow)
                self.engine.call_later(lat, _finish)
            else:
                event.succeed(flow)
            return event
        if lat > 0:
            def _admit(ev, flow=flow):
                self._admit(flow)
            self.engine.call_later(lat, _admit)
        else:
            self._admit(flow)
        return event

    def recompute(self) -> None:
        """Force a re-schedule (call after external contention state changes)."""
        self._advance()
        self._reschedule()

    @property
    def degrade_factor(self) -> float:
        return self._degrade_factor

    def set_degrade(self, factor: float) -> None:
        """Throttle the pipe to ``factor`` of its health (fault injection).

        Unlike per-flow ``efficiency`` this is a property of the *pipe*:
        it rescales flows already in flight, which is what a straggling
        OST or a browning-out burst-buffer appliance does to transfers
        that started before the fault.
        """
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"degrade factor must be in (0, 1], got {factor}")
        self._advance()
        self._degrade_factor = float(factor)
        self._reschedule()

    def utilisation(self, since: float = 0.0) -> float:
        """Fraction of elapsed simulated time the pipe was busy."""
        elapsed = self.engine.now - since
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    # -- internals -------------------------------------------------------
    def _admit(self, flow: Flow) -> None:
        self._advance()
        self._flows.append(flow)
        if flow.per_stream_cap != math.inf:
            self._capped_flows += 1
        self._reschedule()

    def _advance(self) -> None:
        """Account progress from the last update to now at current rates."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0 and self._flows:
            self.busy_time += dt
            for flow in self._flows:
                moved = flow.rate * dt
                flow.remaining = max(0.0, flow.remaining - moved)
                self.bytes_moved += moved * flow.streams
        self._last_update = now

    def _rates(self) -> None:
        """Max-min fair allocation with per-stream caps, then efficiency."""
        flows = self._flows
        if not flows:
            return
        degrade = self._degrade_factor
        if self._capped_flows == 0 and self.contention_model is None:
            # Fast path (the common case): with no finite per-stream cap
            # the water level is a single division — no per-call dicts,
            # no candidate lists.  Arithmetic is bit-identical to the
            # general path's uncapped first round.
            total_weight = sum(f.streams * f.weight for f in flows)
            if total_weight <= 0:  # pragma: no cover - defensive
                return
            fair = self.bandwidth / total_weight
            for f in flows:
                f.rate = fair * f.weight * f.efficiency * degrade
            return
        effs: Dict[Flow, float] = {}
        if self.contention_model is not None:
            effs = self.contention_model(self, flows)
        # Water-filling over weighted streams.
        remaining_bw = self.bandwidth
        unallocated = flows
        shares: Dict[Flow, float] = {}
        while unallocated:
            total_weight = sum(f.streams * f.weight for f in unallocated)
            if total_weight <= 0:  # pragma: no cover - defensive
                break
            fair = remaining_bw / total_weight
            capped = [f for f in unallocated
                      if f.per_stream_cap < fair * f.weight]
            if not capped:
                for f in unallocated:
                    shares[f] = fair * f.weight
                break
            for f in capped:
                shares[f] = f.per_stream_cap
                remaining_bw -= f.per_stream_cap * f.streams
            # One-pass filter instead of per-flow list.remove: the
            # round used to go quadratic when many caps bind at once.
            capped_set = set(capped)
            unallocated = [f for f in unallocated if f not in capped_set]
            remaining_bw = max(0.0, remaining_bw)
        for f in flows:
            eff = effs.get(f, 1.0)
            if not (0.0 < eff <= 1.0):
                raise SimulationError(
                    f"contention model returned efficiency {eff} for {f!r}")
            f.rate = shares.get(f, 0.0) * eff * f.efficiency * degrade

    def _min_dt(self) -> float:
        """Smallest time step representable around the current sim time.

        Guards against float absorption: a horizon smaller than the ULP of
        ``now`` would schedule a wake-up at exactly ``now`` and livelock.
        """
        now = self.engine.now
        return max(1e-12, abs(now) * 1e-12)

    def _reschedule(self) -> None:
        """Complete finished flows, recompute rates, arm the next wake-up."""
        # Complete any flow that has drained — or whose tail would take
        # less than one representable time step to drain.
        min_dt = self._min_dt()
        flows = self._flows
        done = [f for f in flows
                if f.remaining <= _EPS_BYTES
                or (f.rate > 0 and f.remaining <= f.rate * min_dt)]
        if done:
            # Batch removal: a barrier-synchronised collective completes
            # all its flows on one wake-up, and per-flow list.remove made
            # that quadratic in the flow count.
            if len(done) == len(flows):
                self._flows = []
            else:
                done_set = set(done)
                self._flows = [f for f in flows if f not in done_set]
            for f in done:
                if f.per_stream_cap != math.inf:
                    self._capped_flows -= 1
                f.remaining = 0.0
                f.rate = 0.0
                f.event.succeed(f)
        self._rates()
        self._wake_version += 1
        if not self._flows:
            return
        horizon = math.inf
        for f in self._flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if horizon is math.inf:
            raise SimulationError(
                f"bandwidth resource {self.name!r} stalled: "
                f"{len(self._flows)} flows with zero rate")
        horizon = max(horizon, min_dt)
        version = self._wake_version

        def _wake(ev, version=version):
            if version != self._wake_version:
                return  # stale wake-up; a newer schedule superseded it
            self._advance()
            self._reschedule()

        self.engine.call_later(horizon, _wake)
