"""Deterministic, seeded fault injection (robustness extension, §V).

The paper's conclusions name resilience in volatile layers as the open
problem; this module supplies the *adversary*: a :class:`FaultInjector`
wired through the event engine that can, on a schedule or drawn
probabilistically from a seeded RNG, crash compute nodes and individual
server processes, degrade or fail storage devices (slow-OST stragglers,
shared-BB brownouts, injected write errors), and slow or delay the
interconnect.  Recovery lives in :mod:`repro.core` — metadata replication
with client-side failover, retry/backoff on tier I/O, DHP skipping sick
tiers, and re-replication of under-replicated sessions.

Determinism: the whole fault timeline is resolved *up front* from the
spec plus a :class:`~repro.sim.rng.StreamRNG` seed (one named stream per
target, so adding a fault class never perturbs existing draws).  The same
seed always produces the identical timeline, and faults fire through
ordinary engine timeouts — FIFO tie-breaking keeps the schedule
bit-reproducible.  Every injected fault is surfaced through the system's
``telemetry_hook`` so runs stay auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Tuple

from repro.sim.rng import StreamRNG

__all__ = ["Fault", "FaultInjector", "FaultSpec"]

#: Fault kinds understood by the injector.  New kinds are appended
#: last: the timeline sort keys on ``KINDS.index``, so extending the
#: tuple at the end preserves every existing schedule bit-for-bit.
#: ``data-corrupt`` is silent rot in stored bytes, detected only by
#: checksum verification; ``partition``/``heal`` cut and restore the
#: network links around a server or node group (CAP failure model).
KINDS = ("node-crash", "server-crash", "device-degrade", "device-fail",
         "write-errors", "net-degrade", "net-delay", "data-corrupt",
         "partition", "heal")

_SHARED_TIERS = ("pfs", "shared_bb")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault event.

    ``target`` is a node id (``node-crash``, and device faults on
    node-local tiers) or a server id (``server-crash``); ``tier`` names
    the device for device faults (``pfs``, ``shared_bb``, ``dram``,
    ``local_ssd``).  ``duration`` schedules an automatic restore for
    degradations/outages; ``None`` makes them permanent.
    """

    at: float
    kind: str
    target: Optional[int] = None
    tier: Optional[str] = None
    factor: float = 1.0
    duration: Optional[float] = None
    count: int = 0
    delay: float = 0.0
    #: Bytes to rot for ``data-corrupt`` (None -> the injector default).
    nbytes: Optional[float] = None
    #: Server group for ``partition``/``heal`` (exactly one of servers/
    #: nodes for partition; heal may omit both to heal everything).
    servers: Optional[Tuple[int, ...]] = None
    #: Node group for ``partition``/``heal``: expands to every server
    #: process the nodes host.
    nodes: Optional[Tuple[int, ...]] = None
    #: Partition mode: ``sym`` (default — requests and heartbeats lost,
    #: fencing clock runs) or ``oneway`` (requests lost, heartbeats
    #: still arrive: unavailable but never suspected or fenced).
    mode: Optional[str] = None

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"valid: {KINDS}")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind in ("node-crash",) and self.target is None:
            raise ValueError("node-crash needs target=<node id>")
        if self.kind == "server-crash" and self.target is None:
            raise ValueError("server-crash needs target=<server id>")
        if self.kind.startswith("device-") or self.kind == "write-errors":
            if self.tier is None:
                raise ValueError(f"{self.kind} needs tier=<storage tier>")
        if self.kind == "data-corrupt" and self.tier is None:
            raise ValueError("data-corrupt needs tier=<storage tier>")
        if self.nbytes is not None and self.nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {self.nbytes}")
        if self.kind == "partition":
            if (self.servers is None) == (self.nodes is None):
                raise ValueError(
                    "partition needs exactly one of servers=/nodes=")
            if self.mode not in (None, "sym", "oneway"):
                raise ValueError(f"unknown partition mode {self.mode!r}; "
                                 f"valid: sym, oneway")
        elif self.kind == "heal":
            if self.servers is not None and self.nodes is not None:
                raise ValueError("heal takes at most one of servers=/nodes=")
            if self.mode is not None:
                raise ValueError("mode= is only valid for partition faults")
        else:
            if self.servers is not None or self.nodes is not None:
                raise ValueError(f"servers=/nodes= are only valid for "
                                 f"partition/heal, not {self.kind}")
            if self.mode is not None:
                raise ValueError("mode= is only valid for partition faults")
        for group in (self.servers, self.nodes):
            if group is not None:
                if not group:
                    raise ValueError("empty partition group")
                if any(member < 0 for member in group):
                    raise ValueError(f"negative id in partition group "
                                     f"{group}")
                if len(set(group)) != len(group):
                    raise ValueError(f"duplicate id in partition group "
                                     f"{group}")

    def describe(self) -> str:
        parts = [self.kind]
        if self.target is not None:
            parts.append(f"target={self.target}")
        if self.tier is not None:
            parts.append(f"tier={self.tier}")
        if self.factor != 1.0:
            parts.append(f"factor={self.factor:g}")
        if self.duration is not None:
            parts.append(f"duration={self.duration:g}")
        if self.count:
            parts.append(f"count={self.count}")
        if self.delay:
            parts.append(f"delay={self.delay:g}")
        if self.nbytes is not None:
            parts.append(f"nbytes={self.nbytes:g}")
        if self.servers is not None:
            parts.append(f"servers={'+'.join(map(str, self.servers))}")
        if self.nodes is not None:
            parts.append(f"nodes={'+'.join(map(str, self.nodes))}")
        if self.mode is not None:
            parts.append(f"mode={self.mode}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultSpec:
    """What to inject: explicit events plus probabilistic rates.

    The probabilistic part draws exponential inter-arrival times within
    ``[0, horizon)`` from per-target seeded streams — deterministic under
    a fixed injector seed.  Rates are events/second; crashes fire at most
    once per target (a crashed thing stays crashed), degradations recur.
    """

    events: Tuple[Fault, ...] = ()
    node_crash_rate: float = 0.0
    server_crash_rate: float = 0.0
    device_degrade_rate: float = 0.0
    data_corrupt_rate: float = 0.0
    #: Exponential arrival rate of single-server network cuts (each heals
    #: itself after ``partition_duration``).  Arrivals that land while an
    #: overlapping cut is still active are *skipped at runtime* (counter
    #: ``fault-partition-skipped``) rather than rejected up front —
    #: random timelines compose with explicit cuts and with each other.
    partition_rate: float = 0.0
    partition_duration: float = 0.5
    partition_mode: str = "sym"
    degrade_factor: float = 0.25
    degrade_duration: float = 30.0
    corrupt_bytes: float = 64 * 1024.0
    horizon: float = 0.0

    def __post_init__(self):
        for rate in (self.node_crash_rate, self.server_crash_rate,
                     self.device_degrade_rate, self.data_corrupt_rate,
                     self.partition_rate):
            if rate < 0:
                raise ValueError(f"negative fault rate {rate}")
        if self.partition_duration <= 0:
            raise ValueError(f"partition_duration must be positive, "
                             f"got {self.partition_duration}")
        if self.partition_mode not in ("sym", "oneway"):
            raise ValueError(f"unknown partition mode "
                             f"{self.partition_mode!r}; valid: sym, oneway")
        if self.corrupt_bytes <= 0:
            raise ValueError(f"corrupt_bytes must be positive, "
                             f"got {self.corrupt_bytes}")
        if self.horizon < 0:
            raise ValueError(f"negative horizon {self.horizon}")
        has_rates = (self.node_crash_rate or self.server_crash_rate
                     or self.device_degrade_rate or self.data_corrupt_rate
                     or self.partition_rate)
        if has_rates and self.horizon <= 0:
            raise ValueError("probabilistic rates need a positive horizon")
        seen = set()
        for fault in self.events:
            if fault.kind not in ("node-crash", "server-crash"):
                continue
            key = (fault.kind, fault.target)
            if key in seen:
                raise ValueError(
                    f"duplicate {fault.kind} for target {fault.target}: "
                    f"a crashed target stays crashed, so the second event "
                    f"can never fire — remove it from the spec")
            seen.add(key)
        # Partition groups must not overlap while active: a server (or
        # node) may join a second partition only after an intervening
        # heal — an explicit heal@ event or the first partition's
        # duration= auto-heal — releases it.  Two simultaneously active
        # overlapping cuts would make "which side of the partition is
        # this server on?" ambiguous.  (Server-id groups and node-id
        # groups are tracked separately; resolving a node to its server
        # ids needs the machine config, which a spec does not have.)
        active_servers: set = set()
        active_nodes: set = set()
        pending: List[Tuple[float, frozenset, frozenset]] = []
        for fault in sorted((f for f in self.events
                             if f.kind in ("partition", "heal")),
                            key=lambda f: f.at):
            for entry in [p for p in pending if p[0] <= fault.at]:
                active_servers.difference_update(entry[1])
                active_nodes.difference_update(entry[2])
                pending.remove(entry)
            if fault.kind == "heal":
                if fault.servers is None and fault.nodes is None:
                    active_servers.clear()
                    active_nodes.clear()
                    pending.clear()
                else:
                    active_servers.difference_update(fault.servers or ())
                    active_nodes.difference_update(fault.nodes or ())
                continue
            srv = set(fault.servers or ())
            nds = set(fault.nodes or ())
            clash = (srv & active_servers) | (nds & active_nodes)
            if clash:
                raise ValueError(
                    f"overlapping partition groups: {sorted(clash)} already "
                    f"partitioned at t={fault.at:g}; heal first or use "
                    f"disjoint groups")
            active_servers |= srv
            active_nodes |= nds
            if fault.duration is not None:
                pending.append((fault.at + fault.duration,
                                frozenset(srv), frozenset(nds)))
                pending.sort(key=lambda p: p[0])

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI's ``--fault-spec`` mini-language.

        Semicolon-separated events, each ``kind@<time>:key=val,...``::

            node-crash@120:node=0;device-degrade@60:tier=pfs,factor=0.25,duration=300

        A ``random:`` entry sets the probabilistic knobs::

            random:node_crash_rate=0.001,horizon=600
        """
        events: List[Fault] = []
        rates = {}
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.startswith("random:"):
                for kv in chunk[len("random:"):].split(","):
                    key, sep, val = kv.partition("=")
                    key = key.strip()
                    if not sep:
                        raise ValueError(
                            f"malformed random entry {kv!r}: "
                            f"expected knob=value")
                    # Validate eagerly with the full knob list: a typo'd
                    # knob otherwise surfaces as an unhelpful TypeError
                    # from the dataclass constructor.
                    if key not in _RANDOM_KNOBS:
                        raise ValueError(
                            f"unknown random fault knob {key!r}; valid: "
                            f"{sorted(_RANDOM_KNOBS)}")
                    rates[key] = (val.strip() if key in _STRING_KNOBS
                                  else float(val))
                continue
            head, _, tail = chunk.partition(":")
            kind, _, at = head.partition("@")
            kwargs = {"at": float(at), "kind": kind.strip()}
            for kv in filter(None, tail.split(",")):
                key, _, val = kv.partition("=")
                key = key.strip()
                if key in ("node", "server"):
                    kwargs["target"] = int(val)
                elif key == "count":
                    kwargs["count"] = int(val)
                elif key == "tier":
                    kwargs["tier"] = val.strip()
                elif key in ("factor", "duration", "delay", "nbytes"):
                    kwargs[key] = float(val)
                elif key in ("servers", "nodes"):
                    kwargs[key] = tuple(int(x) for x in val.split("+"))
                elif key == "mode":
                    kwargs["mode"] = val.strip()
                else:
                    raise ValueError(f"unknown fault key {key!r}")
            events.append(Fault(**kwargs))
        return cls(events=tuple(events), **rates)


#: Knobs a ``random:`` spec section may set — every FaultSpec field
#: except the explicit event tuple.
_RANDOM_KNOBS = frozenset(f.name for f in fields(FaultSpec)) - {"events"}
#: The knobs parsed as strings rather than floats.
_STRING_KNOBS = frozenset({"partition_mode"})


class FaultInjector:
    """Resolves a :class:`FaultSpec` into a timeline and injects it.

    ``system`` is a :class:`~repro.core.server.UniviStorServers`; faults
    fire as engine timeouts, so the timeline interleaves deterministically
    with the workload.  :attr:`timeline` (resolved before anything runs)
    and :attr:`applied` (what actually fired, with timestamps) make the
    injection inspectable by tests and examples.
    """

    def __init__(self, system, spec: FaultSpec, seed: int = 0):
        self.system = system
        self.machine = system.machine
        self.engine = system.engine
        self.spec = spec
        self.seed = int(seed)
        # Fire-time draws (corruption placement) use their own named
        # streams off the same seed, so adding them never perturbs the
        # timeline-resolution draws below.
        self._fire_rng = StreamRNG(self.seed)
        self.timeline: Tuple[Fault, ...] = self._resolve_timeline()
        self._check_partition_overlap()
        #: (sim time, fault description) for every fault/restore applied.
        self.applied: List[Tuple[float, str]] = []
        self._installed = False

    # -- timeline resolution ------------------------------------------------
    def _resolve_timeline(self) -> Tuple[Fault, ...]:
        rng = StreamRNG(self.seed)
        events: List[Fault] = list(self.spec.events)
        spec = self.spec
        if spec.node_crash_rate > 0:
            for node in self.machine.nodes:
                t = rng.stream(f"fault.node-crash.{node.node_id}").exponential(
                    1.0 / spec.node_crash_rate)
                if t < spec.horizon:
                    events.append(Fault(at=float(t), kind="node-crash",
                                        target=node.node_id))
        if spec.server_crash_rate > 0:
            for server in range(self.system.total_servers):
                t = rng.stream(f"fault.server-crash.{server}").exponential(
                    1.0 / spec.server_crash_rate)
                if t < spec.horizon:
                    events.append(Fault(at=float(t), kind="server-crash",
                                        target=server))
        if spec.device_degrade_rate > 0:
            for tier in _SHARED_TIERS:
                if tier == "shared_bb" and self.machine.burst_buffer is None:
                    continue
                stream = rng.stream(f"fault.device-degrade.{tier}")
                t = 0.0
                while True:
                    t += float(stream.exponential(
                        1.0 / spec.device_degrade_rate))
                    if t >= spec.horizon:
                        break
                    events.append(Fault(at=t, kind="device-degrade",
                                        tier=tier,
                                        factor=spec.degrade_factor,
                                        duration=spec.degrade_duration))
        if spec.partition_rate > 0:
            for server in range(self.system.total_servers):
                stream = rng.stream(f"fault.partition.{server}")
                t = 0.0
                while True:
                    t += float(stream.exponential(1.0 / spec.partition_rate))
                    if t >= spec.horizon:
                        break
                    events.append(Fault(at=t, kind="partition",
                                        servers=(server,),
                                        duration=spec.partition_duration,
                                        mode=spec.partition_mode))
        if spec.data_corrupt_rate > 0:
            targets: List[Tuple[str, Optional[int]]] = [("pfs", None)]
            if self.machine.burst_buffer is not None:
                targets.append(("shared_bb", None))
            for node in self.machine.nodes:
                targets.append(("dram", node.node_id))
            for tier, target in targets:
                stream = rng.stream(
                    f"fault.data-corrupt.{tier}."
                    f"{'-' if target is None else target}")
                t = 0.0
                while True:
                    t += float(stream.exponential(
                        1.0 / spec.data_corrupt_rate))
                    if t >= spec.horizon:
                        break
                    events.append(Fault(at=t, kind="data-corrupt",
                                        tier=tier, target=target,
                                        nbytes=spec.corrupt_bytes))
        events.sort(key=lambda f: (f.at, KINDS.index(f.kind),
                                   -1 if f.target is None else f.target,
                                   f.tier or ""))
        return tuple(events)

    def _check_partition_overlap(self) -> None:
        """Reject overlapping *explicit* cuts the spec could not see.

        :class:`FaultSpec` tracks server-id and node-id groups
        separately (it has no machine config), so a ``nodes=`` cut
        overlapping a ``servers=`` cut parses cleanly.  Here the
        topology is known: expand every group to concrete server ids
        and replay the same active/pending walk, so a mixed overlap
        fails when the campaign is armed rather than double-cutting a
        server at runtime.

        Only the spec's explicit events are checked: cuts drawn from
        ``partition_rate`` may legitimately collide (with each other or
        with explicit cuts), and those collisions are *skipped at
        runtime* instead (see :meth:`_apply`) — rejecting the whole
        campaign for an unlucky draw would make random partition
        timelines unusable.
        """
        explicit = {id(f) for f in self.spec.events}
        active: set = set()
        pending: List[Tuple[float, frozenset]] = []
        for fault in self.timeline:
            if fault.kind not in ("partition", "heal"):
                continue
            if id(fault) not in explicit:
                continue
            for entry in [p for p in pending if p[0] <= fault.at]:
                active.difference_update(entry[1])
                pending.remove(entry)
            group = set(self._partition_group(fault))
            if fault.kind == "heal":
                if fault.servers is None and fault.nodes is None:
                    active.clear()
                    pending.clear()
                else:
                    active.difference_update(group)
                continue
            clash = group & active
            if clash:
                raise ValueError(
                    f"overlapping partition groups: servers "
                    f"{sorted(clash)} already partitioned at t={fault.at} "
                    f"(node groups expand to their hosted servers) — heal "
                    f"the first cut before starting the second")
            active.update(group)
            if fault.duration is not None:
                pending.append((fault.at + fault.duration,
                                frozenset(group)))

    # -- installation -------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Arm every fault as an engine timeout (idempotent)."""
        if self._installed:
            return self
        self._installed = True
        now = self.engine.now
        for index, fault in enumerate(self.timeline):
            delay = max(0.0, fault.at - now)

            def _fire(_ev, fault=fault, index=index):
                self._apply(fault, index)

            self.engine.timeout(delay).callbacks.append(_fire)
        return self

    # -- application --------------------------------------------------------
    def _device_of(self, fault: Fault):
        from repro.core.config import StorageTier
        tier = StorageTier(fault.tier)
        node = None
        if tier.is_node_local:
            if fault.target is None:
                raise ValueError(
                    f"{fault.kind} on node-local tier {fault.tier!r} "
                    f"needs node=<node id>")
            node = self.machine.nodes[fault.target]
        return self.system.tier_device(tier, node)

    def _note(self, desc: str) -> None:
        self.applied.append((self.engine.now, desc))

    def _partition_group(self, fault: Fault) -> List[int]:
        """Resolve a partition/heal group to concrete server ids.

        Node groups expand to every server process the node hosts
        (node ``n`` runs servers ``n*spn .. (n+1)*spn - 1``).
        """
        if fault.servers is not None:
            return list(fault.servers)
        spn = self.system.config.servers_per_node
        group: List[int] = []
        for node_id in fault.nodes or ():
            group.extend(range(node_id * spn, (node_id + 1) * spn))
        return group

    def _schedule_restore(self, duration: float, restore, desc: str) -> None:
        def _fire(_ev):
            restore()
            self._note(desc)
            self.system.telemetry_hook("fault-restore", desc, 0.0)

        self.engine.timeout(duration).callbacks.append(_fire)

    def _apply_corrupt(self, fault: Fault, index: int) -> None:
        """Rot a deterministic slice of one file on the target tier.

        File and offset are drawn at fire time from a per-event named
        stream (keyed by timeline index), so a fixed (spec, seed) run
        corrupts the identical bytes every time — the chaos campaign's
        reproducibility contract.
        """
        from repro.core.config import StorageTier
        system = self.system
        tier = StorageTier(fault.tier)
        node = None
        if tier.is_node_local:
            if fault.target is None:
                raise ValueError(
                    f"data-corrupt on node-local tier {fault.tier!r} "
                    f"needs node=<node id>")
            node = self.machine.nodes[fault.target]
        store = system.tier_store(tier, node)
        paths = sorted(f.path for f in store if f.size > 0)
        if not paths:
            system.telemetry_hook("fault-data-corrupt",
                                  f"{fault.tier}:no-data", 0.0)
            return
        stream = self._fire_rng.stream(f"fault.data-corrupt.fire.{index}")
        sim_file = store.open(paths[int(stream.integers(len(paths)))])
        nbytes = fault.nbytes if fault.nbytes is not None else 64 * 1024.0
        length = int(min(nbytes, sim_file.size))
        offset = int(stream.integers(sim_file.size - length + 1))
        token = int(stream.integers(2 ** 31))
        sim_file.corrupt_at(offset, length, token)
        system.telemetry_hook(
            "fault-data-corrupt",
            f"{sim_file.path}:[{offset},+{length})", float(length))

    def _apply(self, fault: Fault, index: int = 0) -> None:
        system = self.system
        desc = fault.describe()
        if fault.kind == "partition":
            # Runtime overlap skipping: an arriving cut touching a server
            # that is already partitioned (by an explicit event or an
            # earlier random draw) is dropped whole — double-cutting
            # would make "which side is this server on?" ambiguous.
            clash = set(self._partition_group(fault)) \
                & system.partitioned_servers
            if clash:
                self._note(f"skip:{desc}")
                system.count("fault-partition-skipped")
                system.telemetry_hook("fault-partition-skipped", desc, 0.0)
                return
        self._note(desc)
        if fault.kind == "node-crash":
            system.crash_node(fault.target)
            return  # crash_node emits its own telemetry
        if fault.kind == "server-crash":
            system.crash_server(fault.target)
            return
        if fault.kind == "device-degrade":
            device = self._device_of(fault)
            device.degrade(fault.factor)
            system.telemetry_hook("fault-device-degrade",
                                  f"{device.name}:{desc}", 0.0)
            if fault.duration is not None:
                self._schedule_restore(fault.duration, device.restore,
                                       f"restore:{device.name}")
            return
        if fault.kind == "device-fail":
            device = self._device_of(fault)
            device.fail()
            system.telemetry_hook("fault-device-fail",
                                  f"{device.name}:{desc}", 0.0)
            if fault.duration is not None:
                self._schedule_restore(fault.duration, device.restore,
                                       f"restore:{device.name}")
            return
        if fault.kind == "write-errors":
            device = self._device_of(fault)
            device.inject_write_errors(fault.count)
            system.telemetry_hook("fault-write-errors",
                                  f"{device.name}:{desc}", 0.0)
            return
        if fault.kind == "data-corrupt":
            self._apply_corrupt(fault, index)
            return
        if fault.kind == "partition":
            group = self._partition_group(fault)
            system.partition_servers(group, mode=fault.mode or "sym")
            if fault.duration is not None:
                label = "+".join(map(str, group))
                self._schedule_restore(
                    fault.duration,
                    lambda group=list(group): system.heal_partition(group),
                    f"heal:servers:{label}")
            return  # partition_servers/heal_partition emit telemetry
        if fault.kind == "heal":
            explicit = fault.servers is not None or fault.nodes is not None
            system.heal_partition(
                self._partition_group(fault) if explicit else None)
            return
        backbone = self.machine.network.backbone
        if fault.kind == "net-degrade":
            backbone.set_degrade(fault.factor)
            system.telemetry_hook("fault-net-degrade", desc, 0.0)
            if fault.duration is not None:
                self._schedule_restore(
                    fault.duration, lambda: backbone.set_degrade(1.0),
                    "restore:network")
            return
        if fault.kind == "net-delay":
            backbone.latency += fault.delay
            system.telemetry_hook("fault-net-delay", desc, 0.0)
            if fault.duration is not None:
                def _undo(extra=fault.delay):
                    backbone.latency = max(0.0, backbone.latency - extra)

                self._schedule_restore(fault.duration, _undo,
                                       "restore:network-latency")
            return
        raise AssertionError(f"unhandled fault kind {fault.kind!r}")
