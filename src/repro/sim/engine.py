"""Deterministic discrete-event simulation engine.

The engine follows the classic process-interaction style popularised by
SimPy: simulation *processes* are Python generators that ``yield`` event
objects; the engine resumes a process when the event it is waiting for
triggers.  Simulated time only advances between events — the Python code
inside a process runs in zero simulated time.

Determinism guarantees
----------------------
Events scheduled for the same simulated time fire in the order they were
scheduled (FIFO, enforced by a sequence counter used as a total-order
tie-breaker).  Nothing in the kernel consults wall-clock time or global
random state, so a simulation is a pure function of its inputs.

Scheduler architecture (docs/MODEL.md §13)
------------------------------------------
Scheduling is a two-stage pipeline.  Every schedule operation appends to
a creation-ordered *pending* list; events are *flushed* into the sorted
structure (binary heap, or calendar buckets when ``bucket_width > 0``)
only when the dispatch loop actually needs an ordering decision.  The
sequence tie-breaker is assigned at flush time — the pending list is
FIFO, so flush order equals creation order and the dispatch order is
bit-identical to the classic schedule-time assignment, while events
consumed before ever reaching the heap pay no heap cost at all.

Three kernel layouts share that pipeline:

* ``shards=1, bucket_width=0`` (default) — single binary heap plus two
  fast paths: a sole pending event bypasses the heap entirely, and
  :meth:`Process._resume` hands a freshly scheduled sole-runnable event
  straight back to the running process (*direct handoff*), recycling the
  consumed :class:`Timeout` through a free slot when a refcount check
  proves no simulation code retained it.
* ``shards=1, bucket_width=w`` — a calendar queue: events land in flat
  time buckets of width ``w`` (sorted lazily per bucket), with the same
  ``(time, seq)`` order as the heap.
* ``shards=N`` — per-shard event queues with a deterministic cross-shard
  merge: dispatch always picks the globally smallest ``(time, seq)``
  among shard heads, and advances in bounded time *epochs* (an epoch
  barrier every ``epoch_length`` simulated seconds).  Because ``seq`` is
  global, the merged order is bit-identical to the single-queue order
  for any shard count — sharding is a locality lever, never a semantics
  knob.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Engine",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running without events, ...)."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not triggered" from "triggered with value None".
_PENDING = object()
_INF = float("inf")
# _run_until value outside run()/run_process(): direct handoff requires
# _when <= _run_until, so -inf disables it (step() must dispatch exactly
# one event per call).
_NEG_INF = float("-inf")
# Bound as Engine._heap in bucket/sharded modes: truthy, so the
# handoff/sole-pending fast paths (which require an *empty* heap) are
# structurally disabled without an extra mode check on the hot path.
_DISABLED = (None,)


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed (with a value) or
    :meth:`fail`-ed (with an exception) exactly once.  Processes waiting on
    the event are resumed in FIFO order when it triggers.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "name",
                 "_when", "_seq", "_shard")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self.name = name

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Open-coded Engine._schedule: succeed() is the hottest trigger
        # path (every resource grant and transfer completion lands here).
        engine = self.engine
        self._when = engine._now
        self._shard = engine._active_shard
        engine._pending.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in each waiter."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        engine = self.engine
        self._when = engine._now
        self._shard = engine._active_shard
        engine._pending.append(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Open-coded Event.__init__ + Engine._schedule: one Timeout per
        # modelled latency hop makes this the most-allocated event kind.
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = value
        self.name = name
        self.delay = delay
        self._when = engine._now + delay
        self._shard = engine._active_shard
        engine._pending.append(self)


_new_timeout = Timeout.__new__


class Initialize:
    """Internal bootstrap scheduled to make a new process take its first
    step.  Deliberately *not* an :class:`Event`: only the scheduler (pops
    it, runs its callback) and :meth:`Process._resume` (reads ``_ok`` /
    ``_value``) ever see it, so the successful outcome lives on the class
    and starting a process allocates one slot plus one list.
    """

    __slots__ = ("callbacks", "_when", "_seq", "_shard")

    _ok = True
    _value = None

    def __init__(self, engine: "Engine", process: "Process"):
        self.callbacks = [process._resume]
        self._when = engine._now
        self._shard = process._shard
        engine._pending.append(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process object is itself an event that triggers when the generator
    returns (value = the generator's return value) or raises (failure).
    Other processes may therefore ``yield`` a process to join it.

    ``shard`` pins the process (and every event it schedules while
    running) to an engine shard; the default inherits the shard of the
    process that spawned it.  Any integer key is accepted — it is reduced
    modulo the engine's shard count, so callers can pass node ids or file
    ids directly.  On a single-shard engine the key is inert.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, engine: "Engine", generator: Generator,
                 name: str = "", shard: Optional[int] = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        # Bound methods cached once: _resume runs per yield, and the
        # attribute chain through the generator costs there.
        self._send = generator.send
        self._throw = generator.throw
        if shard is None:
            self._shard = engine._active_shard
        else:
            self._shard = shard % engine._nshards
        self._target: Optional[Event] = Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError("cannot interrupt a process being initialised")
        # Detach from whatever the process is waiting on, then resume it
        # with the interrupt on the next event boundary.
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.engine._schedule(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        engine = self.engine
        engine._active_process = self
        send = self._send
        pending = engine._pending
        heap = engine._heap
        until = engine._run_until
        refcount = getrefcount
        timeout_cls = Timeout
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                engine._active_process = None
                self._value = stop.value
                self._when = engine._now
                pending.append(self)
                return
            except BaseException as err:
                self._target = None
                engine._active_process = None
                if engine.strict:
                    # With joiners the failure is delivered to them; with
                    # none it is recorded and re-raised by run() — crashing
                    # a process is a bug in simulation code either way.
                    self._ok = False
                    self._value = err
                    self._when = engine._now
                    pending.append(self)
                    if not self.callbacks:
                        engine._record_crash(self, err)
                    return
                raise

            try:
                cbs = next_event.callbacks
            except AttributeError:
                engine._active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                ) from None
            if cbs is None:
                # Already processed: continue immediately with its outcome.
                event = next_event
                continue
            # Direct handoff: the event just yielded is the sole runnable
            # event in the whole engine (nothing in the heap, pending holds
            # exactly it, no other waiters) and fires within the run bound —
            # dispatch it inline instead of suspending back to the run loop.
            # This is exactly what the run loop would do next; determinism
            # is untouched.  The event consumed on the *previous* lap is
            # recycled through the engine's free slot when the refcount
            # proves nothing outside this frame still references it.
            if (not heap and not cbs and len(pending) == 1
                    and pending[0] is next_event
                    and next_event._when <= until):
                del pending[:]
                engine._now = next_event._when
                next_event.callbacks = None
                if event.__class__ is timeout_cls and refcount(event) == 2:
                    engine._free = event
                    engine._free_cbs = cbs
                event = next_event
                continue
            if next_event.engine is not engine:
                engine._active_process = None
                raise SimulationError("yielded an event from a different engine")
            cbs.append(self._resume)
            self._target = next_event
            engine._active_process = None
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not self.engine:
                raise SimulationError("condition mixes events from different engines")
        if not self.events:
            self._ok = True
            self._value = []
            engine._schedule(self)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._on_event(ev)
            else:
                ev.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* component events have triggered.

    Value is the list of component values in the original order.  Fails as
    soon as any component fails.
    """

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when *any* component event triggers; value = (event, value)."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class _HeapKernel:
    """Per-shard sorted queue: a plain binary heap of (when, seq, event)."""

    __slots__ = ("_heap",)

    def __init__(self):
        self._heap: list = []

    def push(self, when: float, seq: int, event) -> None:
        heappush(self._heap, (when, seq, event))

    def peek_key(self):
        heap = self._heap
        if heap:
            head = heap[0]
            return (head[0], head[1])
        return None

    def pop(self):
        return heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class _BucketKernel:
    """Calendar queue: flat time buckets of ``width`` simulated seconds.

    The dominant event population in this simulator is short-delay
    timeouts clustered near ``now``; bucketing them turns most pushes
    into a dict lookup plus a list append.  Each bucket is kept unsorted
    until the dispatcher reaches it, then sorted *descending* by
    ``(when, seq)`` so the minimum pops from the end in O(1); same-bucket
    arrivals mark it dirty for a (Timsort-cheap) re-sort.  The order
    popped is exactly the heap's ``(when, seq)`` total order, so the
    bucket width is a performance knob with zero semantic footprint.
    """

    __slots__ = ("width", "_buckets", "_idx_heap", "_dirty", "_len")

    def __init__(self, width: float):
        self.width = width
        self._buckets: dict = {}     # bucket index -> [(when, seq, event)]
        self._idx_heap: list = []    # heap of live bucket indices
        self._dirty: set = set()     # buckets appended-to since last sort
        self._len = 0

    def push(self, when: float, seq: int, event) -> None:
        idx = int(when / self.width)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(when, seq, event)]
            heappush(self._idx_heap, idx)
        else:
            bucket.append((when, seq, event))
            self._dirty.add(idx)
        self._len += 1

    def _front(self):
        """The bucket list holding the global minimum (min entry last)."""
        buckets = self._buckets
        idx_heap = self._idx_heap
        while idx_heap:
            idx = idx_heap[0]
            bucket = buckets.get(idx)
            if not bucket:
                heappop(idx_heap)
                buckets.pop(idx, None)
                continue
            if idx in self._dirty:
                bucket.sort(reverse=True)
                self._dirty.discard(idx)
            return bucket
        return None

    def peek_key(self):
        bucket = self._front()
        if bucket is None:
            return None
        head = bucket[-1]
        return (head[0], head[1])

    def pop(self):
        item = self._front().pop()
        self._len -= 1
        return item

    def __len__(self) -> int:
        return self._len


class Engine:
    """The discrete-event scheduler.

    Parameters
    ----------
    strict:
        When True (default), an uncaught exception inside a process fails the
        process event (joiners see it) and is re-raised by :meth:`run` if the
        crash was never observed.  When False the exception propagates
        immediately.
    shards:
        Number of event queues (default 1).  Events are routed to the
        shard of the process that scheduled them (see
        :class:`Process`); dispatch merges shard heads in global
        ``(time, seq)`` order, so any shard count produces bit-identical
        simulations — sharding only changes queue locality.
    bucket_width:
        Calendar-queue bucket width in simulated seconds for each shard
        kernel; ``0`` (default) selects the binary heap.  Purely a
        performance knob: dispatch order is identical for any width.
    epoch_length:
        Sharded mode only: simulated seconds per merge epoch.  The
        dispatch loop re-derives the epoch window (a barrier across all
        shards) every ``epoch_length`` seconds; :attr:`epochs` counts
        completed windows.
    """

    def __init__(self, strict: bool = True, shards: int = 1,
                 bucket_width: float = 0.0, epoch_length: float = 1.0):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if bucket_width < 0:
            raise ValueError(f"negative bucket_width: {bucket_width}")
        if epoch_length <= 0:
            raise ValueError(f"epoch_length must be > 0, got {epoch_length}")
        self._now: float = 0.0
        self._seq: int = 0
        #: Creation-ordered staging list shared by every schedule path;
        #: flushed (seq assignment + kernel insertion) lazily.  The list
        #: object is never rebound — hot paths alias it.
        self._pending: list = []
        self._nshards = int(shards)
        self._bucket_width = float(bucket_width)
        self._epoch_length = float(epoch_length)
        self._epochs = 0
        if self._nshards == 1 and self._bucket_width == 0.0:
            self._heap: Any = []
            self._kernels: Optional[list] = None
        else:
            self._heap = _DISABLED
            if self._bucket_width > 0.0:
                self._kernels = [_BucketKernel(self._bucket_width)
                                 for _ in range(self._nshards)]
            else:
                self._kernels = [_HeapKernel()
                                 for _ in range(self._nshards)]
        # Single-slot Timeout free list fed by the direct-handoff path
        # (see Process._resume); _free_cbs is the matching empty
        # callbacks list so reuse allocates nothing.
        self._free: Optional[Timeout] = None
        self._free_cbs: Optional[list] = None
        self._active_process: Optional[Process] = None
        self._active_shard: int = 0
        self._run_until: float = _NEG_INF
        self.strict = strict
        self._crashes: list = []
        # Monotonic id source usable by layers above (files, segments, ...).
        self._id_counter = 0

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def shards(self) -> int:
        return self._nshards

    @property
    def bucket_width(self) -> float:
        return self._bucket_width

    @property
    def epochs(self) -> int:
        """Completed merge-epoch windows (sharded mode; 0 otherwise)."""
        return self._epochs

    def next_id(self) -> int:
        """Return a fresh engine-unique integer id."""
        self._id_counter += 1
        return self._id_counter

    # -- event construction ------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Reuse the free-slot Timeout when the handoff path proved the
        # previous one dead; otherwise build one without the class-call
        # overhead.  Both paths mirror Timeout.__init__ exactly.
        t = self._free
        if t is not None:
            self._free = None
            t.callbacks = self._free_cbs
            t._value = value
            t.name = name
            t.delay = delay
            t._when = self._now + delay
            t._shard = self._active_shard
            self._pending.append(t)
            return t
        t = _new_timeout(Timeout)
        t.engine = self
        t.callbacks = []
        t._ok = True
        t._value = value
        t.name = name
        t.delay = delay
        t._when = self._now + delay
        t._shard = self._active_shard
        self._pending.append(t)
        return t

    def process(self, generator: Generator, name: str = "",
                shard: Optional[int] = None) -> Process:
        return Process(self, generator, name=name, shard=shard)

    def call_later(self, delay: float, fn) -> Timeout:
        """Run ``fn(event)`` after ``delay`` simulated seconds.

        Sugar over a :class:`Timeout` plus a callback — the idiom the
        fault injector and the health monitor use to arm one-shot actions
        without spinning up a full process.
        """
        ev = Timeout(self, delay)
        ev.callbacks.append(fn)
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        event._when = self._now + delay
        event._shard = self._active_shard
        self._pending.append(event)

    def _flush(self) -> None:
        """Move pending events into the sorted kernel(s), assigning the
        sequence tie-breaker in creation order (the pending list is FIFO,
        so this yields the same total order as schedule-time seqs)."""
        pending = self._pending
        seq = self._seq
        kernels = self._kernels
        if kernels is None:
            heap = self._heap
            for e in pending:
                seq += 1
                e._seq = seq
                heappush(heap, (e._when, seq, e))
        else:
            for e in pending:
                seq += 1
                e._seq = seq
                kernels[e._shard].push(e._when, seq, e)
        self._seq = seq
        del pending[:]

    def _record_crash(self, process: Process, err: BaseException) -> None:
        self._crashes.append((process, err))

    # -- the loop ------------------------------------------------------------
    # ``run``/``run_process`` open-code the pop-and-dispatch of ``step``
    # with the queue bound to a local: the loop body runs once per event
    # and the method-call + attribute overhead dominates kernel cost.
    # Dispatch order is exactly step()'s, so determinism is unaffected.

    def _min_kernel(self):
        """The kernel holding the globally smallest (when, seq), or None."""
        best_key = None
        best_kernel = None
        for kernel in self._kernels:
            key = kernel.peek_key()
            if key is not None and (best_key is None or key < best_key):
                best_key = key
                best_kernel = kernel
        return best_key, best_kernel

    def step(self) -> None:
        """Process the single next event."""
        if self._pending:
            self._flush()
        if self._kernels is None:
            if not self._heap:
                raise SimulationError("no scheduled events")
            when, _seq, event = heappop(self._heap)
        else:
            _key, kernel = self._min_kernel()
            if kernel is None:
                raise SimulationError("no scheduled events")
            when, _seq, event = kernel.pop()
            self._active_shard = event._shard
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            if len(callbacks) == 1:
                # Single waiter is the overwhelmingly common case.
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)

    def peek(self) -> float:
        """Simulated time of the next event, or ``inf`` if none."""
        if self._pending:
            self._flush()
        if self._kernels is None:
            return self._heap[0][0] if self._heap else _INF
        key, _kernel = self._min_kernel()
        return key[0] if key is not None else _INF

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} lies in the past (now={self._now})")
        if self._kernels is not None:
            self._run_merged(until, None)
        else:
            bound = _INF if until is None else until
            pending = self._pending
            heap = self._heap
            pop = heappop
            self._run_until = bound
            try:
                while True:
                    if pending:
                        if len(pending) == 1 and not heap:
                            event = pending[0]
                            if event._when > bound:
                                break
                            del pending[:]
                        else:
                            self._flush()
                            if heap[0][0] > bound:
                                break
                            _w, _s, event = pop(heap)
                    elif heap:
                        if heap[0][0] > bound:
                            break
                        _w, _s, event = pop(heap)
                    else:
                        break
                    self._now = event._when
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
            finally:
                self._run_until = _NEG_INF
        if until is not None:
            self._now = until
        self._raise_unobserved_crash()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return value."""
        proc = self.process(generator, name=name)
        if self._kernels is not None:
            self._run_merged(None, proc)
        else:
            pending = self._pending
            heap = self._heap
            pop = heappop
            self._run_until = _INF
            try:
                while proc._value is _PENDING:
                    if pending:
                        if len(pending) == 1 and not heap:
                            event = pending.pop()
                        else:
                            self._flush()
                            _w, _s, event = pop(heap)
                    elif heap:
                        _w, _s, event = pop(heap)
                    else:
                        raise SimulationError(
                            f"deadlock: process {proc.name!r} is blocked "
                            f"and no events remain")
                    self._now = event._when
                    callbacks = event.callbacks
                    event.callbacks = None  # mark processed
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
            finally:
                self._run_until = _NEG_INF
        self._raise_unobserved_crash()
        if not proc._ok:
            raise proc._value
        return proc._value

    def _run_merged(self, until: Optional[float],
                    proc: Optional[Process]) -> None:
        """Dispatch loop for bucket and sharded kernels.

        Advances in bounded time epochs: each outer lap derives a window
        ``[head, head + epoch_length]`` from the globally smallest shard
        head, then drains every event inside the window in ``(when, seq)``
        merge order before re-deriving (the epoch barrier).  With one
        kernel the merge scan degenerates to a peek; with ``proc`` set the
        loop behaves like :meth:`run_process` (deadlock detection, stop on
        completion); with ``until`` set like :meth:`run` (stop at bound).
        """
        bound = _INF if until is None else until
        pending = self._pending
        while True:
            if proc is not None and proc._value is not _PENDING:
                break
            if pending:
                self._flush()
            key, kernel = self._min_kernel()
            if kernel is None:
                if proc is not None:
                    raise SimulationError(
                        f"deadlock: process {proc.name!r} is blocked "
                        f"and no events remain")
                break
            if key[0] > bound:
                break
            epoch_end = key[0] + self._epoch_length
            if epoch_end > bound:
                epoch_end = bound
            self._epochs += 1
            while True:
                when, _seq, event = kernel.pop()
                self._now = when
                self._active_shard = event._shard
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if proc is not None and proc._value is not _PENDING:
                    break
                if pending:
                    self._flush()
                key, kernel = self._min_kernel()
                if kernel is None or key[0] > epoch_end:
                    break  # epoch barrier
        self._active_shard = 0

    def _raise_unobserved_crash(self) -> None:
        for process, err in self._crashes:
            # A crash observed by a joiner has processed callbacks and a
            # non-ok outcome that someone consumed; we cannot reliably know
            # consumption, so re-raise the first crash always: crashing a
            # process is a bug in simulation code, not a modelling outcome.
            self._crashes = []
            raise err
