"""Deterministic discrete-event simulation engine.

The engine follows the classic process-interaction style popularised by
SimPy: simulation *processes* are Python generators that ``yield`` event
objects; the engine resumes a process when the event it is waiting for
triggers.  Simulated time only advances between events — the Python code
inside a process runs in zero simulated time.

Determinism guarantees
----------------------
Events scheduled for the same simulated time fire in the order they were
scheduled (FIFO, enforced by a sequence counter used as a heap tie-breaker).
Nothing in the kernel consults wall-clock time or global random state, so a
simulation is a pure function of its inputs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Engine",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running without events, ...)."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not triggered" from "triggered with value None".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it may be :meth:`succeed`-ed (with a value) or
    :meth:`fail`-ed (with an exception) exactly once.  Processes waiting on
    the event are resumed in FIFO order when it triggers.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self.name = name

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Open-coded Engine._schedule: succeed() is the hottest trigger
        # path (every resource grant and transfer completion lands here).
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        heappush(engine._queue, (engine._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in each waiter."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        heappush(engine._queue, (engine._now, seq, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None,
                 name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Open-coded Event.__init__ + Engine._schedule: one Timeout per
        # modelled latency hop makes this the most-allocated event kind.
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = value
        self.name = name
        self.delay = delay
        engine._seq = seq = engine._seq + 1
        heappush(engine._queue, (engine._now + delay, seq, self))


class Initialize:
    """Internal bootstrap scheduled to make a new process take its first
    step.  Deliberately *not* an :class:`Event`: only the scheduler (pops
    it, runs its callback) and :meth:`Process._resume` (reads ``_ok`` /
    ``_value``) ever see it, so the successful outcome lives on the class
    and starting a process allocates one slot plus one list.
    """

    __slots__ = ("callbacks",)

    _ok = True
    _value = None

    def __init__(self, engine: "Engine", process: "Process"):
        self.callbacks = [process._resume]
        engine._seq = seq = engine._seq + 1
        heappush(engine._queue, (engine._now, seq, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    The process object is itself an event that triggers when the generator
    returns (value = the generator's return value) or raises (failure).
    Other processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, engine: "Engine", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        # Bound methods cached once: _resume runs per yield, and the
        # attribute chain through the generator costs there.
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError("cannot interrupt a process being initialised")
        # Detach from whatever the process is waiting on, then resume it
        # with the interrupt on the next event boundary.
        event = Event(self.engine)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        if self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.engine._schedule(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        engine = self.engine
        engine._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                engine._active_process = None
                super().succeed(stop.value)
                return
            except BaseException as err:
                self._target = None
                engine._active_process = None
                if engine.strict and self.callbacks:
                    # Someone is joining this process: deliver the failure
                    # to them instead of crashing the whole simulation.
                    super().fail(err)
                    return
                if engine.strict:
                    super().fail(err)
                    engine._record_crash(self, err)
                    return
                raise

            if not isinstance(next_event, Event):
                engine._active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
            if next_event.engine is not engine:
                engine._active_process = None
                raise SimulationError("yielded an event from a different engine")

            if next_event.callbacks is None:
                # Already processed: continue immediately with its outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            engine._active_process = None
            return


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not self.engine:
                raise SimulationError("condition mixes events from different engines")
        if not self.events:
            self._ok = True
            self._value = []
            engine._schedule(self)
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._on_event(ev)
            else:
                ev.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* component events have triggered.

    Value is the list of component values in the original order.  Fails as
    soon as any component fails.
    """

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when *any* component event triggers; value = (event, value)."""

    __slots__ = ()

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class Engine:
    """The discrete-event scheduler.

    Parameters
    ----------
    strict:
        When True (default), an uncaught exception inside a process fails the
        process event (joiners see it) and is re-raised by :meth:`run` if the
        crash was never observed.  When False the exception propagates
        immediately.
    """

    def __init__(self, strict: bool = True):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self._crashes: list = []
        # Monotonic id source usable by layers above (files, segments, ...).
        self._id_counter = 0

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def next_id(self) -> int:
        """Return a fresh engine-unique integer id."""
        self._id_counter += 1
        return self._id_counter

    # -- event construction ------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def call_later(self, delay: float, fn) -> Timeout:
        """Run ``fn(event)`` after ``delay`` simulated seconds.

        Sugar over a :class:`Timeout` plus a callback — the idiom the
        fault injector and the health monitor use to arm one-shot actions
        without spinning up a full process.
        """
        ev = Timeout(self, delay)
        ev.callbacks.append(fn)
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, seq, event))

    def _record_crash(self, process: Process, err: BaseException) -> None:
        self._crashes.append((process, err))

    # -- the loop ------------------------------------------------------------
    # ``run``/``run_process`` open-code the pop-and-dispatch of ``step``
    # with the queue bound to a local: the loop body runs once per event
    # and the method-call + attribute overhead dominates kernel cost.
    # Dispatch order is exactly step()'s, so determinism is unaffected.

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _seq, event = heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            if len(callbacks) == 1:
                # Single waiter is the overwhelmingly common case.
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)

    def peek(self) -> float:
        """Simulated time of the next event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} lies in the past (now={self._now})")
        queue = self._queue
        pop = heappop
        if until is None:
            while queue:
                when, _seq, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
        else:
            while queue:
                if queue[0][0] > until:
                    break
                when, _seq, event = pop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
            self._now = until
        self._raise_unobserved_crash()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn ``generator``, run to completion, return value."""
        proc = self.process(generator, name=name)
        queue = self._queue
        pop = heappop
        while proc._value is _PENDING:
            if not queue:
                raise SimulationError(
                    f"deadlock: process {proc.name!r} is blocked and no events remain"
                )
            when, _seq, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None  # mark processed
            if callbacks:
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
        self._raise_unobserved_crash()
        if not proc._ok:
            raise proc._value
        return proc._value

    def _raise_unobserved_crash(self) -> None:
        for process, err in self._crashes:
            # A crash observed by a joiner has processed callbacks and a
            # non-ok outcome that someone consumed; we cannot reliably know
            # consumption, so re-raise the first crash always: crashing a
            # process is a bug in simulation code, not a modelling outcome.
            self._crashes = []
            raise err
