"""Storage device and file-system models.

* :mod:`repro.storage.datamodel` — file *contents* as extent maps over
  symbolic payloads, so multi-TiB simulated datasets remain byte-verifiable
  without materialising bytes.
* :mod:`repro.storage.device` — a generic device: capacity ledger + a
  fair-shared bandwidth pipe.
* :mod:`repro.storage.lustre` — the parallel file system: OSTs, stripe
  placement, shared-file extent-lock contention, stripe-sync overhead and
  load imbalance (everything §II-D's adaptive striping reacts to).
* :mod:`repro.storage.burstbuffer` — the shared, DataWarp-like burst buffer.
* :mod:`repro.storage.posix` — a path namespace of simulated files.
"""

from repro.storage.datamodel import (
    BytesPayload,
    Extent,
    ExtentMap,
    PatternPayload,
    Payload,
    ZeroPayload,
)
from repro.storage.device import StorageDevice, CapacityError
from repro.storage.burstbuffer import SharedBurstBuffer
from repro.storage.lustre import LustreFS, StripingLayout
from repro.storage.posix import FileStore, SimFile

__all__ = [
    "BytesPayload",
    "CapacityError",
    "Extent",
    "ExtentMap",
    "FileStore",
    "LustreFS",
    "PatternPayload",
    "Payload",
    "SharedBurstBuffer",
    "SimFile",
    "StorageDevice",
    "StripingLayout",
    "ZeroPayload",
]
