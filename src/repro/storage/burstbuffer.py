"""Shared (DataWarp-like) burst buffer model.

The shared burst buffer sits on dedicated appliance nodes reachable by every
compute node over the interconnect (§II-A, Fig. 1).  Two behaviours matter
to the experiments:

* the aggregate pipe is wide (``nodes x per_node_bandwidth``) but a single
  compute node can only inject so fast — callers pass a per-stream cap from
  the network model;
* DataWarp stripes a *shared* file across BB nodes, so N-to-1 writes pay a
  serialisation penalty (`BurstBufferSpec.shared_file_efficiency`) while
  file-per-process I/O — UniviStor's DHP layout — does not.  This is the
  mechanism behind UniviStor/BB beating Data Elevator in Figs. 6–7.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cluster.spec import BurstBufferSpec
from repro.sim.engine import Engine, Event
from repro.storage.device import StorageDevice

__all__ = ["SharedBurstBuffer"]


class SharedBurstBuffer:
    """The shared burst buffer: capacity ledger + aggregate pipe."""

    def __init__(self, engine: Engine, spec: BurstBufferSpec):
        self.engine = engine
        self.spec = spec
        self.device = StorageDevice(
            engine, "shared-bb", capacity=spec.capacity,
            bandwidth=spec.aggregate_bandwidth, latency=spec.latency,
            read_factor=spec.read_factor, duplex=True)

    # -- per-stream ceilings -------------------------------------------------
    def client_write_cap(self, streams_per_node: int) -> float:
        """Per-stream cap for client write streams sharing one node."""
        return self.spec.client_node_write_bandwidth / max(1, streams_per_node)

    def client_read_cap(self, streams_per_node: int) -> float:
        return self.spec.client_node_read_bandwidth / max(1, streams_per_node)

    def flush_cap(self, streams_per_node: int) -> float:
        """Per-stream cap for server flush streams sharing one node."""
        return self.spec.flush_node_bandwidth / max(1, streams_per_node)

    def write(self, nbytes_per_stream: float, streams: int = 1,
              shared_file: bool = False,
              per_stream_cap: float = math.inf,
              efficiency: float = 1.0,
              tag: Optional[str] = None) -> Event:
        """Timed write; ``shared_file`` applies the N-to-1 penalty."""
        eff = efficiency
        if shared_file:
            eff *= self.spec.shared_file_efficiency(streams)
        return self.device.write(nbytes_per_stream, streams=streams,
                                 per_stream_cap=per_stream_cap,
                                 efficiency=max(1e-3, min(1.0, eff)),
                                 tag=tag or "bb-write")

    def read(self, nbytes_per_stream: float, streams: int = 1,
             shared_file: bool = False,
             per_stream_cap: float = math.inf,
             efficiency: float = 1.0,
             tag: Optional[str] = None) -> Event:
        """Timed read; shared-file reads pay a softened (sqrt) penalty —
        read locks are shared, only stripe-server hotspots remain."""
        eff = efficiency
        if shared_file:
            eff *= math.sqrt(self.spec.shared_file_efficiency(streams))
        return self.device.read(nbytes_per_stream, streams=streams,
                                per_stream_cap=per_stream_cap,
                                efficiency=max(1e-3, min(1.0, eff)),
                                tag=tag or "bb-read")
