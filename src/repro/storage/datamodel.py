"""File contents as extent maps over symbolic payloads.

The evaluation writes up to ``8192 procs x 256 MiB x 10 steps`` = 20 TiB of
data; holding real bytes is impossible, but the reproduction must still
*verify* that every read returns exactly what was written (that is the whole
point of UniviStor's addressing machinery).  The trick: data is described by
**payloads** — lazily sliceable content sources:

* :class:`BytesPayload` — literal bytes (for tests and metadata regions),
* :class:`PatternPayload` — a deterministic synthetic stream identified by a
  seed (what the VPIC/BD-CATS workload generators emit),
* :class:`ZeroPayload` — holes.

An :class:`ExtentMap` maps file offsets to payload slices with full
overwrite semantics.  Two maps describe identical bytes iff their
normalised extent lists are equal — and for small sizes the map can be
materialised to actual bytes to cross-check that claim.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "Payload",
    "BytesPayload",
    "CorruptPayload",
    "PatternPayload",
    "ZeroPayload",
    "Extent",
    "ExtentMap",
]


class Payload:
    """Abstract content source addressed by a non-negative byte offset."""

    def materialize(self, start: int, length: int) -> bytes:
        """Return the literal bytes of ``[start, start + length)``."""
        raise NotImplementedError

    def same_source(self, other: "Payload") -> bool:
        """True if ``self`` and ``other`` are the same byte stream."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class BytesPayload(Payload):
    """Literal byte content (small data: metadata regions, test payloads)."""

    data: bytes

    def materialize(self, start: int, length: int) -> bytes:
        if start < 0 or start + length > len(self.data):
            raise IndexError(
                f"slice [{start}, {start + length}) outside payload of "
                f"{len(self.data)} bytes")
        return self.data[start:start + length]

    def same_source(self, other: Payload) -> bool:
        return isinstance(other, BytesPayload) and self.data == other.data

    def describe(self) -> str:
        return f"bytes[{len(self.data)}]"


@dataclass(frozen=True)
class PatternPayload(Payload):
    """A deterministic infinite byte stream identified by ``seed``.

    Byte ``i`` of stream ``s`` is ``sha``-free and vectorised:
    ``(i * 2654435761 + s * 40503 + (i >> 8)) & 0xFF`` — cheap, stable
    across runs, and differing seeds disagree almost everywhere, so payload
    mix-ups are caught by materialised comparisons in tests.
    """

    seed: int

    def materialize(self, start: int, length: int) -> bytes:
        if start < 0:
            raise IndexError(f"negative payload offset {start}")
        idx = np.arange(start, start + length, dtype=np.uint64)
        vals = (idx * np.uint64(2654435761)
                + np.uint64(self.seed * 40503)
                + (idx >> np.uint64(8)))
        return (vals & np.uint64(0xFF)).astype(np.uint8).tobytes()

    def same_source(self, other: Payload) -> bool:
        return isinstance(other, PatternPayload) and self.seed == other.seed

    def describe(self) -> str:
        return f"pattern[{self.seed}]"


@dataclass(frozen=True)
class CorruptPayload(Payload):
    """Bit-rotted content: bytes whose stored checksum no longer matches.

    Injected by the ``data-corrupt`` fault (via :meth:`SimFile.corrupt_at`)
    in place of whatever payload previously covered the range.  The
    simulation models checksum verification as payload provenance: a clean
    copy still carries its original payload, a rotted one carries a
    ``CorruptPayload``, so "verify the checksum" is "is any piece of this
    range corrupt?".  Materialisation is deterministic garbage derived from
    ``token`` (the corruption event id), so even a run that *fails* to
    detect rot stays bit-reproducible.
    """

    token: int

    def materialize(self, start: int, length: int) -> bytes:
        if start < 0:
            raise IndexError(f"negative payload offset {start}")
        idx = np.arange(start, start + length, dtype=np.uint64)
        vals = (idx * np.uint64(2246822519)
                + np.uint64(self.token * 65599) + np.uint64(0xB17F))
        return (vals & np.uint64(0xFF)).astype(np.uint8).tobytes()

    def same_source(self, other: Payload) -> bool:
        return isinstance(other, CorruptPayload) and self.token == other.token

    def describe(self) -> str:
        return f"corrupt[{self.token}]"


class ZeroPayload(Payload):
    """All zeros — unwritten holes read as zeros, like POSIX."""

    _instance: Optional["ZeroPayload"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def materialize(self, start: int, length: int) -> bytes:
        if start < 0:
            raise IndexError(f"negative payload offset {start}")
        return bytes(length)

    def same_source(self, other: Payload) -> bool:
        return isinstance(other, ZeroPayload)

    def describe(self) -> str:
        return "zeros"


@dataclass(frozen=True)
class Extent:
    """``length`` bytes at file ``offset`` drawn from ``payload`` at
    ``payload_offset``."""

    offset: int
    length: int
    payload: Payload
    payload_offset: int = 0

    def __post_init__(self):
        if self.offset < 0:
            raise ValueError(f"negative extent offset {self.offset}")
        if self.length <= 0:
            raise ValueError(f"non-positive extent length {self.length}")
        if self.payload_offset < 0:
            raise ValueError(f"negative payload offset {self.payload_offset}")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def slice(self, start: int, end: int) -> "Extent":
        """Sub-extent covering file range [start, end) ⊆ [offset, end)."""
        if not (self.offset <= start < end <= self.end):
            raise ValueError(
                f"slice [{start}, {end}) outside extent [{self.offset}, {self.end})")
        return Extent(start, end - start, self.payload,
                      self.payload_offset + (start - self.offset))

    def materialize(self) -> bytes:
        return self.payload.materialize(self.payload_offset, self.length)

    def matches(self, other: "Extent") -> bool:
        """Same file range and identical content source/alignment."""
        return (self.offset == other.offset
                and self.length == other.length
                and self.payload_offset == other.payload_offset
                and self.payload.same_source(other.payload))

    def abuts(self, other: "Extent") -> bool:
        """True if ``other`` directly continues ``self`` in file and payload."""
        return (other.offset == self.end
                and other.payload.same_source(self.payload)
                and other.payload_offset == self.payload_offset + self.length)


class ExtentMap:
    """An ordered, non-overlapping set of extents with overwrite semantics.

    The invariant (checked by :meth:`check_invariants` and property tests):
    extents are sorted by offset, never overlap, and adjacent extents from
    the same payload stream are merged.
    """

    def __init__(self):
        self._starts: List[int] = []
        self._extents: List[Extent] = []

    # -- queries ---------------------------------------------------------
    @property
    def extents(self) -> List[Extent]:
        return list(self._extents)

    @property
    def size(self) -> int:
        """One past the last written byte (0 if empty)."""
        return self._extents[-1].end if self._extents else 0

    @property
    def bytes_stored(self) -> int:
        return sum(e.length for e in self._extents)

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    # -- mutation ----------------------------------------------------------
    def write(self, offset: int, length: int, payload: Payload,
              payload_offset: int = 0) -> None:
        """Overwrite file range [offset, offset+length) with payload bytes."""
        if length == 0:
            return
        new = Extent(offset, length, payload, payload_offset)
        lo = bisect.bisect_left(self._starts, new.offset)
        # Step back to an extent that may overlap from the left.
        if lo > 0 and self._extents[lo - 1].end > new.offset:
            lo -= 1
        hi = lo
        keep_left: Optional[Extent] = None
        keep_right: Optional[Extent] = None
        while hi < len(self._extents) and self._extents[hi].offset < new.end:
            ext = self._extents[hi]
            if ext.offset < new.offset:
                keep_left = ext.slice(ext.offset, new.offset)
            if ext.end > new.end:
                keep_right = ext.slice(new.end, ext.end)
            hi += 1
        replacement = []
        if keep_left is not None:
            replacement.append(keep_left)
        replacement.append(new)
        if keep_right is not None:
            replacement.append(keep_right)
        self._extents[lo:hi] = replacement
        self._starts[lo:hi] = [e.offset for e in replacement]
        self._merge_around(lo, lo + len(replacement))

    def _merge_around(self, lo: int, hi: int) -> None:
        """Coalesce continuation extents in the window [lo-1, hi+1)."""
        i = max(0, lo - 1)
        while i + 1 < len(self._extents) and i < hi + 1:
            a, b = self._extents[i], self._extents[i + 1]
            if a.abuts(b):
                merged = Extent(a.offset, a.length + b.length, a.payload,
                                a.payload_offset)
                self._extents[i:i + 2] = [merged]
                self._starts[i:i + 2] = [merged.offset]
                hi -= 1
            else:
                i += 1

    # -- reading ---------------------------------------------------------
    def read(self, offset: int, length: int) -> List[Extent]:
        """Extents covering [offset, offset+length); holes become zeros."""
        if offset < 0:
            raise ValueError(f"negative read offset {offset}")
        if length == 0:
            return []
        end = offset + length
        out: List[Extent] = []
        cursor = offset
        starts = self._starts
        extents = self._extents
        lo = bisect.bisect_left(starts, offset)
        if lo > 0 and extents[lo - 1].end > offset:
            lo -= 1
        # Upper bound by bisect: iterating a tail *slice* copied the
        # whole remainder of the extent list on every read.
        hi = bisect.bisect_left(starts, end, lo)
        for i in range(lo, hi):
            ext = extents[i]
            ext_end = ext.offset + ext.length
            if ext_end <= cursor:
                continue
            if ext.offset > cursor:
                out.append(Extent(cursor, ext.offset - cursor, ZeroPayload()))
                cursor = ext.offset
            if cursor <= ext.offset and ext_end <= end:
                # Fully-covered extent: share the frozen object instead
                # of allocating an identical copy.
                piece = ext
            else:
                piece = ext.slice(max(ext.offset, cursor), min(ext_end, end))
            out.append(piece)
            cursor = piece.offset + piece.length
        if cursor < end:
            out.append(Extent(cursor, end - cursor, ZeroPayload()))
        # Coalesce continuation pieces so reads are provenance-normalised
        # (two zero holes, or two chunks of one payload stream, compare
        # equal regardless of how the writes were fragmented).
        merged: List[Extent] = []
        for piece in out:
            if merged and (merged[-1].abuts(piece)
                           or (isinstance(piece.payload, ZeroPayload)
                               and isinstance(merged[-1].payload, ZeroPayload)
                               and merged[-1].end == piece.offset)):
                prev = merged.pop()
                merged.append(Extent(prev.offset, prev.length + piece.length,
                                     prev.payload, prev.payload_offset))
            else:
                merged.append(piece)
        return merged

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Materialise a read (test-sized data only)."""
        return b"".join(e.materialize() for e in self.read(offset, length))

    # -- verification ------------------------------------------------------
    def same_content(self, other: "ExtentMap", offset: int, length: int) -> bool:
        """True if both maps describe identical bytes over the range."""
        mine = _normalise(self.read(offset, length))
        theirs = _normalise(other.read(offset, length))
        return mine == theirs

    def check_invariants(self) -> None:
        """Raise AssertionError if internal invariants are violated."""
        assert self._starts == [e.offset for e in self._extents], \
            "starts index out of sync"
        for a, b in zip(self._extents, self._extents[1:]):
            assert a.end <= b.offset, f"overlap: {a} / {b}"
            assert not a.abuts(b), f"unmerged continuation: {a} / {b}"

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return ", ".join(
            f"[{e.offset}+{e.length})<-{e.payload.describe()}@{e.payload_offset}"
            for e in self._extents) or "<empty>"


def _key(ext: Extent) -> Tuple[int, int, str, int]:
    return (ext.offset, ext.length, ext.payload.describe(), ext.payload_offset)


def _normalise(extents: List[Extent]) -> List[Tuple[int, int, str, int]]:
    return [_key(e) for e in extents]
