"""Lustre parallel-file-system model.

The model captures exactly the behaviours §II-D's adaptive striping reacts
to — nothing more, nothing less:

* **finite per-OST bandwidth** — the aggregate pipe is ``osts x ost_bw``
  and one writer touching ``k`` OSTs can move at most ``k x ost_bw``;
* **shared-file extent-lock contention** — N-to-1 writes degrade with the
  writer count (`LustreSpec.shared_file_efficiency`), the reason DHP's
  file-per-process transformation wins (§II-B1);
* **stripe-synchronisation overhead** — a writer spread over many OSTs pays
  per-OST coordination (`LustreSpec.stripe_sync_efficiency`), the reason
  Eq. 2 caps the per-server stripe count at alpha;
* **load imbalance** — when concurrent writers map unevenly onto OSTs the
  most-loaded OST is the straggler; :meth:`StripingLayout.imbalance`
  computes `max_load / mean_load` for a layout, the quantity Eq. 6 drives
  to 1.

A :class:`StripingLayout` is the explicit writer→OST assignment; UniviStor's
adaptive policy (in :mod:`repro.core.striping`) and the default policies
both *produce* layouts, so experiments compare them on the same substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.spec import LustreSpec
from repro.sim.engine import Engine, Event
from repro.storage.device import StorageDevice

__all__ = ["StripingLayout", "LustreFS"]


@dataclass(frozen=True)
class StripingLayout:
    """Which OSTs each of ``writers`` concurrent writers touches.

    ``ost_sets[w]`` is the tuple of OST indices writer ``w`` stripes its
    range across; optional ``weights[w]`` gives the byte fraction of the
    writer's range landing on each of those OSTs (defaults to an even
    split).  The layout is purely descriptive; the policies that build
    layouts live with their owners (ADPT in ``repro.core.striping``,
    defaults here).
    """

    osts: int
    ost_sets: tuple  # tuple[tuple[int, ...], ...]
    weights: Optional[tuple] = None  # tuple[tuple[float, ...], ...] | None

    def __post_init__(self):
        for w, s in enumerate(self.ost_sets):
            if not s:
                raise ValueError(f"writer {w} touches no OSTs")
            for o in s:
                if not 0 <= o < self.osts:
                    raise ValueError(f"writer {w} references OST {o} "
                                     f"outside [0, {self.osts})")
        if self.weights is not None:
            if len(self.weights) != len(self.ost_sets):
                raise ValueError("weights must align with ost_sets")
            for w, (s, ws) in enumerate(zip(self.ost_sets, self.weights)):
                if len(ws) != len(s):
                    raise ValueError(f"writer {w}: weight/OST mismatch")
                if abs(sum(ws) - 1.0) > 1e-6:
                    raise ValueError(f"writer {w}: weights sum to "
                                     f"{sum(ws)}, expected 1")

    @property
    def writers(self) -> int:
        return len(self.ost_sets)

    @property
    def stripe_count_per_writer(self) -> float:
        """Mean number of OSTs a writer touches."""
        return float(np.mean([len(s) for s in self.ost_sets]))

    def ost_loads(self) -> np.ndarray:
        """Byte-weighted writer load per OST (even split by default)."""
        loads = np.zeros(self.osts)
        for w, s in enumerate(self.ost_sets):
            if self.weights is not None:
                for o, share in zip(s, self.weights[w]):
                    loads[o] += share
            else:
                share = 1.0 / len(s)
                for o in s:
                    loads[o] += share
        return loads

    def engaged_osts(self) -> int:
        return int(np.count_nonzero(self.ost_loads()))

    def imbalance(self) -> float:
        """max OST load / mean *engaged* OST load (>= 1; 1 = balanced)."""
        loads = self.ost_loads()
        engaged = loads[loads > 0]
        if engaged.size == 0:
            return 1.0
        return float(engaged.max() / engaged.mean())

    # -- canned layouts -----------------------------------------------------
    @staticmethod
    def round_robin(writers: int, osts: int,
                    per_writer: int = 1) -> "StripingLayout":
        """Writer w takes OSTs ``w*per_writer .. +per_writer`` modulo osts."""
        sets = []
        for w in range(writers):
            start = (w * per_writer) % osts
            sets.append(tuple((start + i) % osts for i in range(per_writer)))
        return StripingLayout(osts, tuple(sets))

    @staticmethod
    def all_osts(writers: int, osts: int) -> "StripingLayout":
        """Every writer stripes across every OST (naive wide striping)."""
        full = tuple(range(osts))
        return StripingLayout(osts, tuple(full for _ in range(writers)))

    @staticmethod
    def random(writers: int, osts: int, per_writer: int,
               rng: np.random.Generator) -> "StripingLayout":
        """Each writer lands on ``per_writer`` random OSTs (the paper's
        "write requests are randomly directed to storage units")."""
        sets = []
        for _ in range(writers):
            sets.append(tuple(int(x) for x in
                              rng.choice(osts, size=min(per_writer, osts),
                                         replace=False)))
        return StripingLayout(osts, tuple(sets))


class LustreFS:
    """The PFS: one aggregate pipe plus the contention/striping maths."""

    def __init__(self, engine: Engine, spec: LustreSpec):
        self.engine = engine
        self.spec = spec

        def mixed_workload(resource, flows):
            """Seek-thrash: reads and writes in flight together slow
            every flow to ``mixed_workload_factor`` (disks, not SSDs)."""
            ops = {f.meta.get("op") for f in flows}
            if "read" in ops and "write" in ops:
                return {f: spec.mixed_workload_factor for f in flows}
            return {}

        self.device = StorageDevice(
            engine, "lustre", capacity=spec.capacity,
            bandwidth=spec.aggregate_bandwidth, latency=spec.latency,
            contention_model=mixed_workload)

    # -- derived quantities -------------------------------------------------
    def layout_efficiency(self, layout: StripingLayout) -> float:
        """Per-writer goodput factor implied by a striping layout."""
        sync = self.spec.stripe_sync_efficiency(
            int(round(layout.stripe_count_per_writer)))
        return sync / layout.imbalance()

    def layout_cap(self, layout: StripingLayout) -> float:
        """Per-writer bandwidth ceiling: the OSTs it touches."""
        per_writer = layout.stripe_count_per_writer
        return per_writer * self.spec.ost_bandwidth

    def aggregate_cap(self, layout: StripingLayout) -> float:
        """Ceiling from the engaged-OST subset."""
        return layout.engaged_osts() * self.spec.ost_bandwidth

    # -- timed I/O ------------------------------------------------------------
    def write_shared_file(self, nbytes_per_writer: float, writers: int,
                          stripe_count: Optional[int] = None,
                          per_stream_cap: float = math.inf,
                          efficiency: float = 1.0,
                          tag: str = "lustre-shared-write") -> Event:
        """N writers into one shared file (the Lustre baseline pattern).

        Interleaved N-to-1 writes bounce extent locks between clients; the
        observed aggregate plateaus at ``~plateau_base * sqrt(N)`` however
        many OSTs the file is striped over.
        """
        stripes = stripe_count or self.spec.default_stripe_count
        stripes = min(stripes, self.spec.osts)
        group_cap = min(stripes * self.spec.ost_bandwidth,
                        self.spec.shared_file_plateau(writers))
        cap = min(per_stream_cap, group_cap / writers)
        return self.device.write(nbytes_per_writer, streams=writers,
                                 per_stream_cap=cap,
                                 efficiency=max(1e-3, min(1.0, efficiency)),
                                 tag=tag)

    def write_with_layout(self, nbytes_per_writer: float,
                          layout: StripingLayout,
                          per_stream_cap: float = math.inf,
                          efficiency: float = 1.0,
                          shared_file_writers: int = 0,
                          tag: str = "lustre-write") -> Event:
        """Writers with an explicit writer→OST layout (flush paths).

        ``shared_file_writers`` > 0 additionally applies the (mild)
        contiguous-range shared-file contention — flushes that preserve a
        shared-file on-disk layout conflict at range boundaries.  Data
        Elevator's flush passes its server count; UniviStor's ADPT ranges
        are lock-aligned and pass 0.
        """
        eff = self.layout_efficiency(layout) * efficiency
        if shared_file_writers > 1:
            eff *= self.spec.range_write_efficiency(shared_file_writers)
        writer_cap = min(per_stream_cap, self.layout_cap(layout))
        group_cap = self.aggregate_cap(layout)
        cap = min(writer_cap, group_cap / layout.writers)
        return self.device.write(nbytes_per_writer, streams=layout.writers,
                                 per_stream_cap=cap,
                                 efficiency=max(1e-3, min(1.0, eff)), tag=tag)

    def read_shared_file(self, nbytes_per_reader: float, readers: int,
                         stripe_count: Optional[int] = None,
                         per_stream_cap: float = math.inf,
                         efficiency: float = 1.0,
                         tag: str = "lustre-shared-read") -> Event:
        """N readers from one shared file; read locks are shared, so the
        plateau sits higher than the write plateau."""
        stripes = min(stripe_count or self.spec.default_stripe_count,
                      self.spec.osts)
        eff = efficiency
        group_cap = min(stripes * self.spec.ost_bandwidth,
                        self.spec.shared_file_plateau(readers, read=True))
        cap = min(per_stream_cap, group_cap / readers)
        return self.device.read(nbytes_per_reader, streams=readers,
                                per_stream_cap=cap,
                                efficiency=max(1e-3, min(1.0, eff)), tag=tag)
