"""Generic storage device: capacity ledger + fair-shared bandwidth pipe."""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Engine, Event
from repro.sim.resources import BandwidthResource, ContentionModel

__all__ = ["CapacityError", "StorageDevice"]


class CapacityError(RuntimeError):
    """Raised when an allocation exceeds the device's remaining capacity."""


class StorageDevice:
    """A device with finite capacity and a shared read/write pipe.

    Reads and writes share one :class:`BandwidthResource` (as they do on
    real devices); asymmetric read/write speed is expressed with the
    ``read_factor`` multiplier on per-stream caps.
    """

    def __init__(self, engine: Engine, name: str, capacity: float,
                 bandwidth: float, latency: float = 0.0,
                 read_factor: float = 1.0, duplex: bool = False,
                 contention_model: Optional[ContentionModel] = None):
        """``duplex=True`` gives reads their own pipe (of ``bandwidth *
        read_factor``): SSD appliances and DRAM serve concurrent reads
        and writes largely independently, which is what lets a consumer
        application overlap a producer without halving it (§III-D).
        Disk-based stores stay half-duplex (seek-bound)."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = float(capacity)
        self.read_factor = float(read_factor)
        self.pipe = BandwidthResource(engine, bandwidth, latency=latency,
                                      contention_model=contention_model,
                                      name=name)
        if duplex:
            self.read_pipe = BandwidthResource(
                engine, bandwidth * read_factor, latency=latency,
                name=f"{name}.read")
        else:
            self.read_pipe = self.pipe
        self._used = 0.0

    # -- capacity ledger ---------------------------------------------------
    @property
    def used(self) -> float:
        return self._used

    @property
    def available(self) -> float:
        return self.capacity - self._used

    def allocate(self, nbytes: float) -> None:
        """Reserve ``nbytes``; raises :class:`CapacityError` if impossible."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._used + nbytes > self.capacity * (1 + 1e-9):
            raise CapacityError(
                f"{self.name}: allocating {nbytes:.0f} B exceeds capacity "
                f"({self.available:.0f} B available)")
        self._used += nbytes

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._used * (1 + 1e-9):
            raise ValueError(
                f"{self.name}: freeing {nbytes:.0f} B but only "
                f"{self._used:.0f} B allocated")
        self._used = max(0.0, self._used - nbytes)

    # -- timed I/O -----------------------------------------------------------
    def write(self, nbytes: float, streams: int = 1,
              per_stream_cap: float = math.inf, efficiency: float = 1.0,
              tag: Optional[str] = None, weight: float = 1.0) -> Event:
        """Timed write of ``nbytes`` per stream; returns completion event."""
        return self.pipe.transfer(nbytes, streams=streams,
                                  per_stream_cap=per_stream_cap,
                                  efficiency=efficiency, tag=tag or "write",
                                  weight=weight, meta={"op": "write"})

    def read(self, nbytes: float, streams: int = 1,
             per_stream_cap: float = math.inf, efficiency: float = 1.0,
             tag: Optional[str] = None, weight: float = 1.0) -> Event:
        """Timed read of ``nbytes`` per stream; returns completion event."""
        cap = per_stream_cap * self.read_factor if math.isfinite(
            per_stream_cap) else per_stream_cap
        return self.read_pipe.transfer(nbytes, streams=streams,
                                       per_stream_cap=cap,
                                       efficiency=efficiency,
                                       tag=tag or "read",
                                       weight=weight, meta={"op": "read"})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StorageDevice {self.name!r} used={self._used:.3g}/"
                f"{self.capacity:.3g} B>")
