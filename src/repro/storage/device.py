"""Generic storage device: capacity ledger + fair-shared bandwidth pipe."""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.engine import Engine, Event
from repro.sim.resources import BandwidthResource, ContentionModel

__all__ = ["CapacityError", "DeviceUnavailableError", "StorageDevice",
           "TransientIOError"]


class CapacityError(RuntimeError):
    """Raised when an allocation exceeds the device's remaining capacity."""


class TransientIOError(RuntimeError):
    """A recoverable I/O failure (injected write error, brownout).

    Retry with backoff may succeed — the fault-tolerant paths catch this
    and re-attempt up to ``UniviStorConfig.io_retry_limit`` times.
    """


class DeviceUnavailableError(TransientIOError):
    """The device is down.  Subclasses :class:`TransientIOError` because
    an outage may be a brownout: retries bridge a short one, and a
    permanent failure simply exhausts the retry budget and surfaces."""


class StorageDevice:
    """A device with finite capacity and a shared read/write pipe.

    Reads and writes share one :class:`BandwidthResource` (as they do on
    real devices); asymmetric read/write speed is expressed with the
    ``read_factor`` multiplier on per-stream caps.
    """

    def __init__(self, engine: Engine, name: str, capacity: float,
                 bandwidth: float, latency: float = 0.0,
                 read_factor: float = 1.0, duplex: bool = False,
                 contention_model: Optional[ContentionModel] = None):
        """``duplex=True`` gives reads their own pipe (of ``bandwidth *
        read_factor``): SSD appliances and DRAM serve concurrent reads
        and writes largely independently, which is what lets a consumer
        application overlap a producer without halving it (§III-D).
        Disk-based stores stay half-duplex (seek-bound)."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = float(capacity)
        self.read_factor = float(read_factor)
        self.pipe = BandwidthResource(engine, bandwidth, latency=latency,
                                      contention_model=contention_model,
                                      name=name)
        if duplex:
            self.read_pipe = BandwidthResource(
                engine, bandwidth * read_factor, latency=latency,
                name=f"{name}.read")
        else:
            self.read_pipe = self.pipe
        self._used = 0.0
        self._failed = False
        self._degrade_factor = 1.0
        self._pending_write_errors = 0

    # -- health (fault injection) ------------------------------------------
    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def degraded(self) -> bool:
        return self._degrade_factor < 1.0

    @property
    def health(self) -> str:
        if self._failed:
            return "failed"
        return "degraded" if self.degraded else "healthy"

    @property
    def accepts_placement(self) -> bool:
        """Whether DHP should place *new* data here (§II-B1 spill skips
        failed and degraded tiers; existing data stays readable)."""
        return not self._failed and not self.degraded

    def degrade(self, factor: float) -> None:
        """Throttle the device to ``factor`` of its bandwidth (straggler)."""
        self._degrade_factor = float(factor)
        self.pipe.set_degrade(factor)
        if self.read_pipe is not self.pipe:
            self.read_pipe.set_degrade(factor)

    def fail(self) -> None:
        """Take the device down: I/O raises until :meth:`restore`."""
        self._failed = True

    def restore(self) -> None:
        """Clear failure and degradation."""
        self._failed = False
        if self.degraded:
            self.degrade(1.0)

    def inject_write_errors(self, count: int) -> None:
        """Make the next ``count`` writes raise :class:`TransientIOError`."""
        if count < 0:
            raise ValueError(f"negative error count: {count}")
        self._pending_write_errors += count

    def _check_up(self, op: str) -> None:
        if self._failed:
            raise DeviceUnavailableError(f"{self.name}: device is down "
                                         f"({op} refused)")

    # -- capacity ledger ---------------------------------------------------
    @property
    def used(self) -> float:
        return self._used

    @property
    def available(self) -> float:
        return self.capacity - self._used

    def allocate(self, nbytes: float) -> None:
        """Reserve ``nbytes``; raises :class:`CapacityError` if impossible."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._used + nbytes > self.capacity * (1 + 1e-9):
            raise CapacityError(
                f"{self.name}: allocating {nbytes:.0f} B exceeds capacity "
                f"({self.available:.0f} B available)")
        self._used += nbytes

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._used * (1 + 1e-9):
            raise ValueError(
                f"{self.name}: freeing {nbytes:.0f} B but only "
                f"{self._used:.0f} B allocated")
        self._used = max(0.0, self._used - nbytes)

    # -- timed I/O -----------------------------------------------------------
    def write(self, nbytes: float, streams: int = 1,
              per_stream_cap: float = math.inf, efficiency: float = 1.0,
              tag: Optional[str] = None, weight: float = 1.0) -> Event:
        """Timed write of ``nbytes`` per stream; returns completion event."""
        self._check_up("write")
        if self._pending_write_errors > 0:
            self._pending_write_errors -= 1
            raise TransientIOError(f"{self.name}: injected write error "
                                   f"({self._pending_write_errors} left)")
        return self.pipe.transfer(nbytes, streams=streams,
                                  per_stream_cap=per_stream_cap,
                                  efficiency=efficiency, tag=tag or "write",
                                  weight=weight, meta={"op": "write"})

    def read(self, nbytes: float, streams: int = 1,
             per_stream_cap: float = math.inf, efficiency: float = 1.0,
             tag: Optional[str] = None, weight: float = 1.0) -> Event:
        """Timed read of ``nbytes`` per stream; returns completion event."""
        self._check_up("read")
        cap = per_stream_cap * self.read_factor if math.isfinite(
            per_stream_cap) else per_stream_cap
        return self.read_pipe.transfer(nbytes, streams=streams,
                                       per_stream_cap=cap,
                                       efficiency=efficiency,
                                       tag=tag or "read",
                                       weight=weight, meta={"op": "read"})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StorageDevice {self.name!r} used={self._used:.3g}/"
                f"{self.capacity:.3g} B>")
