"""A path namespace of simulated files.

:class:`FileStore` is the *functional* half of a file system: a mapping
from paths to :class:`SimFile` objects whose contents are
:class:`~repro.storage.datamodel.ExtentMap` instances.  It carries no
timing — the timed half is the device models; UniviStor, Data Elevator and
the Lustre baseline each pair a ``FileStore`` with the appropriate device.
"""

from __future__ import annotations

import posixpath
from typing import Dict, Iterator, List, Tuple

from repro.storage.datamodel import CorruptPayload, ExtentMap, Payload

__all__ = ["SimFile", "FileStore"]


class SimFile:
    """One simulated file: an extent map plus minimal metadata."""

    def __init__(self, path: str, store: "FileStore"):
        self.path = path
        self.store = store
        self.data = ExtentMap()
        self.created_at = 0.0
        self.attrs: Dict[str, object] = {}

    @property
    def size(self) -> int:
        return self.data.size

    def write_at(self, offset: int, length: int, payload: Payload,
                 payload_offset: int = 0) -> None:
        self.data.write(offset, length, payload, payload_offset)

    def read_at(self, offset: int, length: int):
        return self.data.read(offset, length)

    def read_bytes(self, offset: int, length: int) -> bytes:
        return self.data.read_bytes(offset, length)

    # -- integrity (fault injection + scrubbing) -------------------------
    def corrupt_at(self, offset: int, length: int, token: int) -> None:
        """Rot ``[offset, offset+length)``: the stored bytes change but the
        recorded checksums do not (that mismatch *is* the corruption).
        Clipped to the written size — rot cannot extend a file."""
        end = min(offset + length, self.size)
        if end <= offset:
            return
        self.data.write(offset, end - offset, CorruptPayload(token))

    def corrupt_ranges(self, offset: int, length: int
                       ) -> List[Tuple[int, int]]:
        """Checksum-verify a range: ``(offset, length)`` of every piece
        whose content no longer matches its recorded checksum."""
        return [(e.offset, e.length) for e in self.data.read(offset, length)
                if isinstance(e.payload, CorruptPayload)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimFile {self.path!r} size={self.size}>"


class FileStore:
    """A flat namespace of :class:`SimFile` objects with POSIX-ish paths."""

    def __init__(self, name: str = ""):
        self.name = name
        self._files: Dict[str, SimFile] = {}

    @staticmethod
    def _norm(path: str) -> str:
        if not path or not path.startswith("/"):
            raise ValueError(f"path must be absolute, got {path!r}")
        return posixpath.normpath(path)

    def create(self, path: str, exist_ok: bool = True) -> SimFile:
        path = self._norm(path)
        existing = self._files.get(path)
        if existing is not None:
            if not exist_ok:
                raise FileExistsError(path)
            return existing
        f = SimFile(path, self)
        self._files[path] = f
        return f

    def open(self, path: str) -> SimFile:
        path = self._norm(path)
        f = self._files.get(path)
        if f is None:
            raise FileNotFoundError(path)
        return f

    def exists(self, path: str) -> bool:
        return self._norm(path) in self._files

    def unlink(self, path: str) -> None:
        path = self._norm(path)
        if path not in self._files:
            raise FileNotFoundError(path)
        del self._files[path]

    def listdir(self, prefix: str = "/") -> List[str]:
        prefix = self._norm(prefix)
        if not prefix.endswith("/"):
            prefix += "/"
        if prefix == "//":
            prefix = "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def __iter__(self) -> Iterator[SimFile]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    def total_bytes(self) -> int:
        return sum(f.data.bytes_stored for f in self._files.values())
