"""Chaos-campaign harness: seeded randomized fault schedules.

Each run drives a small UniviStor deployment through a write -> fault
storm -> recovery window -> read cycle and asserts the **durability
invariant**: every read either returns the correct bytes or raises a
structured :class:`~repro.core.errors.DataLossError` — never silent wrong
data, never an unhandled exception.

The fault schedule for a seed is drawn from named
:class:`~repro.sim.rng.StreamRNG` streams, so a fixed ``(seed, config)``
pair replays byte-for-byte: the same faults hit the same files at the same
times and every read resolves identically (:attr:`ChaosRunResult.digest`
pins this down).  Schedules mix node crashes, metadata-server crashes,
bounded shared-device outages/brownouts, and silent data corruption on
every tier holding data.

Two configurations matter:

* ``hardened`` — :meth:`UniviStorConfig.hardened`: failure detection,
  metadata range takeover, integrity scrubbing, replication, retries.
* ``baseline`` — the same minus detection/takeover/scrubbing (the PR 1
  story: replication and client-side failover only).

The campaign's acceptance bar: zero invariant violations in either mode,
and the hardened mode turns nearly all of the baseline's lost reads into
successes (the ``repro chaos`` CLI and ``tests/chaos/`` assert >= 99%
success for hardened).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.spec import MachineSpec
from repro.core.config import UniviStorConfig
from repro.core.errors import DataLossError
from repro.sim.faults import Fault, FaultSpec
from repro.sim.rng import StreamRNG
from repro.simmpi.mpiio import IORequest
from repro.simulation import Simulation
from repro.storage.datamodel import PatternPayload
from repro.units import KiB

__all__ = ["ChaosRunResult", "CampaignResult", "run_one", "run_campaign"]

#: Per-rank block written/read by the chaos workload.
BLOCK = int(64 * KiB)
#: Nodes in the chaos deployment (2 servers each -> 6 metadata servers).
NODES = 3
PROCS_PER_NODE = 2
#: Fault times are drawn inside this window after the write settles.
_STORM_WINDOW = 0.3
#: Extra settle after the storm: must exceed the detector's dead delay
#: (heartbeat_interval * dead_heartbeats = 0.2s) plus restore tails.
_SETTLE = 0.6
#: Chaos mixes: ``storm`` is the crash/outage/corruption schedule;
#: ``partition`` swaps in network cuts with a mid-partition overwrite
#: phase that probes quorum admission and stale-read fencing;
#: ``hotspot`` hammers one metadata range with skewed overwrite waves
#: while cuts and crashes land mid-split/mid-migration, probing the
#: adaptive mitigation layer (docs/MODEL.md §11); ``storm2`` is the
#: data-plane quorum gate (docs/MODEL.md §12): overwrites on an open
#: file followed by a double node crash whose gap is *shorter than the
#: detection delay*, so async re-replication can never win the race —
#: only the write-time synchronous copy (``data_quorum=2``) survives.
#: ``storm_legacy`` replays the storm schedule on the pre-quorum
#: deployment (``data_quorum=1``) — the canonical ``storm`` now runs at
#: ``data_quorum=2`` (storm2 proved 100 % read success under exactly the
#: storm's crash windows), and the legacy alias keeps the old golden
#: trajectory reproducible.
#: The registry maps each mix name to its schedule generator; the CLI
#: and :func:`run_one` validate against it.
MIXES = ("storm", "storm_legacy", "partition", "hotspot", "storm2")
#: Hotspot-mix skew: every rank overwrites a small slot inside ONE
#: 64 KiB metadata range (the range right after the cold blocks), slots
#: strided across the range so splitting actually spreads the load.
HOT_SLOT = int(4 * KiB)
_HOT_PROCS = NODES * PROCS_PER_NODE
HOT_BASE = _HOT_PROCS * BLOCK
_HOT_STRIDE = BLOCK // _HOT_PROCS
#: Overwrite waves after the seeding write, and the gap between them
#: (the gap exceeds ``hotspot_interval`` so the manager ticks between
#: waves and splits land *inside* the storm).
_HOT_WAVES = 5
_HOT_WAVE_GAP = 0.06


@dataclass
class ChaosRunResult:
    """Outcome of one seeded chaos run."""

    seed: int
    hardened: bool
    mix: str = "storm"
    reads_ok: int = 0
    reads_lost: int = 0
    #: Diagnosable per-seed failure causes (NOT part of the digest):
    #: one entry per lost read/write naming the error type, the lost
    #: fid/offset/length and any stale-version provenance the
    #: version-ordered read chain refused to serve.
    failure_causes: Tuple[str, ...] = ()
    #: Narrowest gap between two consecutive crash events in the drawn
    #: schedule (None when the schedule has fewer than two crashes) —
    #: the storm-gap trajectory across PRs hinges on this width vs the
    #: detection delay.
    crash_window: Optional[float] = None
    #: Mid-storm overwrite outcomes (``partition`` and ``hotspot``
    #: mixes): a write either commits on a majority or is rejected whole
    #: with a structured error — ``writes_lost`` counts honest
    #: rejections.
    writes_ok: int = 0
    writes_lost: int = 0
    #: Invariant violations: silent wrong bytes or unexpected exceptions.
    violations: List[str] = field(default_factory=list)
    faults: Tuple[str, ...] = ()
    telemetry_ops: Tuple[str, ...] = ()
    #: SHA-256 over the full observable outcome (reproducibility pin).
    digest: str = ""

    @property
    def reads_total(self) -> int:
        return self.reads_ok + self.reads_lost

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignResult:
    """Aggregate over a seed range."""

    runs: List[ChaosRunResult] = field(default_factory=list)

    @property
    def reads_ok(self) -> int:
        return sum(r.reads_ok for r in self.runs)

    @property
    def reads_total(self) -> int:
        return sum(r.reads_total for r in self.runs)

    @property
    def success_rate(self) -> float:
        total = self.reads_total
        return 1.0 if total == 0 else self.reads_ok / total

    @property
    def writes_ok(self) -> int:
        return sum(r.writes_ok for r in self.runs)

    @property
    def writes_lost(self) -> int:
        return sum(r.writes_lost for r in self.runs)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for r in self.runs:
            out.extend(f"seed {r.seed}: {v}" for v in r.violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict:
        """JSON-serialisable campaign summary with per-seed failure
        *causes* (not just pass/fail counts), so the storm-gap
        trajectory stays diagnosable across PRs.  ``failures`` lists
        every seed that lost a read or violated the invariant, with its
        crash-window width, the structured causes and the digest."""
        runs = self.runs
        return {
            "mix": runs[0].mix if runs else None,
            "hardened": runs[0].hardened if runs else None,
            "seeds": len(runs),
            "reads_ok": self.reads_ok,
            "reads_total": self.reads_total,
            "success_rate": self.success_rate,
            "writes_ok": self.writes_ok,
            "writes_lost": self.writes_lost,
            "violations": self.violations,
            "failures": [
                {"seed": r.seed,
                 "reads_lost": r.reads_lost,
                 "writes_lost": r.writes_lost,
                 "crash_window": r.crash_window,
                 "causes": list(r.failure_causes),
                 "violations": list(r.violations),
                 "digest": r.digest}
                for r in runs
                if r.reads_lost or r.writes_lost or r.violations],
        }


def _loss_cause(kind: str, rank: int, err: Exception) -> str:
    """One diagnosable line for a lost read/write: error type, the lost
    span's identity, and the stale-version provenance (if the
    version-ordered chain refused stale copies)."""
    parts = [f"{kind} rank {rank}: {type(err).__name__}"]
    fid = getattr(err, "fid", None)
    offset = getattr(err, "offset", None)
    length = getattr(err, "length", None)
    if fid is not None:
        parts.append(f"fid={fid}")
    if offset is not None:
        parts.append(f"offset={int(offset)}")
    if length is not None:
        parts.append(f"length={int(length)}")
    provenance = getattr(err, "stale_provenance", ())
    if provenance:
        parts.append("stale=" + ",".join(
            f"[{s.start},{s.end})v{s.have_version}<v{s.want_version}"
            f"@e{s.want_epoch}" for s in provenance))
    return " ".join(parts)


def _config(hardened: bool, mix: str = "storm") -> UniviStorConfig:
    """The run configuration.  Both modes replicate and retry (PR 1);
    only ``hardened`` detects, takes over metadata ranges and scrubs.
    The metadata fast path runs at full strength: batching and the
    location cache are on by default, and a small ``journal_checkpoint``
    forces truncation to actually fire inside every run (the 64 KiB
    ranges journal only a few records each).

    The ``partition`` mix replicates each range three ways (stride
    ``servers_per_node`` = one copy per node, so cutting one node off
    still leaves a two-of-three majority), shortens the lease so fencing
    resolves inside the storm window, and turns on periodic rate-limited
    scrubbing so deferral and resume paths get exercised.

    The ``hotspot`` mix additionally turns on the adaptive mitigation
    layer with aggressive thresholds (so splits, merges and pool growth
    all fire inside one short run) and the same three-way replication as
    the partition mix, because its schedule also cuts nodes off."""
    kw = dict(metadata_range_size=float(64 * KiB), journal_checkpoint=2)
    if mix == "storm":
        # The canonical storm deployment acks writes only once two
        # failure domains hold the segments: the double-crash losses the
        # legacy dq=1 deployment admitted (the 99.92 % plateau) are
        # structurally closed.  ``storm_legacy`` keeps the dq=1 config.
        kw.update(data_quorum=2)
    if mix == "partition":
        kw.update(metadata_replication=3, lease_ttl=0.25,
                  scrub_interval=0.15, scrub_rate_limit=float(1024 * KiB))
    elif mix == "hotspot":
        kw.update(metadata_replication=3, lease_ttl=0.25,
                  hotspot_enabled=True, range_split_threshold=6,
                  range_merge_threshold=2, hotspot_interval=0.04,
                  pool_max_servers=8)
    elif mix == "storm2":
        # Three-way metadata replication (one copy per node) keeps every
        # range readable through a double node crash; data_quorum=2 is
        # the feature under test — a write acks only once its segments
        # are durable on two failure domains.
        kw.update(metadata_replication=3, lease_ttl=0.25, data_quorum=2)
    elif mix not in ("storm", "storm_legacy"):
        raise ValueError(f"unknown chaos mix {mix!r}; valid: {MIXES}")
    config = UniviStorConfig.hardened(**kw)
    if not hardened:
        config = config.without("health_enabled", "recovery_enabled",
                                "scrub_enabled")
    return config


def _settle_for(config: UniviStorConfig) -> float:
    """Post-storm settle: past the dead-declaration delay, the lease
    expiry (fencing fires at ``lease_ttl``), and restore tails."""
    return max(_SETTLE,
               config.heartbeat_interval * config.dead_heartbeats + 0.4,
               config.lease_ttl + 0.4)


def _schedule(rng: StreamRNG, base: float, n_nodes: int,
              n_servers: int, servers_per_node: int,
              lease_ttl: float = 0.0) -> FaultSpec:
    """Draw one randomized fault storm starting at ``base``.

    Bounded malice: at most one node crash and one extra server crash
    (the cluster keeps a working majority), shared-device outages are
    short enough for the retry budget to bridge, and corruption strikes
    any tier holding data.  Every draw comes from a named stream, so the
    schedule is a pure function of the campaign seed.
    """
    s = rng.stream("chaos.schedule")

    def when() -> float:
        return base + float(s.uniform(0.005, _STORM_WINDOW))

    events: List[Fault] = []
    crashed_node: Optional[int] = None
    if s.uniform() < 0.5:
        crashed_node = int(s.integers(n_nodes))
        events.append(Fault(at=when(), kind="node-crash",
                            target=crashed_node))
    if s.uniform() < 0.5:
        server = int(s.integers(n_servers))
        if (crashed_node is not None
                and server // servers_per_node == crashed_node):
            # Already dies with its node; aim at a surviving one instead
            # (the duplicate-crash spec validation is strict).
            server = (server + servers_per_node) % n_servers
        events.append(Fault(at=when(), kind="server-crash", target=server))
    # Shared-device trouble: brownouts and short outages the retry
    # budget must bridge.
    for tier in ("shared_bb", "pfs"):
        roll = s.uniform()
        if roll < 0.25:
            events.append(Fault(at=when(), kind="device-degrade", tier=tier,
                                factor=float(s.uniform(0.25, 0.75)),
                                duration=float(s.uniform(0.05, 0.2))))
        elif roll < 0.4:
            events.append(Fault(at=when(), kind="device-fail", tier=tier,
                                duration=float(s.uniform(0.05, 0.15))))
    # Silent rot: 1-3 strikes across the tiers holding data.
    for _ in range(1 + int(s.integers(3))):
        roll = s.uniform()
        if roll < 0.4:
            events.append(Fault(at=when(), kind="data-corrupt", tier="dram",
                                target=int(s.integers(n_nodes)),
                                nbytes=float(8 * KiB)))
        elif roll < 0.8:
            events.append(Fault(at=when(), kind="data-corrupt",
                                tier="shared_bb", nbytes=float(8 * KiB)))
        else:
            events.append(Fault(at=when(), kind="data-corrupt", tier="pfs",
                                nbytes=float(8 * KiB)))
    return FaultSpec(events=tuple(events))


def _partition_schedule(rng: StreamRNG, base: float, n_nodes: int,
                        n_servers: int, servers_per_node: int,
                        lease_ttl: float) -> FaultSpec:
    """Draw one partition-heavy storm starting at ``base``.

    Always cuts one node's server group off the metadata plane —
    usually symmetrically (heartbeats lost too, so the fencing clock
    runs), sometimes one-way (requests lost but heartbeats arrive:
    unavailable, never fenced).  Durations straddle ``lease_ttl`` so
    some cuts heal before the lease expires (no takeover may fire) and
    some outlive it (the survivors must fence and take over).  A second
    disjoint cut, a server crash, and silent rot ride along with
    bounded probability.
    """
    s = rng.stream("chaos.partition-schedule")

    def when() -> float:
        return base + float(s.uniform(0.005, 0.4 * _STORM_WINDOW))

    events: List[Fault] = []
    victim = int(s.integers(n_nodes))
    mode = "sym" if s.uniform() < 0.7 else "oneway"
    events.append(Fault(at=when(), kind="partition", nodes=(victim,),
                        mode=mode,
                        duration=float(s.uniform(0.1, lease_ttl + 0.3))))
    if s.uniform() < 0.25:
        # A second, briefer disjoint cut: while both are active no
        # range has a majority, so overwrites must reject whole.
        other = (victim + 1 + int(s.integers(n_nodes - 1))) % n_nodes
        events.append(Fault(at=when(), kind="partition", nodes=(other,),
                            mode="sym",
                            duration=float(s.uniform(0.05,
                                                     0.5 * lease_ttl))))
    if s.uniform() < 0.3:
        events.append(Fault(at=when(), kind="server-crash",
                            target=int(s.integers(n_servers))))
    for _ in range(int(s.integers(2))):
        roll = s.uniform()
        if roll < 0.5:
            events.append(Fault(at=when(), kind="data-corrupt", tier="dram",
                                target=int(s.integers(n_nodes)),
                                nbytes=float(8 * KiB)))
        else:
            events.append(Fault(at=when(), kind="data-corrupt",
                                tier="shared_bb", nbytes=float(8 * KiB)))
    return FaultSpec(events=tuple(events))


def _hotspot_schedule(rng: StreamRNG, base: float, n_nodes: int,
                      n_servers: int, servers_per_node: int,
                      lease_ttl: float) -> FaultSpec:
    """Draw one storm aimed at the mitigation layer, starting at
    ``base`` — which the caller sets to the start of the overwrite
    waves, so cuts and crashes land while ranges are mid-split and the
    pool is mid-growth.

    Usually a partition (straddling ``lease_ttl`` like the partition
    mix, so the minority side must *defer* splits rather than fork the
    layout), often server crashes (a split sub-range member dying forces
    the split-aware takeover refill), plus bounded silent rot.  No node
    crashes: a node crash wipes the *data-plane* node-local copies of
    the waves' overwrites, a pre-existing coherence gap orthogonal to
    the metadata mitigation this mix targets (ROADMAP open item).
    """
    s = rng.stream("chaos.hotspot-schedule")

    def when() -> float:
        return base + float(s.uniform(0.01, _HOT_WAVES * _HOT_WAVE_GAP))

    events: List[Fault] = []
    if s.uniform() < 0.6:
        victim = int(s.integers(n_nodes))
        mode = "sym" if s.uniform() < 0.7 else "oneway"
        events.append(Fault(at=when(), kind="partition", nodes=(victim,),
                            mode=mode,
                            duration=float(s.uniform(0.08,
                                                     lease_ttl + 0.2))))
    crashed: Optional[int] = None
    if s.uniform() < 0.5:
        crashed = int(s.integers(n_servers))
        events.append(Fault(at=when(), kind="server-crash", target=crashed))
    if s.uniform() < 0.25:
        # A second crash on a different server: two split sub-range
        # members dying probes the quorum floor of the refill.
        other = (crashed + 1 + int(s.integers(n_servers - 1))) % n_servers \
            if crashed is not None else int(s.integers(n_servers))
        events.append(Fault(at=when(), kind="server-crash", target=other))
    for _ in range(int(s.integers(2))):
        events.append(Fault(at=when(), kind="data-corrupt",
                            tier="shared_bb", nbytes=float(4 * KiB)))
    return FaultSpec(events=tuple(events))


def _storm2_schedule(rng: StreamRNG, base: float, n_nodes: int,
                     n_servers: int, servers_per_node: int,
                     lease_ttl: float) -> FaultSpec:
    """Draw the data-plane quorum storm: a **double node crash whose
    gap is shorter than the detection delay** (heartbeat_interval *
    dead_heartbeats = 0.2 s), so the second crash always lands before
    the first is even declared dead — crash-triggered re-replication
    can never win this race, only a synchronous write-time copy
    survives it.  DRAM rot on any node and a shared-BB brownout ride
    along; no BB *outage* or BB corruption: the storm must kill the
    primaries, not sabotage the quorum copies, to isolate the gap
    being gated.
    """
    s = rng.stream("chaos.storm2-schedule")
    events: List[Fault] = []
    first = int(s.integers(n_nodes))
    second = (first + 1 + int(s.integers(n_nodes - 1))) % n_nodes
    t1 = base + float(s.uniform(0.01, 0.08))
    gap = float(s.uniform(0.02, 0.15))  # always < the 0.2 s dead delay
    events.append(Fault(at=t1, kind="node-crash", target=first))
    events.append(Fault(at=t1 + gap, kind="node-crash", target=second))
    if s.uniform() < 0.4:
        events.append(Fault(at=base + float(s.uniform(0.01, _STORM_WINDOW)),
                            kind="device-degrade", tier="shared_bb",
                            factor=float(s.uniform(0.25, 0.75)),
                            duration=float(s.uniform(0.05, 0.2))))
    for _ in range(int(s.integers(3))):
        events.append(Fault(at=base + float(s.uniform(0.01, _STORM_WINDOW)),
                            kind="data-corrupt", tier="dram",
                            target=int(s.integers(n_nodes)),
                            nbytes=float(8 * KiB)))
    return FaultSpec(events=tuple(events))


#: Mix-name registry: every schedule generator shares the signature
#: ``(rng, base, n_nodes, n_servers, servers_per_node, lease_ttl)``.
_SCHEDULES = {
    "storm": _schedule,
    "storm_legacy": _schedule,
    "partition": _partition_schedule,
    "hotspot": _hotspot_schedule,
    "storm2": _storm2_schedule,
}
assert tuple(_SCHEDULES) == MIXES


def run_one(seed: int, hardened: bool = True,
            config: Optional[UniviStorConfig] = None,
            mix: str = "storm") -> ChaosRunResult:
    """One seeded chaos run; deterministic for a fixed (seed, hardened,
    mix, config).

    ``config`` overrides the canonical :func:`_config` deployment — the
    coherence tests use it to pin that fast-path variants (location
    cache or batching off) replay the exact same observable run; the
    chaos CLI uses it to tune detector/lease knobs per campaign.
    """
    if mix not in MIXES:
        raise ValueError(f"unknown chaos mix {mix!r}; valid: {MIXES}")
    result = ChaosRunResult(seed=seed, hardened=hardened, mix=mix)
    rng = StreamRNG(seed)
    cfg = config if config is not None else _config(hardened, mix)
    sim = Simulation(MachineSpec.small_test(nodes=NODES),
                     engine_shards=cfg.engine_shards,
                     engine_bucket_width=cfg.engine_bucket_width)
    system = sim.install_univistor(cfg)
    comm = sim.comm("chaos", NODES * PROCS_PER_NODE,
                    procs_per_node=PROCS_PER_NODE)
    expected = {r: PatternPayload(r).materialize(0, BLOCK)
                for r in range(comm.size)}
    # Hotspot mix: each rank also owns a small slot inside ONE shared
    # range (seeded before the storm so every slot has a committed
    # baseline; the overwrite waves then update it when they commit).
    hot_expected = {r: PatternPayload(50 + r).materialize(0, HOT_SLOT)
                    for r in range(comm.size)} if mix == "hotspot" else {}

    def app():
        fh = yield from sim.open(comm, "/chaos", "w", fstype="univistor")
        seed_reqs = [
            IORequest.contiguous_block(r, BLOCK, PatternPayload(r))
            for r in range(comm.size)]
        if mix == "hotspot":
            seed_reqs.extend(
                IORequest(r, HOT_BASE + r * _HOT_STRIDE, HOT_SLOT,
                          PatternPayload(50 + r))
                for r in range(comm.size))
        yield from fh.write_at_all(seed_reqs)
        yield from fh.close()
        yield from fh.sync()

        spec = _SCHEDULES[mix](rng, sim.now, NODES, system.total_servers,
                               system.config.servers_per_node,
                               cfg.lease_ttl)
        injector = sim.install_faults(spec, seed=seed)
        result.faults = tuple(f.describe() for f in injector.timeline)
        crash_times = sorted(f.at for f in injector.timeline
                             if f.kind in ("node-crash", "server-crash"))
        if len(crash_times) >= 2:
            result.crash_window = min(
                b - a for a, b in zip(crash_times, crash_times[1:]))
        if system.scrub is not None and cfg.scrub_interval > 0:
            # Periodic scrubbing across the storm: ticks that land
            # while recovery or flushes are in flight defer.
            system.scrub.start_periodic()
        if mix == "partition":
            # Overwrite phase in the middle of the storm: every rank
            # rewrites its block (v2 pattern) while cuts are active.
            # Quorum admission must either commit a write on a majority
            # or reject it whole — ``expected`` tracks which, so a
            # healed ex-owner serving the old pattern after a committed
            # overwrite surfaces as silent corruption below.
            yield sim.engine.timeout(0.5 * _STORM_WINDOW)
            fh = yield from sim.open(comm, "/chaos", "w",
                                     fstype="univistor")
            for r in range(comm.size):
                try:
                    yield from fh.write_at_all([IORequest.contiguous_block(
                        r, BLOCK, PatternPayload(r + comm.size))])
                except DataLossError as err:
                    # Quorum unreachable: the honest whole-write
                    # rejection the invariant allows.
                    result.writes_lost += 1
                    result.failure_causes += (_loss_cause("write", r, err),)
                    continue
                except Exception as err:  # noqa: BLE001 - the invariant
                    result.violations.append(
                        f"rank {r}: overwrite unhandled "
                        f"{type(err).__name__}: {err}")
                    continue
                expected[r] = PatternPayload(r + comm.size).materialize(
                    0, BLOCK)
                result.writes_ok += 1
            try:
                yield from fh.close()
                yield from fh.sync()
            except DataLossError:
                pass  # flush blocked by the cut; caches still serve
            except Exception as err:  # noqa: BLE001 - the invariant
                result.violations.append(
                    f"overwrite close: unhandled "
                    f"{type(err).__name__}: {err}")
            yield sim.engine.timeout(0.5 * _STORM_WINDOW
                                     + _settle_for(cfg))
        elif mix == "hotspot":
            # Skewed overwrite waves: every rank hammers its slot in the
            # shared hot range while the storm lands, driving the heat
            # tracker past the split threshold mid-fault.  Quorum
            # admission holds under mitigation exactly as it does under
            # partitions: a wave write either commits on a majority (and
            # ``hot_expected`` advances) or is rejected whole.
            fh = yield from sim.open(comm, "/chaos", "w",
                                     fstype="univistor")
            for wave in range(1, _HOT_WAVES + 1):
                for r in range(comm.size):
                    pattern = PatternPayload(100 + wave * comm.size + r)
                    try:
                        yield from fh.write_at_all([IORequest(
                            r, HOT_BASE + r * _HOT_STRIDE, HOT_SLOT,
                            pattern)])
                    except DataLossError as err:
                        result.writes_lost += 1
                        result.failure_causes += (
                            _loss_cause("write", r, err),)
                        continue
                    except Exception as err:  # noqa: BLE001 - invariant
                        result.violations.append(
                            f"rank {r}: hot overwrite unhandled "
                            f"{type(err).__name__}: {err}")
                        continue
                    hot_expected[r] = pattern.materialize(0, HOT_SLOT)
                    result.writes_ok += 1
                yield sim.engine.timeout(_HOT_WAVE_GAP)
            try:
                yield from fh.close()
                yield from fh.sync()
            except DataLossError:
                pass  # flush blocked by the storm; caches still serve
            except Exception as err:  # noqa: BLE001 - the invariant
                result.violations.append(
                    f"hot close: unhandled {type(err).__name__}: {err}")
            yield sim.engine.timeout(_settle_for(cfg))
        elif mix == "storm2":
            # Overwrite phase BEFORE the crashes, on a healthy cluster,
            # and the file deliberately stays OPEN through the storm: no
            # close means no async flush and no close-time replication,
            # so when the double crash wipes both writer nodes inside
            # the detection window, the only durable copy of v2 is the
            # synchronous write-time quorum mirror (data_quorum=2).
            # With data_quorum=1 this exact run loses the overwrites —
            # the version-ordered ladder raises instead of serving the
            # stale v1 replica (the pre-PR silent stale-read gap).
            fh = yield from sim.open(comm, "/chaos", "w",
                                     fstype="univistor")
            for r in range(comm.size):
                try:
                    yield from fh.write_at_all([IORequest.contiguous_block(
                        r, BLOCK, PatternPayload(r + comm.size))])
                except DataLossError as err:
                    result.writes_lost += 1
                    result.failure_causes += (_loss_cause("write", r, err),)
                    continue
                except Exception as err:  # noqa: BLE001 - the invariant
                    result.violations.append(
                        f"rank {r}: overwrite unhandled "
                        f"{type(err).__name__}: {err}")
                    continue
                expected[r] = PatternPayload(r + comm.size).materialize(
                    0, BLOCK)
                result.writes_ok += 1
            yield sim.engine.timeout(_STORM_WINDOW + _settle_for(cfg))
            try:
                yield from fh.close()
                yield from fh.sync()
            except DataLossError:
                pass  # flush blocked by the storm; replicas still serve
            except Exception as err:  # noqa: BLE001 - the invariant
                result.violations.append(
                    f"storm2 close: unhandled {type(err).__name__}: {err}")
        else:
            yield sim.engine.timeout(_STORM_WINDOW + _SETTLE)
        if system.scrub is not None:
            # Periodic background scrubbing: one pass between the storm
            # and the reads (node deaths already trigger their own).
            yield system.scrub.start_scrub()

        fh2 = yield from sim.open(comm, "/chaos", "r", fstype="univistor")
        for r in range(comm.size):
            try:
                data = yield from fh2.read_at_all(
                    [IORequest(r, r * BLOCK, BLOCK)])
            except DataLossError as err:
                # Structured loss is the honest failure the invariant
                # allows.
                result.reads_lost += 1
                result.failure_causes += (_loss_cause("read", r, err),)
                continue
            except Exception as err:  # noqa: BLE001 - the invariant
                result.violations.append(
                    f"rank {r}: unhandled {type(err).__name__}: {err}")
                continue
            blob = b"".join(e.materialize() for e in data[r])
            if blob == expected[r]:
                result.reads_ok += 1
            else:
                result.violations.append(
                    f"rank {r}: silent corruption "
                    f"({sum(a != b for a, b in zip(blob, expected[r]))} "
                    f"wrong bytes)")
        for r in (range(comm.size) if mix == "hotspot" else ()):
            try:
                data = yield from fh2.read_at_all([IORequest(
                    r, HOT_BASE + r * _HOT_STRIDE, HOT_SLOT)])
            except DataLossError as err:
                result.reads_lost += 1
                result.failure_causes += (_loss_cause("read", r, err),)
                continue
            except Exception as err:  # noqa: BLE001 - the invariant
                result.violations.append(
                    f"rank {r}: hot read unhandled "
                    f"{type(err).__name__}: {err}")
                continue
            blob = b"".join(e.materialize() for e in data[r])
            if blob == hot_expected[r]:
                result.reads_ok += 1
            else:
                result.violations.append(
                    f"rank {r}: hot-slot silent corruption/stale read "
                    f"({sum(a != b for a, b in zip(blob, hot_expected[r]))}"
                    f" wrong bytes)")
        yield from fh2.close()

    try:
        sim.run_to_completion(app())
        sim.run()  # drain background work; an unobserved crash raises
    except Exception as err:  # noqa: BLE001 - the invariant
        result.violations.append(
            f"engine: unhandled {type(err).__name__}: {err}")
    result.telemetry_ops = tuple(r.op for r in sim.telemetry.records)
    h = hashlib.sha256()
    # storm_legacy exists to replay the pre-quorum storm trajectory —
    # digests included — so it hashes under its historical mix label.
    digest_mix = "storm" if result.mix == "storm_legacy" else result.mix
    h.update(repr((result.seed, result.hardened, digest_mix,
                   result.reads_ok, result.reads_lost,
                   result.writes_ok, result.writes_lost,
                   tuple(result.violations), result.faults)).encode())
    for rec in sim.telemetry.records:
        h.update(f"{rec.app}|{rec.op}|{rec.path}|{rec.t_start:.9f}|"
                 f"{rec.t_end:.9f}|{rec.nbytes}\n".encode())
    result.digest = h.hexdigest()
    return result


def run_campaign(seeds: int, hardened: bool = True,
                 first_seed: int = 0, jobs: int = 1,
                 mix: str = "storm",
                 config: Optional[UniviStorConfig] = None) -> CampaignResult:
    """Run ``seeds`` consecutive schedules; aggregates the invariant.

    ``jobs > 1`` fans the seeds out over a ``multiprocessing`` pool.
    Each run is a pure function of ``(seed, hardened, mix, config)`` —
    every worker builds its own engine and machine from scratch — so the
    per-seed digests are bit-identical to the serial path and
    ``starmap`` preserves seed order in :attr:`CampaignResult.runs`.
    (``UniviStorConfig`` is a plain frozen dataclass, so the override
    pickles across the pool.)
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if mix not in MIXES:
        raise ValueError(f"unknown chaos mix {mix!r}; valid: {MIXES}")
    campaign = CampaignResult()
    seed_range = range(first_seed, first_seed + seeds)
    if jobs > 1 and seeds > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=min(jobs, seeds)) as pool:
            campaign.runs.extend(pool.starmap(
                run_one,
                [(seed, hardened, config, mix) for seed in seed_range]))
        return campaign
    for seed in seed_range:
        campaign.runs.append(run_one(seed, hardened=hardened,
                                     config=config, mix=mix))
    return campaign
