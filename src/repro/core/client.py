"""The UniviStor ADIO driver (§II-F).

Installed in the MPI-IO layer (select it with ``ROMIO_FSTYPE_FORCE =
univistor``, i.e. ``registry.fstype_force = "univistor"``), the driver
transparently redirects an application's MPI-IO traffic to the UniviStor
servers:

* **open/close** — metadata operations against the server owning the file
  (by name hash).  With collective open/close (COC) only the root rank
  talks to the server and broadcasts the result; without it, all ranks
  send the same request to the same server, which serialises them — the
  §II-F scalability problem the evaluation's COC variant isolates.
* **write** — DHP placement into per-rank logs (§II-B1) plus metadata
  record insertion (§II-B3).
* **read** — the (location-aware) read service (§II-B4).
* **close on a written file** — triggers the asynchronous server-side
  flush; workflow lock release piggybacks here too (§II-E).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.analysis.metrics import Telemetry
from repro.core.config import StorageTier
from repro.core.errors import DataQuorumLostError
from repro.core.metadata import (MetadataRecord, MetadataUnavailableError,
                                 QuorumLostError, coalesce_records)
from repro.core.server import FileSession, UniviStorServers
from repro.core.versioning import stamp_with_epochs
from repro.storage.device import TransientIOError
from repro.simmpi.adio import ADIODriver, OpenContext
from repro.simmpi.mpiio import IORequest
from repro.storage.lustre import StripingLayout

__all__ = ["UniviStorDriver"]


@dataclass
class _OpenFile:
    """Driver-private per-open state (ROMIO's ADIO_File equivalent)."""

    session: FileSession
    ctx: OpenContext
    lock_kind: Optional[str] = None  # "read" | "write" | None
    bytes_written: float = 0.0


class UniviStorDriver(ADIODriver):
    """UniviStor as an MPI-IO ADIO driver."""

    name = "univistor"

    def __init__(self, system: UniviStorServers, telemetry: Telemetry):
        self.system = system
        self.telemetry = telemetry
        self.machine = system.machine
        self.engine = system.engine

    # -- metadata-operation cost (COC, §II-F) -----------------------------------
    def _metadata_op(self, ctx: OpenContext) -> Generator:
        """Open/close file-metadata operation against the owning server.

        Writes create/update the file entry (EOF, log registry) — the
        expensive op; reads only fetch attributes.  With COC the root
        performs it once and broadcasts; without it, every rank sends the
        same request to the same server (file-name hash), which works
        them off one by one — the §II-F scalability problem.
        """
        net = self.machine.network
        writing = ctx.mode in ("w", "rw")
        op_time = (net.spec.file_create_time if writing
                   else net.spec.file_stat_time)
        if self.system.config.collective_open_close:
            # Root asks the owning server, result broadcast to all ranks.
            yield net.rpc(1, serialized=False, op_time=op_time)
            yield ctx.comm.bcast_small()
        else:
            yield net.rpc(ctx.comm.size, serialized=True, op_time=op_time)

    # -- ADIO surface ------------------------------------------------------------
    def open(self, ctx: OpenContext) -> Generator:
        t0 = self.engine.now
        session = self.system.session(ctx.path)
        state = _OpenFile(session=session, ctx=ctx)
        if self.system.config.workflow_enabled:
            # Lock acquire piggybacks on the collective open; only the
            # root touches the state file (one PFS-latency RPC).
            if ctx.mode in ("w", "rw"):
                yield from self.system.workflow.acquire_write(ctx.path)
                state.lock_kind = "write"
            else:
                yield from self.system.workflow.acquire_read(ctx.path)
                state.lock_kind = "read"
            yield self.engine.timeout(self.machine.spec.lustre.latency)
        yield from self._metadata_op(ctx)
        self.telemetry.record(app=ctx.comm.name, op="open", path=ctx.path,
                              t_start=t0, driver=self.name)
        return state

    def write_at_all(self, state: _OpenFile, requests: List[IORequest]
                     ) -> Generator:
        t0 = self.engine.now
        session = state.session
        comm = state.ctx.comm
        system = self.system
        metadata = system.metadata
        machine = self.machine

        # ---- functional placement (per-rank DHP) --------------------------
        # keyed by (node_id, tier) so DRAM and node-local SSD flows hit
        # their own devices.
        local_bytes_by_node: Dict[tuple, float] = {}
        local_ranks_by_node: Dict[tuple, int] = {}
        bb_bytes = 0.0
        bb_ranks = 0
        pfs_bytes = 0.0
        pfs_ranks = 0
        inserts_per_server: Dict[int, int] = {}
        total = 0.0
        # Metadata fast path: accumulate records across the collective op
        # and ship one aggregated, coalesced insert per touched server at
        # the end.  Per-request server accounting (inserts_per_server)
        # comes from write_target_servers, which returns exactly the
        # touched set the per-request insert returned — the simulated RPC
        # cost is bit-identical to the unbatched path.
        meta_batch = system.config.meta_batch
        quorum = system.config.meta_quorum
        data_quorum = system.config.data_quorum
        dq_bytes = 0.0
        dq_ranks = 0
        op_version = None
        pending: List[MetadataRecord] = []
        pending_spans: List[tuple] = []
        for req in requests:
            if req.length == 0:
                continue
            probe = None
            if quorum:
                # Probe-first admission: with quorum an insert can be
                # rejected while replicas survive, so acceptance must be
                # atomic per request — probe before freeing overwritten
                # chunks or placing bytes, leaving a rejected request
                # fully un-applied (the superseded records and the chunks
                # they point at stay live and readable).
                try:
                    probe = metadata.write_target_servers(
                        session.fid, req.offset, req.length)
                except (MetadataUnavailableError, QuorumLostError):
                    if meta_batch:
                        self._ship_pending(session, pending)
                    raise
            writer = session.writer_for(comm, req.rank)
            if meta_batch and pending_spans:
                # pending_spans is kept sorted and its spans are pairwise
                # disjoint (an overlap ships and resets the list), so the
                # only candidate overlap is the rightmost span starting
                # before req's end — an O(log n) probe instead of a scan.
                req_end = req.offset + req.length
                i = bisect_left(pending_spans, (req_end,))
                if i > 0 and pending_spans[i - 1][1] > req.offset:
                    # An intra-op overwrite: ship what's pending so the
                    # free-overwritten pass (and the DHP free-chunk
                    # accounting behind it) sees the earlier records of
                    # this very op, exactly like the unbatched path.
                    self._ship_pending(session, pending)
                    pending = []
                    pending_spans = []
            self._free_overwritten(session, req)
            segments = writer.write(req.offset, req.length, req.payload,
                                    req.payload_offset)
            node = comm.node_of_rank(req.rank)
            rank_local_tiers = set()
            rank_bb = False
            rank_pfs = False
            records = []
            for seg in segments:
                records.append(MetadataRecord(
                    fid=session.fid, offset=seg.logical_offset,
                    length=seg.length, proc_id=req.rank, va=seg.va,
                    tier=seg.tier,
                    node_id=node.node_id if seg.tier.is_node_local else None))
                if seg.tier.is_node_local:
                    key = (node.node_id, seg.tier)
                    local_bytes_by_node[key] = (
                        local_bytes_by_node.get(key, 0.0) + seg.length)
                    rank_local_tiers.add(key)
                    session.cached_bytes_written += seg.length
                    session.volatile_bytes_written += seg.length
                elif seg.tier is StorageTier.SHARED_BB:
                    bb_bytes += seg.length
                    rank_bb = True
                    session.cached_bytes_written += seg.length
                else:
                    pfs_bytes += seg.length
                    rank_pfs = True
            # Authority stamping (docs/MODEL.md §12): one write version
            # per collective op, split at range boundaries so each span
            # carries the epoch current at write time.  Quorum-rejected
            # requests never reach here (probe raised above), so a
            # rejected overwrite leaves the authority — like the
            # superseded records — fully intact.
            if op_version is None:
                session.write_version += 1
                op_version = session.write_version
            stamp_with_epochs(session.data_versions, metadata, req.offset,
                              req.length, op_version)
            if data_quorum >= 2:
                # Synchronous second copy: mirror this request's
                # node-local segments into the rank's replica log on the
                # shared BB *now*, so the ack below can attest two
                # failure domains.  Spilled BB/PFS segments already live
                # off-node and need no extra copy.
                rank_sync = 0.0
                for rec in records:
                    if not rec.tier.is_node_local:
                        continue
                    replica = system.resilience.replica_file(session,
                                                             rec.proc_id)
                    replica.write_at(
                        rec.offset, rec.length, req.payload,
                        req.payload_offset + (rec.offset - req.offset))
                    session.replica_map(rec.proc_id).copy_from(
                        session.data_versions, rec.offset, rec.length)
                    rank_sync += rec.length
                if rank_sync > 0:
                    system.resilience.note_synchronous_copy(session,
                                                            rank_sync)
                    dq_bytes += rank_sync
                    dq_ranks += 1
            if meta_batch:
                if probe is not None:
                    # Quorum mode already probed this request's admission
                    # up front; the state cannot have changed since.
                    touched = probe
                else:
                    try:
                        touched = metadata.write_target_servers(
                            session.fid, req.offset, req.length)
                    except (MetadataUnavailableError, QuorumLostError):
                        # A touched range has lost its whole replica set.
                        # Reproduce the unbatched semantics exactly:
                        # earlier requests' records are already durable
                        # (shipped below), this request's insert
                        # partially applies then raises at the lost
                        # range.
                        self._ship_pending(session, pending)
                        cache = system.location_cache
                        if cache is not None:
                            cache.invalidate_file(session.fid)
                        metadata.insert_many(records)
                        raise
                pending.extend(records)
                insort(pending_spans, (req.offset, req.offset + req.length))
            else:
                touched = metadata.insert_many(records)
                cache = system.location_cache
                if cache is not None:
                    cache.insert_records(records)
            for s in touched:
                inserts_per_server[s] = inserts_per_server.get(s, 0) + 1
            for key in rank_local_tiers:
                local_ranks_by_node[key] = (
                    local_ranks_by_node.get(key, 0) + 1)
            bb_ranks += rank_bb
            pfs_ranks += rank_pfs
            total += req.length
        if meta_batch and pending:
            self._ship_pending(session, pending)
        session.bytes_written += total
        state.bytes_written += total

        # ---- timing (one flow group per tier touched) ----------------------
        flows = []
        sched = system.scheduler
        net = machine.network
        # Scheduling efficiency is pooled (mean) across the participating
        # nodes: CFS migrates processes during a long collective, so the
        # whole operation tracks the average placement, not the unluckiest
        # node's initial one.
        if local_bytes_by_node:
            effs = [sched.client_efficiency(machine.nodes[nid], comm.name,
                                            "write")
                    for nid, _tier in local_bytes_by_node]
            pooled_eff = sum(effs) / len(effs)
        for (node_id, tier), nbytes in local_bytes_by_node.items():
            node = machine.nodes[node_id]
            streams = max(1, local_ranks_by_node.get((node_id, tier), 1))
            device = system.tier_device(tier, node)
            if tier is StorageTier.DRAM:
                # The client-side cache-copy path (mmap copy +
                # bookkeeping) limits the node to dram_cache_bandwidth.
                cap = node.spec.dram_cache_bandwidth / streams
            else:
                cap = device.pipe.bandwidth / streams
            flows.append(device.write(nbytes / streams, streams=streams,
                                      per_stream_cap=cap,
                                      efficiency=pooled_eff,
                                      tag=f"uv-write-{tier.value}"))
        if bb_bytes > 0:
            bb = machine.burst_buffer
            assert bb is not None
            streams = max(1, bb_ranks)
            cap = min(bb.client_write_cap(comm.procs_per_node),
                      net.injection_cap(comm.procs_per_node))
            # DHP's file-per-process layout: no shared-file penalty.
            flows.append(bb.write(bb_bytes / streams, streams=streams,
                                  shared_file=False, per_stream_cap=cap,
                                  tag="uv-write-bb"))
        if pfs_bytes > 0:
            lustre = machine.lustre
            streams = max(1, pfs_ranks)
            layout = StripingLayout.round_robin(streams, lustre.spec.osts)
            cap = min(net.injection_cap(comm.procs_per_node),
                      lustre.spec.client_node_bandwidth / comm.procs_per_node)
            flows.append(lustre.write_with_layout(
                pfs_bytes / streams, layout, per_stream_cap=cap,
                efficiency=lustre.spec.fpp_efficiency(streams),
                tag="uv-write-pfs"))
        def quorum_lost(exc: TransientIOError) -> DataQuorumLostError:
            # The synchronous BB mirror failed (past the retry budget
            # when retries are on): the write is NOT durable on
            # data_quorum failure domains, so it is not acknowledged.
            # Like a metadata range loss mid-op, the primary placement
            # has partially applied; the structured error says which
            # quorum was missed.
            system.count("data-quorum-lost")
            first = requests[0] if requests else None
            return DataQuorumLostError(
                f"{state.ctx.path}: write acknowledged on 1 of "
                f"{data_quorum} required failure domains (shared-BB "
                f"mirror failed: {exc})",
                acked=1, needed=data_quorum, fid=session.fid,
                rank=first.rank if first else None,
                offset=first.offset if first else None,
                length=first.length if first else None)

        if dq_bytes > 0:
            # The synchronous quorum copy rides the ack: the collective
            # completes only when the slowest of the primary placement
            # and the BB mirror lands (bounded retry/backoff via
            # timed_io, like every other resilience-path flow).
            bb = machine.burst_buffer
            assert bb is not None
            streams = max(1, dq_ranks)
            cap = min(bb.client_write_cap(comm.procs_per_node),
                      net.injection_cap(comm.procs_per_node))
            try:
                flows.append(system.timed_io(
                    lambda: bb.write(dq_bytes / streams, streams=streams,
                                     shared_file=False, per_stream_cap=cap,
                                     tag="uv-write-quorum"),
                    "data-quorum"))
            except TransientIOError as exc:
                # Retries disabled: the device raised synchronously at
                # submission rather than inside the flow.
                raise quorum_lost(exc) from exc
        if inserts_per_server:
            busiest = max(inserts_per_server.values())
            flows.append(self.engine.timeout(
                net.rpc_cost(busiest, serialized=True)))
        if flows:
            try:
                yield self.engine.all_of(flows)
            except TransientIOError as exc:
                if dq_bytes <= 0:
                    raise
                raise quorum_lost(exc) from exc
        if dq_bytes > 0:
            system.count("data-quorum-ack", dq_ranks)
        self.telemetry.record(app=comm.name, op="write", path=state.ctx.path,
                              t_start=t0, nbytes=total, driver=self.name)

    def _ship_pending(self, session: FileSession,
                      pending: List[MetadataRecord]) -> None:
        """Ship the op's accumulated records: coalesce contiguous
        neighbours, one aggregated insert per touched server (one journal
        batch per range), write-through into the location cache."""
        if not pending:
            return
        records, merges = coalesce_records(pending)
        self.system.metadata.insert_many(records)
        cache = self.system.location_cache
        if cache is not None:
            cache.insert_records(records)
        telemetry = self.telemetry
        telemetry.incr("meta-batch")
        if merges:
            telemetry.incr("meta-coalesce", merges)

    def _free_overwritten(self, session: FileSession, req: IORequest) -> None:
        """Release log space for data this write supersedes (free-chunk
        stack reuse, §II-B1).

        The location cache answers for tracked files — the same servers
        are still charged (``read_servers_for`` reproduces the lookup's
        per-range contacts, failover telemetry and unavailability
        errors), only the store search is skipped.  Old records found
        here are this write's overwrite victims: the write-through
        supersede invalidates their cache entries.
        """
        metadata = self.system.metadata
        cache = self.system.location_cache
        old = None
        if cache is not None:
            old = cache.lookup(session.fid, req.offset, req.length)
        if old is not None:
            metadata.read_servers_for(session.fid, req.offset, req.length)
            self.telemetry.incr("cache-hit")
            if old:
                self.telemetry.incr("cache-invalidate")
        else:
            if cache is not None:
                self.telemetry.incr("cache-miss")
            old, _servers = metadata.lookup(session.fid, req.offset,
                                            req.length)
        for rec in old:
            writer = session.writers.get(rec.proc_id)
            if writer is None:
                continue
            layer, addr = writer.vas.resolve(rec.va)
            writer.logs[layer].free_segment(addr, rec.length)

    def read_at_all(self, state: _OpenFile, requests: List[IORequest]
                    ) -> Generator:
        t0 = self.engine.now
        comm = state.ctx.comm
        if not state.session.writers:
            # Nothing cached in this job: the file (if it exists at all)
            # is a previous job's flushed copy on the PFS — node-local and
            # BB contents are job-scoped (§I), Lustre persists.
            results = yield from self._read_from_pfs(state, requests, t0)
            return results
        results, breakdown = yield from self.system.read_service.read_collective(
            state.session, comm, requests, comm.name)
        cached_bytes = breakdown.total_bytes - breakdown.pfs_bytes
        if cached_bytes > 0:
            # Feed the placement advisor: this stream earns its cache slot.
            self.system.advisor.note_cache_read(state.ctx.path, cached_bytes)
        self.telemetry.record(app=comm.name, op="read", path=state.ctx.path,
                              t_start=t0, nbytes=breakdown.total_bytes,
                              driver=self.name)
        return results

    def _read_from_pfs(self, state: _OpenFile, requests: List[IORequest],
                       t0: float) -> Generator:
        """Serve a read entirely from the persistent PFS copy."""
        ctx = state.ctx
        machine = self.machine
        pfs_file = machine.pfs_files.open(ctx.path)  # FileNotFoundError ok
        results = {}
        total = 0.0
        readers = 0
        for req in requests:
            results[req.rank] = pfs_file.read_at(req.offset, req.length)
            if req.length > 0:
                total += req.length
                readers += 1
        if readers:
            net = machine.network
            lustre = machine.lustre
            cap = min(net.injection_cap(ctx.comm.procs_per_node),
                      lustre.spec.client_node_bandwidth
                      / ctx.comm.procs_per_node)
            yield lustre.read_shared_file(total / readers, readers=readers,
                                          per_stream_cap=cap,
                                          tag=f"uv-read-pfs:{ctx.path}")
        self.telemetry.record(app=ctx.comm.name, op="read", path=ctx.path,
                              t_start=t0, nbytes=total,
                              driver=self.name)
        return results

    def close(self, state: _OpenFile) -> Generator:
        t0 = self.engine.now
        ctx = state.ctx
        yield from self._metadata_op(ctx)
        wrote = ctx.mode in ("w", "rw") and state.session.bytes_written > 0
        if wrote and self.system.config.flush_enabled:
            # Asynchronous server-side flush: close returns immediately,
            # the servers move data to the PFS in the background (§II-A).
            self.system.flush_service.start_flush(
                state.session, telemetry=self.telemetry, app=ctx.comm.name)
        if wrote and self.system.config.resilience_enabled:
            # Replicate volatile segments to the shared tier (§V work).
            self.system.resilience.start_replication(state.session)
        if wrote:
            self.system.advisor.note_write_close(ctx.path,
                                                 state.bytes_written)
        if state.lock_kind == "write":
            self.system.workflow.release_write(ctx.path)
            yield self.engine.timeout(self.machine.spec.lustre.latency)
        elif state.lock_kind == "read":
            self.system.workflow.release_read(ctx.path)
            yield self.engine.timeout(self.machine.spec.lustre.latency)
        self.telemetry.record(app=ctx.comm.name, op="close", path=ctx.path,
                              t_start=t0, driver=self.name)

    def sync(self, state: _OpenFile) -> Generator:
        yield from self.system.flush_service.wait(state.session)
        if self.system.config.resilience_enabled:
            yield from self.system.resilience.wait(state.session)
        if self.system.scrub is not None:
            yield from self.system.scrub.wait()
