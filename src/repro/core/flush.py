"""Server-side asynchronous flush (§II-A, §II-D).

Triggered by the client's ``MPI_File_close``: the servers collectively
move the cached data to the PFS while the application continues computing.
Each server flushes one contiguous range of the logical file; the range →
OST mapping comes from :mod:`repro.core.striping` (ADPT when enabled).

Two §II-C behaviours ride along: ``begin_flush``/``end_flush`` drive the
Fig. 4d client migration, and the servers' flush goodput is scaled by
their CPU availability under the active placement policy.

The cached copy is *not* discarded after the flush — it keeps serving
reads (the workflow experiments read BD-CATS input straight from DRAM/BB
after VPIC's data was flushed); the PFS copy provides the long-term
persistence that node-local and burst-buffer space cannot (§I).
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.core.config import StorageTier
from repro.core.striping import adaptive_plan, default_plan
from repro.sim.engine import Event
from repro.storage.device import TransientIOError

__all__ = ["FlushService"]


class FlushService:
    """Runs flushes as background engine processes."""

    def __init__(self, system):
        # ``system`` is a UniviStorServers (typed loosely: import cycle).
        self.system = system
        self.machine = system.machine
        self.engine = system.engine

    # -- public API -----------------------------------------------------------
    def start_flush(self, session, telemetry=None, app: str = "") -> Event:
        """Kick off an asynchronous flush; returns its completion event.

        Idempotent per close: bytes already flushed are not re-sent (each
        VPIC time step closes its own file once, but re-closing a file
        only flushes what arrived since the previous flush).
        """
        pending = self._pending_bytes(session)
        if pending <= 0:
            ev = self.engine.event(name="flush-noop")
            ev.succeed(0.0)
            session.flush_event = ev
            return ev
        proc = self.engine.process(
            self._flush_process(session, pending, telemetry, app),
            name=f"flush:{session.path}", shard=session.fid)
        session.flush_event = proc
        return proc

    def wait(self, session) -> Generator:
        """Block until the session's outstanding flush (if any) finishes."""
        if session.flush_event is not None and not session.flush_event.processed:
            yield session.flush_event

    # -- internals --------------------------------------------------------------
    def _pending_bytes(self, session) -> float:
        # Cumulative cache writes, not live bytes: an overwrite leaves the
        # live count unchanged but still needs re-flushing (the PFS copy
        # would otherwise go stale — caught by the stateful model test).
        return max(0.0, session.cached_bytes_written - session.flushed_bytes)

    def _flush_process(self, session, pending: float, telemetry,
                       app: str) -> Generator:
        system = self.system
        machine = self.machine
        config = system.config
        sched = system.scheduler
        t_start = self.engine.now

        if config.workflow_enabled:
            system.workflow.begin_flush(session.path)
        sched.begin_flush()
        try:
            servers = system.alive_servers
            plan_fn = adaptive_plan if config.adaptive_striping else default_plan
            plan = plan_fn(pending, servers, machine.spec.lustre)
            cpu_eff = sched.mean_flush_efficiency()
            injection_cap = machine.network.injection_cap(
                config.servers_per_node)

            flows = []
            # Write side: servers -> Lustre with the planned layout.
            # ADPT's per-server ranges are disjoint and lock-aligned; the
            # default plan still writes one shared file from many servers.
            shared_writers = 0 if config.adaptive_striping else servers
            flows.append(system.timed_io(
                lambda: machine.lustre.write_with_layout(
                    plan.bytes_per_server, plan.layout,
                    per_stream_cap=injection_cap,
                    efficiency=cpu_eff,
                    shared_file_writers=shared_writers,
                    tag=f"flush-write:{session.path}"),
                f"flush-write:{session.path}"))

            # Read side: drain the cached tiers in parallel (pipelined
            # with the write; completion is the max of the two).
            cached = session.cached_bytes_per_tier()
            source_bytes = {tier: nbytes for tier, nbytes in cached.items()
                            if tier is not StorageTier.PFS}
            total_src = sum(source_bytes.values())
            for tier, nbytes in source_bytes.items():
                share = pending * (nbytes / total_src)
                if share <= 0:
                    continue
                if tier is StorageTier.SHARED_BB:
                    bb = machine.burst_buffer
                    flows.append(system.timed_io(
                        lambda bb=bb, share=share: bb.read(
                            share / servers, streams=servers,
                            per_stream_cap=bb.flush_cap(
                                config.servers_per_node),
                            efficiency=cpu_eff,
                            tag=f"flush-read-bb:{session.path}"),
                        f"flush-read-bb:{session.path}"))
                else:
                    # Node-local tiers: spread over the nodes holding data.
                    # A failed node's copy is gone — nothing to read there.
                    per_node = self._per_node_cached(session, tier)
                    for node_id, node_bytes in per_node.items():
                        if node_id in system.failed_nodes:
                            continue
                        node = machine.nodes[node_id]
                        device = system.tier_device(tier, node)
                        streams = config.servers_per_node
                        pending_here = node_bytes * (pending / total_src)
                        flows.append(system.timed_io(
                            lambda device=device,
                            pending_here=pending_here,
                            streams=streams, tier=tier: device.read(
                                pending_here / streams, streams=streams,
                                tag=f"flush-read-{tier.value}:"
                                    f"{session.path}"),
                            f"flush-read-{tier.value}:{session.path}"))
            try:
                yield self.engine.all_of(flows)
            except TransientIOError:
                # Retry budget exhausted (device brownout outlived the
                # backoff).  Without recovery the failure propagates (the
                # PR 1 fail-loud contract); self-healing mode treats the
                # flush as simply not having happened: leave the flushed
                # counter alone so the next trigger re-sends, and report
                # — an unhandled raise in an unobserved background
                # process would crash the engine.
                if not config.recovery_enabled:
                    raise
                system.telemetry_hook("flush-failed", session.path, pending,
                                      t_start=t_start)
                return 0.0

            # Functionally materialise the logical file on the PFS.
            self._materialise_to_pfs(session)
            session.flushed_bytes += pending
            # Flush-driven migration invalidation: the flush moved data
            # across layers, so the client-side location cache drops the
            # file rather than trust its cached layer placement.
            cache = system.location_cache
            if cache is not None and cache.invalidate_file(session.fid):
                system.count("cache-invalidate")
        finally:
            sched.end_flush()
            if config.workflow_enabled:
                system.workflow.end_flush(session.path)
        if telemetry is not None:
            telemetry.record(app=app, op="flush", path=session.path,
                             t_start=t_start, nbytes=pending,
                             driver="univistor")
        return pending

    def _per_node_cached(self, session, tier: StorageTier) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for rank, writer in session.writers.items():
            node = session.node_of_proc(rank)
            for log in writer.logs:
                if log.tier is tier and log.bytes_live > 0:
                    out[node.node_id] = out.get(node.node_id, 0.0) + log.bytes_live
        return out

    def _materialise_to_pfs(self, session) -> None:
        """Copy the logical file content onto the PFS namespace.

        Records whose only copy died with a node cannot be materialised:
        the flush skips them (the PFS copy gets an honest hole there) and
        surfaces the loss through telemetry instead of crashing the
        background flush process.
        """
        from repro.core.resilience import DataLossError
        system = self.system
        pfs = self.machine.pfs_files
        out = pfs.create(session.path)
        read_service = system.read_service
        lost_bytes = 0.0
        for record in system.metadata.records_of(session.fid):
            try:
                extents = read_service.resolve(session, record)
            except DataLossError:
                lost_bytes += record.length
                continue
            for extent in extents:
                out.write_at(extent.offset, extent.length, extent.payload,
                             extent.payload_offset)
            # The PFS copy now reflects the authority over this record's
            # span (version-ordered degraded reads, docs/MODEL.md §12).
            # Skipped (lost) records keep their old stamp, so the read
            # ladder knows the hole — the flushed-bytes counter alone
            # cannot say which spans actually materialised.
            session.pfs_versions.copy_from(session.data_versions,
                                           record.offset, record.length)
        if lost_bytes > 0:
            system.telemetry_hook("flush-lost", session.path, lost_bytes)
