"""UniviStor configuration: feature flags and tier selection."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.units import MiB

__all__ = ["StorageTier", "UniviStorConfig"]


class StorageTier(enum.Enum):
    """The storage layers of Fig. 1, fastest first."""

    DRAM = "dram"
    LOCAL_SSD = "local_ssd"
    SHARED_BB = "shared_bb"
    PFS = "pfs"

    # ``is_node_local`` is consulted per metadata record on the read hot
    # path; a plain member attribute (filled in below) beats recomputing
    # tuple membership on every access.
    @property
    def is_node_local(self) -> bool:
        return self._node_local

    @property
    def is_shared(self) -> bool:
        return not self._node_local


for _tier in StorageTier:
    _tier._node_local = _tier in (StorageTier.DRAM, StorageTier.LOCAL_SSD)
del _tier


@dataclass(frozen=True, kw_only=True)
class UniviStorConfig:
    """Everything a UniviStor deployment can toggle.

    The four optimisation flags map 1:1 onto the paper's evaluation
    variants: ``interference_aware`` (IA), ``collective_open_close`` (COC),
    ``adaptive_striping`` (ADPT) and ``location_aware_reads``;
    ``workflow_enabled`` is the ``ENABLE_WORKFLOW`` environment variable of
    §II-E, and ``cache_tiers`` selects the UniviStor/DRAM vs UniviStor/BB
    vs UniviStor/(DRAM+BB) configurations of §III.

    All fields are **keyword-only**: flag sets read unambiguously at call
    sites and new fields can be inserted in section order without
    breaking positional callers.
    """

    #: Caching tiers in spill order (fastest first).  The PFS is always the
    #: final destination and is not listed here.
    cache_tiers: Tuple[StorageTier, ...] = (StorageTier.DRAM,
                                            StorageTier.SHARED_BB)
    servers_per_node: int = 2  # the evaluation places 2 per node (§III-A)
    interference_aware: bool = True
    collective_open_close: bool = True
    adaptive_striping: bool = True
    location_aware_reads: bool = True
    workflow_enabled: bool = False
    #: Flush cached data to the PFS at close time (§II-A; applications
    #: without persistence needs may disable it).
    flush_enabled: bool = True
    #: Log chunk size (§II-B1's "set of data chunks").
    chunk_size: float = 8 * MiB
    #: Metadata range width for the distributed KV partitioning (§II-B3).
    metadata_range_size: float = 64 * MiB
    #: Cap on a single process's DRAM log (None -> the c/p rule of §II-B1).
    dram_log_capacity: Optional[float] = None
    #: Cap on a single process's shared-BB log (None -> c/p rule).
    bb_log_capacity: Optional[float] = None
    #: Honour per-program shared-BB reservations
    #: (:meth:`UniviStorServers.set_bb_quota`): the workload engine's
    #: storage scheduler grants each job a byte budget and the c/p rule
    #: divides the grant, not the whole device.  Off, grants are recorded
    #: but ignored — the ablation that isolates admission-timing effects
    #: from capacity effects.
    bb_quota_enforced: bool = True
    #: §V future work — replicate volatile (node-local) cached data to the
    #: shared burst buffer asynchronously at close, so a node failure
    #: before the flush completes loses nothing.
    resilience_enabled: bool = False
    #: Copies of each metadata offset-range, on distinct servers (a stride
    #: of ``servers_per_node`` keeps replicas off the primary's node).
    #: 1 = the paper's unreplicated KV: a server crash loses its ranges.
    metadata_replication: int = 1
    #: Data-plane write durability (docs/MODEL.md §12): a write is
    #: acknowledged only after ``data_quorum`` copies of each segment are
    #: durable on distinct failure domains.  1 (the default) keeps the
    #: legacy async-at-close replication path bit-identical; 2 adds a
    #: synchronous copy of every node-local segment to the shared burst
    #: buffer at write time (bounded retry/backoff via the ``io_*``
    #: knobs; exhaustion raises a structured
    #: :class:`~repro.core.errors.DataQuorumLostError`).  Segments the
    #: DHP already placed on the shared BB/PFS tiers live off-node and
    #: satisfy the quorum as-is.  Requires ``resilience_enabled``.
    data_quorum: int = 1
    #: Majority-quorum metadata (CAP-complete failure model): writes need
    #: acks from a majority of a range's replica set (reachable, alive and
    #: current), reads refuse to serve from a lagging or fenced copy, and
    #: a missed quorum raises a structured
    #: :class:`~repro.core.errors.QuorumLostError` instead of applying a
    #: write the minority side could later contradict.  Off (the default)
    #: keeps the any-replica-alive semantics of PR 1.
    meta_quorum: bool = False
    #: Lease duration for range ownership, in seconds.  Owners renew their
    #: lease via heartbeat; a partitioned ex-owner's lease expires
    #: ``lease_ttl`` after its last beat, after which the survivor side
    #: may safely take its ranges over (the expired lease *fences* the
    #: ex-owner: stale-epoch reads and writes are rejected, so a healed
    #: partition cannot resurrect stale data).
    lease_ttl: float = 0.3
    #: Bounded retry for tier I/O on the flush/read/replication paths:
    #: how many re-attempts a transient failure gets (0 = fail fast).
    io_retry_limit: int = 0
    #: First backoff delay in seconds; doubles per attempt.
    io_backoff_base: float = 0.05
    #: Per-operation deadline in seconds for retried tier I/O (None = no
    #: deadline; a miss counts as a transient failure and is retried).
    io_timeout: Optional[float] = None
    #: §V future work — adapt each new file's caching tiers to observed
    #: usage patterns (write-once files skip the scarce DRAM tier).
    adaptive_placement: bool = False
    #: Heartbeat-based failure detection: server processes gossip
    #: heartbeats every ``heartbeat_interval`` seconds; a target that
    #: misses ``suspect_heartbeats`` consecutive beats is marked suspect,
    #: one that misses ``dead_heartbeats`` is declared dead and the
    #: recovery actions fire.  Off (the default) keeps the PR 1 behaviour:
    #: recovery triggers ride directly on the crash event.
    health_enabled: bool = False
    heartbeat_interval: float = 0.05
    suspect_heartbeats: int = 2
    dead_heartbeats: int = 4
    #: Metadata range takeover: when a server is declared dead, every
    #: offset range that lost a copy with it is reassigned to surviving
    #: servers and rebuilt by replaying the per-server write-ahead
    #: journal, so lookups route to the new owner instead of failing over
    #: per-read forever (and a range whose whole replica set died can
    #: come back at all).
    recovery_enabled: bool = False
    #: Integrity scrubbing: background passes checksum-verify cached log
    #: chunks and replica files, repair rot from the surviving clean
    #: copy, and re-replicate volatile segments that lost their replica.
    scrub_enabled: bool = False
    #: Proactive scrub cadence in seconds: with a positive interval,
    #: :meth:`ScrubService.start_periodic` repeats passes every
    #: ``scrub_interval`` until a full sweep comes back clean.  Ticks that
    #: land while foreground I/O (flush/replication) is in flight are
    #: deferred to the next tick (telemetry counter ``scrub-deferred``).
    #: 0 keeps scrubbing purely event-driven (crash/explicit only).
    scrub_interval: float = 0.0
    #: Per-pass byte budget for periodic scrubbing (0 = unlimited): a
    #: pass stops verifying once it has scanned this much and resumes
    #: from its session cursor on the next tick, bounding the background
    #: bandwidth one tick may consume.
    scrub_rate_limit: float = 0.0
    #: Metadata fast path (docs/MODEL.md §9) — batched, coalescing
    #: metadata inserts: one aggregated insert per server per collective
    #: write, with contiguous records merged before the journal append.
    #: Timing-neutral (the per-request server accounting is preserved);
    #: off reverts to one insert round per request.
    meta_batch: bool = True
    #: Client-side (fid, offset-range) -> (ProcID, VA) location cache:
    #: reads on tracked files resolve placement locally and skip the
    #: server-side store search.  Timing-neutral (the same metadata RPCs
    #: are charged); invalidated on overwrite, flush, delete and
    #: recovery takeover.
    location_cache: bool = True
    #: Journal checkpointing: fold a metadata range's write-ahead journal
    #: into a compacted checkpoint once it reaches this many entries and
    #: every replica is alive to acknowledge, truncating the journal so
    #: takeover replay cost stops growing with session lifetime.
    #: 0 disables truncation (the journal grows unboundedly).
    journal_checkpoint: int = 0
    #: Adaptive hotspot mitigation (docs/MODEL.md §11): a background
    #: manager rolls per-range metadata activity into online range
    #: splits/merges, read-hot re-replication, and elastic pool
    #: grow/shrink.  Off (the default) keeps the static round-robin
    #: assignment bit-identical.
    hotspot_enabled: bool = False
    #: Per-interval operation count above which a range is hot: a
    #: write-hot range splits, a read-hot one re-replicates.
    range_split_threshold: int = 32
    #: Per-interval operation count below which a *split* range is cold;
    #: two consecutive cold intervals merge it back (and idle grown
    #: servers retire).  Must stay below the split threshold.
    range_merge_threshold: int = 4
    #: Seconds between hotspot-manager decision ticks.
    hotspot_interval: float = 0.05
    #: Ceiling on the elastic metadata pool (0 = never grow): the manager
    #: adds servers only while a hot range has exhausted the pool's
    #: fan-out and the pool is below this size.
    pool_max_servers: int = 0
    #: Event-engine shard count (docs/MODEL.md §13).  1 (the default) is
    #: the legacy single-queue kernel; N > 1 routes events to per-key
    #: queues (node-local processes share a shard) merged in a global
    #: deterministic ``(time, seq)`` order, so any value is bit-identical
    #: to 1 — purely a queue-locality/performance knob.
    engine_shards: int = 1
    #: Calendar-queue bucket width (simulated seconds) for each engine
    #: shard kernel; 0 (the default) selects the binary heap.  Like
    #: ``engine_shards``, dispatch order is identical for any width.
    engine_bucket_width: float = 0.0

    @staticmethod
    def hardened(**kw) -> "UniviStorConfig":
        """Every self-healing mechanism on: the configuration the chaos
        campaign drives (detection + takeover + scrubbing + replication
        + bounded retry)."""
        kw.setdefault("resilience_enabled", True)
        kw.setdefault("metadata_replication", 2)
        kw.setdefault("io_retry_limit", 6)
        kw.setdefault("io_backoff_base", 0.02)
        kw.setdefault("health_enabled", True)
        kw.setdefault("recovery_enabled", True)
        kw.setdefault("scrub_enabled", True)
        kw.setdefault("meta_quorum", True)
        return UniviStorConfig(**kw)

    def __post_init__(self):
        if self.servers_per_node < 1:
            raise ValueError("servers_per_node must be >= 1")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.metadata_range_size <= 0:
            raise ValueError("metadata_range_size must be positive")
        if self.metadata_replication < 1:
            raise ValueError("metadata_replication must be >= 1")
        if self.data_quorum not in (1, 2):
            raise ValueError("data_quorum must be 1 or 2 (the model has "
                             "node-local + shared failure domains)")
        if self.data_quorum >= 2 and not self.resilience_enabled:
            raise ValueError("data_quorum >= 2 requires resilience_enabled "
                             "(the synchronous copy lands in the "
                             "resilience replica log)")
        if self.io_retry_limit < 0:
            raise ValueError("io_retry_limit must be >= 0")
        if self.io_backoff_base <= 0:
            raise ValueError("io_backoff_base must be positive")
        if self.io_timeout is not None and self.io_timeout <= 0:
            raise ValueError("io_timeout must be positive (or None)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.suspect_heartbeats < 1:
            raise ValueError("suspect_heartbeats must be >= 1")
        if self.dead_heartbeats < self.suspect_heartbeats:
            raise ValueError("dead_heartbeats must be >= suspect_heartbeats")
        if self.journal_checkpoint < 0:
            raise ValueError("journal_checkpoint must be >= 0")
        if self.range_split_threshold < 1:
            raise ValueError("range_split_threshold must be >= 1")
        if self.range_merge_threshold < 0:
            raise ValueError("range_merge_threshold must be >= 0")
        if self.range_merge_threshold >= self.range_split_threshold:
            raise ValueError("range_merge_threshold must be below "
                             "range_split_threshold")
        if self.hotspot_interval <= 0:
            raise ValueError("hotspot_interval must be positive")
        if self.pool_max_servers < 0:
            raise ValueError("pool_max_servers must be >= 0")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.scrub_interval < 0:
            raise ValueError("scrub_interval must be >= 0")
        if self.scrub_rate_limit < 0:
            raise ValueError("scrub_rate_limit must be >= 0")
        if self.engine_shards < 1:
            raise ValueError("engine_shards must be >= 1")
        if self.engine_bucket_width < 0:
            raise ValueError("engine_bucket_width must be >= 0")
        if StorageTier.PFS in self.cache_tiers:
            raise ValueError("PFS is the implicit destination tier; "
                             "do not list it in cache_tiers")
        if len(set(self.cache_tiers)) != len(self.cache_tiers):
            raise ValueError("duplicate cache tiers")

    # -- canned configurations (the paper's variants) ----------------------
    @staticmethod
    def dram_only(**kw) -> "UniviStorConfig":
        """UniviStor/DRAM of §III: cache in distributed DRAM only."""
        return UniviStorConfig(cache_tiers=(StorageTier.DRAM,), **kw)

    @staticmethod
    def bb_only(**kw) -> "UniviStorConfig":
        """UniviStor/BB of §III: cache in the shared burst buffer only."""
        return UniviStorConfig(cache_tiers=(StorageTier.SHARED_BB,), **kw)

    @staticmethod
    def dram_bb(**kw) -> "UniviStorConfig":
        """UniviStor/(DRAM+BB): the full hierarchy of Figs. 8/10."""
        return UniviStorConfig(cache_tiers=(StorageTier.DRAM,
                                            StorageTier.SHARED_BB), **kw)

    @staticmethod
    def pfs_only(**kw) -> "UniviStorConfig":
        """UniviStor/(Disk): no caching tier, write through to the PFS."""
        return UniviStorConfig(cache_tiers=(), **kw)

    @staticmethod
    def full_hierarchy(**kw) -> "UniviStorConfig":
        """All four layers of Fig. 1: DRAM -> node-local SSD -> shared BB
        (-> PFS).  Needs a machine with node-local SSDs, e.g.
        :meth:`MachineSpec.summit_like`."""
        return UniviStorConfig(cache_tiers=(StorageTier.DRAM,
                                            StorageTier.LOCAL_SSD,
                                            StorageTier.SHARED_BB), **kw)

    def without(self, *flags: str) -> "UniviStorConfig":
        """Disable optimisation flags by name (for ablation variants)."""
        valid = {"interference_aware", "collective_open_close",
                 "adaptive_striping", "location_aware_reads",
                 "workflow_enabled", "flush_enabled",
                 "resilience_enabled", "adaptive_placement",
                 "health_enabled", "recovery_enabled", "scrub_enabled",
                 "meta_batch", "location_cache", "meta_quorum",
                 "bb_quota_enforced", "hotspot_enabled"}
        changes = {}
        for flag in flags:
            if flag not in valid:
                raise ValueError(f"unknown flag {flag!r}; valid: {sorted(valid)}")
            changes[flag] = False
        return replace(self, **changes)
