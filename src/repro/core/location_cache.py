"""Client-side location cache (metadata fast path, docs/MODEL.md §9).

The paper's local-metadata shortcut: a per-client map of ``(FID, offset
range) -> (ProcID, VA)`` that lets reads (and the overwrite-free pass of
writes) resolve placement without searching the authoritative KV stores.
A cache hit skips the server-side store bisect entirely; the *simulated*
cost is unchanged — the client still charges the same per-range metadata
RPCs (``MetadataService.read_servers_for`` contacts the identical
servers, fires the identical failover telemetry, and raises the
identical unavailability errors), so the fast path is observation- and
timing-neutral by construction.

Coherence model — the cache only answers for files it has **tracked
since creation** (``begin_file`` at session creation, before any record
exists), and every accepted insert is written through with the same
``apply_insert`` algorithm the authoritative stores run.  A tracked
file's cache is therefore a byte-identical mirror, holes included, so a
miss *inside* a tracked file is authoritative ("unwritten bytes") rather
than a cache artifact.  Anything that could break the mirror drops the
file (or the whole cache) instead of patching it:

* **overwrite** — the write-through supersede trims overlapped entries
  exactly like the stores; a failed (partially applied) insert batch
  drops the file outright;
* **flush-driven layer migration** — flush completion drops the file
  (the cached VAs' layer association is no longer authoritative);
* **delete** — ``delete_file`` drops the file;
* **recovery takeover** — a metadata range takeover clears the whole
  cache (replica sets were rewritten under the client).

A dropped file is never re-tracked mid-life (records the client did not
see would be missing); it re-enters the cache only when the path is
recreated from scratch.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

from repro.core.metadata import MetadataRecord, apply_insert, split_record

__all__ = ["LocationCache"]


class LocationCache:
    """Per-client (fid, offset-range) -> (ProcID, VA) record cache."""

    def __init__(self, range_size: float, compaction: bool = True):
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        self.range_size = float(range_size)
        #: Mirror of the authoritative store's compaction setting — both
        #: sides must merge identically for the mirror to stay exact.
        self.compaction = compaction
        # fid -> (sorted start offsets, records); same shape as one
        # authoritative store, but holding every range of the file.
        self._files: Dict[int, Tuple[List[int], List[MetadataRecord]]] = {}
        self._tracked: Set[int] = set()
        #: Host-side statistics (mirrored into Telemetry.counters by the
        #: call sites that can reach a telemetry sink).
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- lifecycle ---------------------------------------------------------
    def begin_file(self, fid: int) -> None:
        """Start tracking a file.  Must be called before any record of
        ``fid`` exists (session creation): the empty cache is then a
        complete mirror and stays one via write-through."""
        if fid not in self._tracked:
            self._tracked.add(fid)
            self._files[fid] = ([], [])

    def invalidate_file(self, fid: int) -> bool:
        """Drop one file from the cache; returns True if it was tracked."""
        self._files.pop(fid, None)
        if fid in self._tracked:
            self._tracked.discard(fid)
            self.invalidations += 1
            return True
        return False

    def clear(self) -> int:
        """Drop everything (recovery takeover); returns files dropped."""
        dropped = len(self._tracked)
        self._files.clear()
        self._tracked.clear()
        self.invalidations += dropped
        return dropped

    def tracks(self, fid: int) -> bool:
        return fid in self._tracked

    def record_count(self, fid: int) -> int:
        entry = self._files.get(fid)
        return len(entry[1]) if entry else 0

    # -- write-through -----------------------------------------------------
    def insert_records(self, records: List[MetadataRecord]) -> None:
        """Mirror an accepted insert batch.  Untracked fids are ignored —
        a partial mirror would be exactly the stale cache this class
        exists to prevent."""
        files = self._files
        range_size = self.range_size
        compaction = self.compaction
        for record in records:
            store = files.get(record.fid)
            if store is None:
                continue
            wrapped = {record.fid: store}
            for piece in split_record(record, range_size):
                apply_insert(wrapped, piece, range_size, compaction)

    # -- lookup ------------------------------------------------------------
    def lookup(self, fid: int, offset: int,
               length: int) -> Optional[List[MetadataRecord]]:
        """Records overlapping [offset, offset+length), clipped to it —
        identical to ``MetadataService.lookup``'s record list — or
        ``None`` when the file is not tracked (cache miss: consult the
        authoritative store).  An empty list on a tracked file is an
        authoritative hole, not a miss."""
        if length <= 0:
            # Degenerate request: nothing is resolved and no store search
            # is avoided, so it must not count as a hit or a miss —
            # counting before this validation inflated hit telemetry.
            return [] if fid in self._tracked else None
        if fid not in self._tracked:
            self.misses += 1
            return None
        self.hits += 1
        starts, recs = self._files[fid]
        end = offset + length
        lo = bisect.bisect_left(starts, offset)
        if lo > 0 and recs[lo - 1].end > offset:
            lo -= 1
        hi = bisect.bisect_left(starts, end, lo)
        found: List[MetadataRecord] = []
        for i in range(lo, hi):
            rec = recs[i]
            rec_end = rec.offset + rec.length
            if rec_end <= offset:
                continue
            if rec.offset >= offset and rec_end <= end:
                # Fully covered: share the frozen record, like the
                # authoritative lookup does.
                found.append(rec)
            else:
                found.append(rec.slice(max(rec.offset, offset),
                                       min(rec_end, end)))
        return found
