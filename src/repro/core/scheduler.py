"""Interference-aware resource scheduling service (§II-C).

Thin orchestration over :mod:`repro.cluster.cpu`: selects the placement
policy from the configuration, answers per-node efficiency queries for the
data path, and drives the Fig. 4d flush migration (park borrowed client
processes back on client cores while servers flush, restore afterwards).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.cpu import PlacementPolicy, cpu_availability
from repro.cluster.node import ComputeNode
from repro.cluster.topology import Machine
from repro.core.config import UniviStorConfig

__all__ = ["SchedulerService"]

#: How bandwidth-bound each operation kind is (exponent fed to the
#: placement-efficiency model).  Writes into mmap'd DRAM logs are pure
#: memory bandwidth; reads also wait on metadata/network so scheduling
#: hurts them less (the paper's IA read gains are smaller than write
#: gains: 1.25x vs 1.9x average).
_SENSITIVITY = {
    "write": 1.0,
    "read": 0.45,
}


class SchedulerService:
    """Policy selection + efficiency queries + flush migration."""

    def __init__(self, machine: Machine, config: UniviStorConfig,
                 server_program: str):
        self.machine = machine
        self.config = config
        self.server_program = server_program
        self.policy = (PlacementPolicy.INTERFERENCE_AWARE
                       if config.interference_aware
                       else PlacementPolicy.CFS)
        self._flush_depth = 0
        self._cache: Dict[Tuple, float] = {}

    # -- data-path efficiency ------------------------------------------------
    def client_efficiency(self, node: ComputeNode, program: str,
                          op: str) -> float:
        """Throughput factor for ``program``'s collective ``op`` on ``node``.

        UniviStor servers are blocked while clients move data into the
        shared-memory logs, so they count as idle co-runners.
        """
        sensitivity = _SENSITIVITY[op]
        idle = frozenset({self.server_program})
        # The tenancy epoch keys the co-resident program set: multi-job
        # runs register/unregister programs mid-simulation, and a factor
        # cached for one tenancy mix is wrong for the next.
        key = ("client", node.node_id, program, op, node.flush_active,
               self.policy, node.tenancy_epoch)
        cached = self._cache.get(key)
        if cached is None:
            cached = node.efficiency(program, self.policy,
                                     sensitivity=sensitivity,
                                     idle_programs=idle)
            self._cache[key] = cached
        return cached

    def flush_efficiency(self, node: ComputeNode) -> float:
        """CPU-availability factor for this node's flushing servers."""
        key = ("flush", node.node_id, node.flush_active, self.policy,
               tuple(sorted(p.name for p in node.programs())))
        cached = self._cache.get(key)
        if cached is None:
            cached = cpu_availability(
                node.placement(self.policy), self.server_program,
                self.machine.spec.scheduling)
            self._cache[key] = cached
        return cached

    def mean_flush_efficiency(self) -> float:
        """Machine-wide mean server flush factor (flush flows are pooled)."""
        nodes = [n for n in self.machine.nodes
                 if n.procs_of(self.server_program) > 0]
        if not nodes:
            return 1.0
        return sum(self.flush_efficiency(n) for n in nodes) / len(nodes)

    # -- flush migration (Fig. 4d) -------------------------------------------
    def begin_flush(self) -> None:
        """Mark servers busy; under IA this migrates borrowed clients off
        the server cores.  Reference-counted: concurrent flushes nest."""
        self._flush_depth += 1
        if self._flush_depth == 1 and self.config.interference_aware:
            self.machine.set_flush_active(True)
            self._cache.clear()

    def end_flush(self) -> None:
        if self._flush_depth <= 0:
            raise RuntimeError("end_flush without begin_flush")
        self._flush_depth -= 1
        if self._flush_depth == 0 and self.config.interference_aware:
            self.machine.set_flush_active(False)
            self._cache.clear()

    @property
    def flush_active(self) -> bool:
        return self._flush_depth > 0
