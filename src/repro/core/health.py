"""Heartbeat-based failure detection (self-healing extension).

Every UniviStor server process gossips a heartbeat each
``heartbeat_interval`` seconds.  A target that misses
``suspect_heartbeats`` consecutive beats is marked **suspect** (telemetry
only — reads already failing over are simply observed to be doing so); one
that misses ``dead_heartbeats`` is declared **dead** and the registered
recovery actions fire (metadata range takeover, re-replication).

The simulation does not tick a perpetual heartbeat process — that would
keep the event queue non-empty forever and ``engine.run()`` drains to
quiescence.  Since heartbeats only ever *miss* after a crash, the detector
is modelled exactly by two bounded timers armed at crash time:

* suspect at ``crash + heartbeat_interval * suspect_heartbeats``
* dead    at ``crash + heartbeat_interval * dead_heartbeats``

which is byte-identical in observable behaviour to the ticking detector
(the miss counter can only start counting at the crash) and leaves the
queue empty once detection completes.

Compared with PR 1's discover-on-read model — where a crash is only
noticed when a client's lookup happens to touch the dead server — the
detector bounds the window during which every read of an affected range
pays the failover, and it is what triggers recovery for ranges *nobody*
is currently reading.
"""

from __future__ import annotations

from typing import Callable, List, Set, Tuple

__all__ = ["HealthMonitor"]

#: Lifecycle states a monitored target moves through.
ALIVE, SUSPECT, DEAD = "alive", "suspect", "dead"


class HealthMonitor:
    """Tracks node/server liveness and fires recovery callbacks on death.

    ``system`` is the :class:`~repro.core.server.UniviStorServers`
    instance; the monitor uses its engine for the detection timers and its
    telemetry hook for the ``health-suspect`` / ``health-dead`` records.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.engine = system.engine
        config = system.config
        self.suspect_delay = (config.heartbeat_interval
                              * config.suspect_heartbeats)
        self.dead_delay = config.heartbeat_interval * config.dead_heartbeats
        #: Fired as ``fn(node_id)`` / ``fn(server_id)`` when a target is
        #: declared dead.  RecoveryService registers here.
        self.on_node_dead: List[Callable[[int], None]] = []
        self.on_server_dead: List[Callable[[int], None]] = []
        # ("node"|"server", id) -> lifecycle state
        self._states: dict = {}
        self._noted: Set[Tuple[str, int]] = set()

    def state_of(self, kind: str, target: int) -> str:
        """Current lifecycle state of ``("node"|"server", id)``."""
        return self._states.get((kind, target), ALIVE)

    # -- crash notifications (called by UniviStorServers) ------------------
    def note_server_crash(self, server_id: int) -> None:
        """A server process stopped heartbeating: arm the detection timers."""
        self._note("server", server_id)

    def note_node_crash(self, node_id: int) -> None:
        """A whole node stopped heartbeating (its servers are noted
        separately by the crash path)."""
        self._note("node", node_id)

    def _note(self, kind: str, target: int) -> None:
        key = (kind, target)
        if key in self._noted:
            return
        self._noted.add(key)
        self.engine.call_later(self.suspect_delay,
                               lambda _ev: self._mark_suspect(kind, target))
        self.engine.call_later(self.dead_delay,
                               lambda _ev: self._mark_dead(kind, target))

    # -- state transitions -------------------------------------------------
    def _mark_suspect(self, kind: str, target: int) -> None:
        if self._states.get((kind, target)) is not None:
            return
        self._states[(kind, target)] = SUSPECT
        self.system.telemetry_hook("health-suspect", f"{kind}:{target}", 0.0)

    def _mark_dead(self, kind: str, target: int) -> None:
        if self._states.get((kind, target)) == DEAD:
            return
        self._states[(kind, target)] = DEAD
        self.system.telemetry_hook("health-dead", f"{kind}:{target}", 0.0)
        callbacks = (self.on_node_dead if kind == "node"
                     else self.on_server_dead)
        for fn in callbacks:
            fn(target)
