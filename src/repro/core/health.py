"""Heartbeat-based failure detection (self-healing extension).

Every UniviStor server process gossips a heartbeat each
``heartbeat_interval`` seconds.  A target that misses
``suspect_heartbeats`` consecutive beats is marked **suspect** (telemetry
only — reads already failing over are simply observed to be doing so); one
that misses ``dead_heartbeats`` is declared **dead** and the registered
recovery actions fire (metadata range takeover, re-replication).

The simulation does not tick a perpetual heartbeat process — that would
keep the event queue non-empty forever and ``engine.run()`` drains to
quiescence.  Since heartbeats only ever *miss* after a crash, the detector
is modelled exactly by two bounded timers armed at crash time:

* suspect at ``crash + heartbeat_interval * suspect_heartbeats``
* dead    at ``crash + heartbeat_interval * dead_heartbeats``

which is byte-identical in observable behaviour to the ticking detector
(the miss counter can only start counting at the crash) and leaves the
queue empty once detection completes.

Compared with PR 1's discover-on-read model — where a crash is only
noticed when a client's lookup happens to touch the dead server — the
detector bounds the window during which every read of an affected range
pays the failover, and it is what triggers recovery for ranges *nobody*
is currently reading.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

__all__ = ["HealthMonitor"]

#: Lifecycle states a monitored target moves through.  ``FENCED`` is the
#: partition-specific terminal-ish state: the server is believed alive but
#: its ownership lease expired while it was unreachable, so takeover may
#: proceed; a later heal returns it to ``ALIVE`` (its fenced ranges stay
#: fenced in the metadata service until rebuilt).
ALIVE, SUSPECT, DEAD, FENCED = "alive", "suspect", "dead", "fenced"


class HealthMonitor:
    """Tracks node/server liveness and fires recovery callbacks on death.

    ``system`` is the :class:`~repro.core.server.UniviStorServers`
    instance; the monitor uses its engine for the detection timers and its
    telemetry hook for the ``health-suspect`` / ``health-dead`` records.
    """

    def __init__(self, system) -> None:
        self.system = system
        self.engine = system.engine
        config = system.config
        self.suspect_delay = (config.heartbeat_interval
                              * config.suspect_heartbeats)
        self.dead_delay = config.heartbeat_interval * config.dead_heartbeats
        self.lease_ttl = config.lease_ttl
        #: Fired as ``fn(node_id)`` / ``fn(server_id)`` when a target is
        #: declared dead.  RecoveryService registers here.
        self.on_node_dead: List[Callable[[int], None]] = []
        self.on_server_dead: List[Callable[[int], None]] = []
        #: Fired as ``fn(server_id)`` when a partitioned server's lease
        #: expires: still alive, but takeover of its ranges is now safe.
        self.on_server_fenced: List[Callable[[int], None]] = []
        # ("node"|"server", id) -> lifecycle state
        self._states: dict = {}
        self._noted: Set[Tuple[str, int]] = set()
        # Partition tracking: currently-unreachable servers, plus a
        # generation counter per server so a heal logically cancels the
        # pending suspect/fence timers (timers from an old generation
        # no-op when they fire).
        self._partitioned: Set[int] = set()
        self._partition_gen: Dict[int, int] = {}

    def state_of(self, kind: str, target: int) -> str:
        """Current lifecycle state of ``("node"|"server", id)``."""
        return self._states.get((kind, target), ALIVE)

    def is_clean(self, server_id: int) -> bool:
        """True when a server is plain alive — not suspect, dead, fenced,
        or partitioned.  Membership changes (pool grow/shrink, split
        targets) require a clean server: a suspect box must not join or
        leave the pool while its liveness is in doubt."""
        return (self.state_of("server", server_id) == ALIVE
                and server_id not in self._partitioned)

    # -- crash notifications (called by UniviStorServers) ------------------
    def note_server_crash(self, server_id: int) -> None:
        """A server process stopped heartbeating: arm the detection timers."""
        self._note("server", server_id)

    def note_node_crash(self, node_id: int) -> None:
        """A whole node stopped heartbeating (its servers are noted
        separately by the crash path)."""
        self._note("node", node_id)

    def _note(self, kind: str, target: int) -> None:
        key = (kind, target)
        if key in self._noted:
            return
        self._noted.add(key)
        self.engine.call_later(self.suspect_delay,
                               lambda _ev: self._mark_suspect(kind, target))
        self.engine.call_later(self.dead_delay,
                               lambda _ev: self._mark_dead(kind, target))

    # -- partition notifications -------------------------------------------
    def note_server_partition(self, server_id: int) -> None:
        """A live server's heartbeats stopped arriving because the link
        is cut, not because it crashed.

        Partitioned-but-alive is *not* dead: the suspect timer arms as
        usual (the detector cannot tell the difference yet) but no dead
        declaration follows.  Instead the server's ownership **lease** —
        last renewed by its final heartbeat before the cut — expires
        ``lease_ttl`` after the partition starts; only then is it fenced
        and takeover of its ranges sanctioned.  A heal before expiry
        cancels both timers: no premature takeover on a transient cut.
        """
        if server_id in self._partitioned:
            return
        self._partitioned.add(server_id)
        gen = self._partition_gen.get(server_id, 0) + 1
        self._partition_gen[server_id] = gen
        self.engine.call_later(
            self.suspect_delay,
            lambda _ev: self._partition_suspect(server_id, gen))
        self.engine.call_later(
            self.lease_ttl,
            lambda _ev: self._partition_fence(server_id, gen))

    def note_server_heal(self, server_id: int) -> None:
        """The partition around ``server_id`` healed: cancel pending
        suspicion/fencing and return a suspect or fenced server to
        ``ALIVE`` (a dead one stays dead — crashing while partitioned is
        still crashing)."""
        if server_id not in self._partitioned:
            return
        self._partitioned.discard(server_id)
        self._partition_gen[server_id] = (
            self._partition_gen.get(server_id, 0) + 1)
        key = ("server", server_id)
        if self._states.get(key) in (SUSPECT, FENCED):
            del self._states[key]
            self.system.telemetry_hook("health-recovered",
                                       f"server:{server_id}", 0.0)

    def _partition_suspect(self, server_id: int, gen: int) -> None:
        if (self._partition_gen.get(server_id) != gen
                or server_id not in self._partitioned):
            return
        self._mark_suspect("server", server_id)

    def _partition_fence(self, server_id: int, gen: int) -> None:
        if (self._partition_gen.get(server_id) != gen
                or server_id not in self._partitioned):
            return
        key = ("server", server_id)
        if self._states.get(key) == DEAD:
            return  # it crashed while partitioned; death handling won
        self._states[key] = FENCED
        self.system.telemetry_hook("health-fenced",
                                   f"server:{server_id}", 0.0)
        for fn in self.on_server_fenced:
            fn(server_id)

    # -- state transitions -------------------------------------------------
    def _mark_suspect(self, kind: str, target: int) -> None:
        if self._states.get((kind, target)) is not None:
            return
        self._states[(kind, target)] = SUSPECT
        self.system.telemetry_hook("health-suspect", f"{kind}:{target}", 0.0)

    def _mark_dead(self, kind: str, target: int) -> None:
        if self._states.get((kind, target)) == DEAD:
            return
        self._states[(kind, target)] = DEAD
        self.system.telemetry_hook("health-dead", f"{kind}:{target}", 0.0)
        callbacks = (self.on_node_dead if kind == "node"
                     else self.on_server_dead)
        for fn in callbacks:
            fn(target)
