"""UniviStor: the paper's primary contribution.

Subpackage map (paper section in parentheses):

* :mod:`~repro.core.config` — feature flags and tier configuration.
* :mod:`~repro.core.dhp` — distributed & hierarchical data placement:
  per-process log-structured files spilling across tiers (§II-B1).
* :mod:`~repro.core.va` — virtual addressing, Eq. 1 (§II-B2).
* :mod:`~repro.core.metadata` — the distributed KV metadata service
  (§II-B3).
* :mod:`~repro.core.read_service` — location-aware reads (§II-B4).
* :mod:`~repro.core.scheduler` — interference-aware resource scheduling
  glue over :mod:`repro.cluster.cpu` (§II-C).
* :mod:`~repro.core.striping` — adaptive data striping, Eqs. 2–6 (§II-D).
* :mod:`~repro.core.flush` — server-side asynchronous flush (§II-A/§II-D).
* :mod:`~repro.core.workflow` — lightweight workflow management (§II-E).
* :mod:`~repro.core.server` — the UniviStor server program (§II-A).
* :mod:`~repro.core.client` — the UniviStor ADIO driver (§II-F).
"""

from repro.core.config import StorageTier, UniviStorConfig
from repro.core.va import VirtualAddressSpace
from repro.core.dhp import Chunk, DHPWriter, LogFile, PlacedSegment
from repro.core.metadata import (
    MetadataRecord,
    MetadataService,
    MetadataUnavailableError,
)
from repro.core.resilience import DataLossError
from repro.core.retry import IOTimeoutError
from repro.core.striping import StripingPlan, adaptive_plan, default_plan
from repro.core.workflow import FileState, WorkflowManager
from repro.core.server import UniviStorServers
from repro.core.client import UniviStorDriver

__all__ = [
    "Chunk",
    "DHPWriter",
    "DataLossError",
    "FileState",
    "IOTimeoutError",
    "LogFile",
    "MetadataRecord",
    "MetadataService",
    "MetadataUnavailableError",
    "PlacedSegment",
    "StorageTier",
    "StripingPlan",
    "UniviStorConfig",
    "UniviStorDriver",
    "UniviStorServers",
    "VirtualAddressSpace",
    "WorkflowManager",
    "adaptive_plan",
    "default_plan",
]
