"""Distributed metadata service (§II-B3) with optional replication.

One record per placed segment maps ``(FID, logical offset range)`` to
``(ProcID, VA)`` — Fig. 3's ``M1..M16``.  Records are partitioned into
fixed-width **offset ranges** and the ranges are assigned to servers
round-robin, so (a) no single server owns a whole file's metadata (the
scalability argument against the naive centralised map) and (b) a client
can compute the owning server of any offset locally — one RPC per lookup.

Replication (robustness extension): with ``replication >= 2`` every range
is mirrored onto the next ``replication - 1`` servers at ``replica_stride``
steps (a stride of ``servers_per_node`` keeps replicas off the primary's
node, so a node crash never takes a range's whole replica set).  Writes go
to every live replica; a client computes the replica set locally and reads
from the first live member — owner death costs nothing but the failover.
When every replica of a range is dead the range is gone:
:class:`MetadataUnavailableError`.

Recovery (self-healing extension): every accepted insert is also appended
to a **write-ahead journal** on durable shared storage, partitioned by
offset range (each server journals the ranges it owns; the segments
transfer with the range on takeover).  :meth:`recover_server` — driven by
the failure detector through :class:`~repro.core.recovery.RecoveryService`
— reassigns every range that lost a copy with the dead server to surviving
servers and rebuilds the missing copies by replaying the journal, so
lookups route to the new owner instead of failing over per-read forever,
and a range whose *whole* replica set died comes back instead of raising
``MetadataUnavailableError`` until the end of time.

Metadata fast path (perf extension, docs/MODEL.md §9): batched inserts
(:meth:`insert_many` journals per-range batches and applies them grouped
by range), contiguous-record **coalescing** before the journal append,
**merge-on-insert compaction** inside the stores (adjacent contiguous
records of the same writer collapse, bounding the list length every
lookup bisects over), and **journal checkpoint + truncation** (once every
replica of a range is alive to acknowledge, the range's journal folds
into a compacted snapshot, so takeover replay cost stops growing with
session lifetime).  All of it is timing-neutral: the simulated cost
accounting is unchanged, only the simulator's own work shrinks.

Hotspot mitigation (adaptive extension, docs/MODEL.md §11): a base
offset range can be **split online** into contiguous sub-ranges with
independent replica sets (:meth:`split_range` / :meth:`merge_range`), so
a skewed workload's inserts and lookups spread over several servers
instead of serialising on one owner.  The journal, checkpoints, epochs
and the stale/fence table all stay **base-range granular** — a split
range hands state off through exactly the journal-replay machinery a
takeover uses, and fencing a server fences it for every sub-range it
touches (conservative but always safe).  The server pool itself is
**elastic**: :meth:`add_server` pins every data-bearing range's current
assignment before extending the round-robin arithmetic, and
:meth:`remove_server` drains a retiree's memberships through quorum-
checked per-range migrations.  Read-hot ranges can be **re-replicated**
(:meth:`set_read_spread`) with rotating replica selection to cut lookup
fan-out.  When no mitigation state exists every new branch is a falsy
check: routing, cost accounting and digests are bit-identical to the
static assignment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import StorageTier
from repro.core.errors import DataLossError, QuorumLostError

__all__ = ["MetadataRecord", "MetadataService", "MetadataUnavailableError",
           "QuorumLostError", "coalesce_records", "split_record",
           "apply_insert"]


class MetadataUnavailableError(DataLossError):
    """Every replica of a metadata range has failed — its records are gone.

    A :class:`~repro.core.errors.DataLossError` subclass: losing the map
    to the data is losing the data, and the chaos harness's durability
    invariant treats both identically.
    """


def _mergeable(prev: "MetadataRecord", cur: "MetadataRecord") -> bool:
    """True when ``cur`` is the byte-exact continuation of ``prev``.

    Safe to merge only when the merged record resolves to the same bytes
    as the pair: same file, same writing process, same tier (a VA is only
    meaningful within one layer — contiguous VAs can straddle a layer
    boundary when a log fills exactly to capacity), same node, and both
    the logical offsets *and* the virtual addresses are contiguous.
    """
    return (prev.fid == cur.fid
            and prev.proc_id == cur.proc_id
            and prev.tier is cur.tier
            and prev.node_id == cur.node_id
            and prev.offset + prev.length == cur.offset
            and prev.va + prev.length == cur.va)


def _merge(prev: "MetadataRecord", cur: "MetadataRecord") -> "MetadataRecord":
    return MetadataRecord(prev.fid, prev.offset, prev.length + cur.length,
                          prev.proc_id, prev.va, prev.tier, prev.node_id)


def coalesce_records(
        records: Iterable["MetadataRecord"],
) -> Tuple[List["MetadataRecord"], int]:
    """Merge *immediately consecutive* contiguous records; returns
    ``(coalesced, merges)``.

    Only adjacent pairs in the stream are considered: merging across an
    intervening record could reorder an overwrite (a later overlapping
    record from another process must still supersede exactly the bytes
    it did before).  Streams from one collective write op are per-process
    runs of chunk records, so the common case collapses completely.
    """
    out: List[MetadataRecord] = []
    merges = 0
    for rec in records:
        if out and _mergeable(out[-1], rec):
            out[-1] = _merge(out[-1], rec)
            merges += 1
        else:
            out.append(rec)
    return out, merges


def split_record(record: "MetadataRecord",
                 range_size: float) -> Iterable["MetadataRecord"]:
    """Split a record at range boundaries so each piece has one owner."""
    start = record.offset
    while start < record.end:
        boundary = (int(start // range_size) + 1) * range_size
        end = min(record.end, int(boundary))
        yield record.slice(start, end)
        start = end


def apply_insert(store: Dict[int, Tuple[List[int], List["MetadataRecord"]]],
                 piece: "MetadataRecord", range_size: float,
                 compaction: bool = True) -> None:
    """Insert one range-local piece into a ``fid -> (starts, records)``
    interval store: trim/remove overlapped records (an overwrite
    supersedes them), then — with ``compaction`` — merge the seams the
    insert created, never across a range boundary.

    Shared by the authoritative per-server stores and the client-side
    :class:`~repro.core.location_cache.LocationCache`, so both views hold
    byte-identical record lists by construction.
    """
    starts, recs = store.setdefault(piece.fid, ([], []))
    lo = bisect.bisect_left(starts, piece.offset)
    if lo > 0 and recs[lo - 1].end > piece.offset:
        lo -= 1
    hi = lo
    keep_left: Optional[MetadataRecord] = None
    keep_right: Optional[MetadataRecord] = None
    while hi < len(recs) and recs[hi].offset < piece.end:
        old = recs[hi]
        if old.offset < piece.offset:
            keep_left = old.slice(old.offset, piece.offset)
        if old.end > piece.end:
            keep_right = old.slice(piece.end, old.end)
        hi += 1
    replacement = [r for r in (keep_left, piece, keep_right)
                   if r is not None]
    recs[lo:hi] = replacement
    starts[lo:hi] = [r.offset for r in replacement]
    if compaction:
        # Merge the seams the insert created: recs[lo-1] through the
        # record after the replacement.  Merges never cross a range
        # boundary — replicas hold per-range piece streams, so an
        # in-range merge is identical on every copy (and pieces keep the
        # "one owner per piece" property the partitioning tests pin).
        j = max(lo, 1)
        end_idx = lo + len(replacement)
        while j <= end_idx and j < len(recs):
            prev, cur = recs[j - 1], recs[j]
            if (_mergeable(prev, cur)
                    and int(prev.offset // range_size)
                    == int((cur.end - 1) // range_size)):
                recs[j - 1:j + 1] = [_merge(prev, cur)]
                del starts[j]
                end_idx -= 1
            else:
                j += 1


@dataclass(frozen=True)
class MetadataRecord:
    """Fig. 3's record: FID + offset -> source process + VA (+ locality)."""

    fid: int
    offset: int
    length: int
    proc_id: int
    va: float
    tier: StorageTier
    #: Compute node hosting the segment (meaningful for node-local tiers;
    #: the location-aware read service keys on this, §II-B4).
    node_id: Optional[int] = None

    def __post_init__(self):
        if self.offset < 0 or self.length <= 0:
            raise ValueError(f"invalid record range [{self.offset}, "
                             f"+{self.length})")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def slice(self, start: int, end: int) -> "MetadataRecord":
        """Sub-record for [start, end) ⊆ [offset, end); VA advances too."""
        if not (self.offset <= start < end <= self.offset + self.length):
            raise ValueError(f"slice [{start}, {end}) outside record "
                             f"[{self.offset}, {self.end})")
        # Direct construction: dataclasses.replace re-introspects fields
        # on every call and slice() sits on the lookup/insert hot paths.
        return MetadataRecord(self.fid, start, end - start, self.proc_id,
                              self.va + (start - self.offset), self.tier,
                              self.node_id)


class MetadataService:
    """The distributed KV store over all UniviStor servers.

    The functional store is exact (interval lists per (server, fid));
    the *cost* of an operation is returned as the set of servers
    contacted, which the caller prices with the network model.
    """

    def __init__(self, n_servers: int, range_size: float,
                 replication: int = 1, replica_stride: int = 1,
                 compaction: bool = True, checkpoint_threshold: int = 0,
                 quorum: bool = False):
        if n_servers < 1:
            raise ValueError(f"need at least one server, got {n_servers}")
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if replica_stride < 1:
            raise ValueError(
                f"replica_stride must be >= 1, got {replica_stride}")
        if checkpoint_threshold < 0:
            raise ValueError(f"checkpoint_threshold must be >= 0, got "
                             f"{checkpoint_threshold}")
        self.n_servers = n_servers
        self.range_size = float(range_size)
        self.replication = min(replication, n_servers)
        self.replica_stride = replica_stride
        #: Merge adjacent contiguous same-writer records inside the stores
        #: (never across a range boundary), bounding the per-fid list
        #: length that every lookup bisects over.
        self.compaction = compaction
        #: Fold a range's journal into a compacted checkpoint once it
        #: reaches this many entries *and* every replica is alive to
        #: acknowledge.  0 disables truncation (journal grows unbounded,
        #: the pre-fast-path behaviour).
        self.checkpoint_threshold = checkpoint_threshold
        #: Checkpoint/truncation observability (host-side only).
        self.checkpoints_taken = 0
        self.journal_entries_truncated = 0
        #: Observer called as ``on_checkpoint(range_index, truncated)``
        #: after a journal truncation (telemetry counter wiring).
        self.on_checkpoint: Optional[Callable[[int, int], None]] = None
        #: Majority-quorum mode (CAP-complete failure model): writes need
        #: a majority of the replica set, reads repair lagging copies
        #: instead of skipping past them silently.
        self.quorum = quorum
        #: Servers whose partition is lost (crash injection).
        self.failed_servers: Set[int] = set()
        #: Servers that are alive but cut off by a network partition —
        #: requests to them are lost, so they can neither ack writes nor
        #: serve reads until the partition heals.
        self.unreachable_servers: Set[int] = set()
        #: Quorum/fencing observability (host-side only).
        self.read_repairs = 0
        self.fence_rejections = 0
        #: Observer called as ``on_read_repair(range_index, server)`` when
        #: a read brings a lagging replica current (telemetry wiring).
        self.on_read_repair: Optional[Callable[[int, int], None]] = None
        #: Observer called as ``on_fence_reject(range_index, server)``
        #: when a stale (fenced / lagging) copy is refused as a read or
        #: write target.
        self.on_fence_reject: Optional[Callable[[int, int], None]] = None
        #: Observer called as ``on_failover(range_index, server)`` when a
        #: read is served by a non-primary replica (telemetry wiring).
        self.on_failover: Optional[Callable[[int, int], None]] = None
        # server -> fid -> (sorted start offsets, records)
        self._stores: List[Dict[int, Tuple[List[int], List[MetadataRecord]]]] = [
            dict() for _ in range(n_servers)]
        # Write-ahead journal, partitioned by range: every accepted insert
        # piece, in arrival order.  Models the durable per-server journal
        # segments on shared storage — it survives ``fail_server`` (which
        # only loses the in-memory partition) and is what ``recover_server``
        # replays to rebuild a range on its new owner.
        self._journal: Dict[int, List[MetadataRecord]] = {}
        # Compacted snapshot of everything truncated out of a range's
        # journal.  Replay order is checkpoint first, then the live
        # journal suffix — equivalent to replaying the full history.
        self._checkpoints: Dict[int, List[MetadataRecord]] = {}
        # Ranges whose replica set was rewritten by a takeover.  Absent
        # entries use the computed round-robin set, so the healthy-cluster
        # routing (and its cost accounting) is bit-identical to before.
        self._range_replicas: Dict[int, List[int]] = {}
        # Lease epoch per range (absent -> 0).  Bumped whenever ownership
        # is rewritten by a takeover; a copy written under an older epoch
        # is fenced until rebuilt.
        self._range_epoch: Dict[int, int] = {}
        # range -> servers holding a stale copy: members that missed a
        # quorum write while unreachable (lagging) or whose lease epoch
        # was superseded by a takeover (fenced).  Stale copies never
        # serve reads, never ack writes, and are invisible to
        # :meth:`records_of` until rebuilt from the journal.
        self._stale: Dict[int, Set[int]] = {}
        # -- hotspot mitigation state (docs/MODEL.md §11) ------------------
        # All empty/disabled by default; every consumer guards on
        # falsiness, so static-assignment routing (and digests) is
        # bit-identical until the first split, pool change, or heat bump.
        # base range -> sorted [(sub_start_offset, members), ...].  The
        # first sub always starts at the base range's low offset; a range
        # absent here is unsplit.
        self._splits: Dict[int, List[Tuple[int, List[int]]]] = {}
        # Explicit server pool (None until the first add/remove_server):
        # replaces the ``% n_servers`` arithmetic for ranges without a
        # pinned assignment, while every pre-existing data-bearing range
        # is pinned into _range_replicas before the pool first changes.
        self._pool: Optional[List[int]] = None
        # Retired (drained) servers: never spares, never split members.
        self._retired: Set[int] = set()
        # Read-hot ranges: rotation counter for replica selection, so
        # lookups fan out over the (possibly re-replicated) member set.
        self._read_spread: Dict[int, int] = {}
        #: Record per-range activity for :meth:`take_heat` (set by the
        #: :class:`~repro.core.hotspot.HotspotManager` when enabled).
        self.heat_enabled = False
        self._write_heat: Dict[int, int] = {}
        self._read_heat: Dict[int, int] = {}
        #: Hook fired when heat is recorded (the hotspot manager restarts
        #: its quiesced tick loop from it).
        self.on_activity: Optional[Callable[[], None]] = None
        #: Mitigation observability (host-side only).
        self.splits_done = 0
        self.merges_done = 0
        self.migrations_done = 0

    @property
    def record_count(self) -> int:
        return sum(len(recs) for store in self._stores
                   for _starts, recs in store.values())

    # -- partitioning ------------------------------------------------------
    def server_of(self, offset: int) -> int:
        """Owning server of ``offset``: range index round-robin (Fig. 3).

        With a split range or an elastic pool the owner is the primary of
        the member set responsible at ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        range_index = int(offset // self.range_size)
        if self._splits or self._pool is not None:
            return self._members_at(range_index, offset)[0]
        return range_index % self.n_servers

    def replica_servers(self, range_index: int) -> List[int]:
        """Replica set of a range, primary first.

        Client-computable from the range index alone on a healthy cluster;
        after a takeover the rewritten set is served from the (replicated)
        assignment table instead.  For a *split* range this is the ordered
        union of every sub-range's members (what checkpointing and
        recovery must account for); per-offset routing uses
        :meth:`_members_at`.
        """
        override = self._range_replicas.get(range_index)
        if override is not None:
            return list(override)
        subs = self._splits.get(range_index)
        if subs is not None:
            union: List[int] = []
            for _start, members in subs:
                for server in members:
                    if server not in union:
                        union.append(server)
            return union
        if self._pool is not None:
            pool = self._pool
            out: List[int] = []
            for k in range(self.replication):
                server = pool[(range_index + k * self.replica_stride)
                              % len(pool)]
                if server not in out:
                    out.append(server)
            return out
        out = []
        for k in range(self.replication):
            server = (range_index + k * self.replica_stride) % self.n_servers
            if server not in out:
                out.append(server)
        return out

    def _members_at(self, range_index: int,
                    offset: Optional[int] = None) -> List[int]:
        """Members responsible at ``offset`` inside the range — the
        sub-range's set when split, else the whole replica set.  With
        ``offset=None`` a split range answers with its member union."""
        subs = self._splits.get(range_index)
        if subs is None or offset is None:
            return self.replica_servers(range_index)
        members = subs[0][1]
        for start, sub_members in subs:
            if start <= offset:
                members = sub_members
            else:
                break
        return list(members)

    def _overlapping_subs(self, range_index: int, lo: int,
                          hi: int) -> Iterable[Tuple[int, int]]:
        """Clipped ``(span_lo, span_hi)`` of each sub-range of a *split*
        range overlapping [lo, hi), in offset order."""
        subs = self._splits[range_index]
        base_end = int((range_index + 1) * self.range_size)
        for i, (start, _members) in enumerate(subs):
            end = subs[i + 1][0] if i + 1 < len(subs) else base_end
            if end <= lo or start >= hi:
                continue
            yield max(lo, start), min(hi, end)

    def _note_write(self, range_index: int) -> None:
        self._write_heat[range_index] = (
            self._write_heat.get(range_index, 0) + 1)
        if self.on_activity is not None:
            self.on_activity()

    def _note_read(self, range_index: int) -> None:
        self._read_heat[range_index] = (
            self._read_heat.get(range_index, 0) + 1)
        if self.on_activity is not None:
            self.on_activity()

    def take_heat(self) -> Dict[int, Tuple[int, int]]:
        """Drain the per-range ``(writes, reads)`` recorded since the
        last call — the hotspot manager's decision input."""
        heat: Dict[int, Tuple[int, int]] = {}
        for range_index, n in self._write_heat.items():
            heat[range_index] = (n, 0)
        for range_index, n in self._read_heat.items():
            writes, _ = heat.get(range_index, (0, 0))
            heat[range_index] = (writes, n)
        self._write_heat.clear()
        self._read_heat.clear()
        return heat

    def read_server_of(self, range_index: int,
                       offset: Optional[int] = None) -> int:
        """First live, reachable, *current* replica of a range — the
        server a client reads from.

        A fenced or lagging copy never answers: with quorum mode a
        reachable one is **read-repaired** (journal replay) before
        selection, without it the copy is skipped.  Raises
        :class:`MetadataUnavailableError` when the whole replica set is
        dead, :class:`QuorumLostError` when live copies exist but none
        is reachable and current; fires :attr:`on_failover` when the
        intended replica is not the one answering.

        ``offset`` narrows a *split* range to the sub-range responsible
        for it; a range marked read-hot (:meth:`set_read_spread`) rotates
        which member answers, spreading lookup fan-out.
        """
        if self.heat_enabled:
            self._note_read(range_index)
        if (self.replication == 1 and not self.failed_servers
                and not self.unreachable_servers and not self._stale
                and not self._splits and not self._read_spread
                and self._pool is None):
            # Fast path: unreplicated healthy cluster with no mitigation
            # state — the primary *is* the replica set, no list to build.
            return range_index % self.n_servers
        stale = self._stale.get(range_index)
        if stale and self.quorum:
            # Read-repair: bring every reachable lagging copy current
            # from the journal before picking who answers.
            for server in sorted(stale):
                if (server not in self.failed_servers
                        and server not in self.unreachable_servers):
                    self._rebuild_copy(range_index, server)
                    self.read_repairs += 1
                    if self.on_read_repair is not None:
                        self.on_read_repair(range_index, server)
            stale = self._stale.get(range_index)
        replicas = self._members_at(range_index, offset)
        spread = self._read_spread.get(range_index)
        if spread is not None and len(replicas) > 1:
            # Read-hot range: rotate the intended replica.  Serving a
            # member other than the *rotated* head is still a failover.
            k = spread % len(replicas)
            self._read_spread[range_index] = spread + 1
            order = replicas[k:] + replicas[:k]
        else:
            order = replicas
        for server in order:
            if (server in self.failed_servers
                    or server in self.unreachable_servers):
                continue
            if stale and server in stale:
                # Fenced copy without quorum read-repair: it must not
                # answer — its records may predate the current epoch.
                self.fence_rejections += 1
                if self.on_fence_reject is not None:
                    self.on_fence_reject(range_index, server)
                continue
            if server != order[0] and self.on_failover is not None:
                self.on_failover(range_index, server)
            return server
        if all(s in self.failed_servers for s in replicas):
            raise MetadataUnavailableError(
                f"metadata range {range_index} lost: all replicas "
                f"{replicas} have failed")
        raise QuorumLostError(
            f"metadata range {range_index} unavailable: no reachable "
            f"current replica in {replicas} (partitioned or fenced)",
            range_index=range_index, acked=0,
            needed=(len(replicas) // 2 + 1) if self.quorum else 1)

    def fail_server(self, server: int) -> None:
        """A server process dies: its partition (all copies it held) is
        gone.  Surviving replicas keep their ranges readable."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"no server {server}")
        self.failed_servers.add(server)
        self._stores[server].clear()

    def set_unreachable(self, server: int) -> None:
        """A live server is cut off by a network partition: it can
        neither ack writes nor serve reads until the link heals."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"no server {server}")
        self.unreachable_servers.add(server)

    def set_reachable(self, server: int) -> None:
        """The partition healed for ``server``.  Copies that lagged or
        were fenced while it was away stay stale until read-repaired or
        rebuilt by a takeover — reachability is not currency."""
        self.unreachable_servers.discard(server)

    def range_epoch(self, range_index: int) -> int:
        """Current lease epoch of a range (0 until a takeover rewrites
        its ownership)."""
        return self._range_epoch.get(range_index, 0)

    def stale_members(self, range_index: int) -> Set[int]:
        """Servers holding a fenced or lagging copy of the range."""
        return set(self._stale.get(range_index, ()))

    def servers_for_range(self, offset: int, length: int) -> Set[int]:
        """All servers owning part of [offset, offset+length)."""
        if length <= 0:
            return set()
        end = offset + length
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        if self._splits or self._pool is not None:
            owners: Set[int] = set()
            for r in range(first, last + 1):
                if r in self._splits:
                    lo = max(offset, int(r * self.range_size))
                    hi = min(end, int((r + 1) * self.range_size))
                    for span_lo, _hi in self._overlapping_subs(r, lo, hi):
                        owners.add(self._members_at(r, span_lo)[0])
                else:
                    owners.add(self.replica_servers(r)[0])
            return owners
        if last - first + 1 >= self.n_servers:
            return set(range(self.n_servers))
        return {(r % self.n_servers) for r in range(first, last + 1)}

    def _split_by_range(self, record: MetadataRecord) -> Iterable[MetadataRecord]:
        if not self._splits:
            return split_record(record, self.range_size)
        return self._split_by_sub_range(record)

    def _split_by_sub_range(
            self, record: MetadataRecord) -> Iterable[MetadataRecord]:
        """Like :func:`split_record`, but pieces inside a *split* range
        are additionally sliced at its sub-range boundaries, so every
        journaled piece has exactly one responsible member set."""
        for piece in split_record(record, self.range_size):
            range_index = int(piece.offset // self.range_size)
            subs = self._splits.get(range_index)
            if subs is None or len(subs) == 1:
                yield piece
                continue
            start = piece.offset
            while start < piece.end:
                nxt = piece.end
                for sub_start, _members in subs:
                    if sub_start > start:
                        nxt = min(nxt, sub_start)
                        break
                yield piece.slice(start, nxt)
                start = nxt

    # -- mutation ----------------------------------------------------------
    def _write_ackers(self, range_index: int,
                      offset: Optional[int] = None) -> List[int]:
        """Replica-set members that can ack a write to the range: alive,
        reachable, and current (not fenced).

        With quorum mode the write is rejected
        (:class:`QuorumLostError`) unless a strict majority of the
        *full* replica set can ack — the minority side of a partition
        must not apply a write the majority side could contradict after
        a takeover.  Without quorum any single acker suffices (the
        original any-replica-alive semantics), but a range whose live
        copies are all partitioned away still raises: there is nobody to
        apply the write to.

        ``offset`` narrows a *split* range to the sub-range responsible
        for it; quorum majorities are then over that sub's member set.
        """
        if self.heat_enabled:
            self._note_write(range_index)
        replicas = self._members_at(range_index, offset)
        if not (self.unreachable_servers or self._stale):
            ackers = [s for s in replicas if s not in self.failed_servers]
        else:
            stale = self._stale.get(range_index, ())
            ackers = [s for s in replicas
                      if s not in self.failed_servers
                      and s not in self.unreachable_servers
                      and s not in stale]
        if not ackers:
            if all(s in self.failed_servers for s in replicas):
                raise MetadataUnavailableError(
                    f"metadata range {range_index} lost: all replicas "
                    f"{replicas} have failed")
            raise QuorumLostError(
                f"metadata range {range_index} unavailable: no reachable "
                f"current replica in {replicas}",
                range_index=range_index, acked=0,
                needed=(len(replicas) // 2 + 1) if self.quorum else 1)
        if self.quorum:
            needed = len(replicas) // 2 + 1
            if len(ackers) < needed:
                raise QuorumLostError(
                    f"metadata range {range_index}: only {len(ackers)} of "
                    f"{len(replicas)} replicas can ack, majority {needed} "
                    f"required", range_index=range_index,
                    acked=len(ackers), needed=needed)
        return ackers

    def _mark_missed(self, range_index: int, ackers: List[int],
                     members: Optional[List[int]] = None) -> None:
        """Fence every live member that missed an accepted write: a
        lagging copy must not serve reads or ack writes until rebuilt
        from the journal (read-repair or takeover).  ``members`` narrows
        the check to a split sub-range's set (the fence itself stays
        base-range granular — conservative but always safe)."""
        replicas = (members if members is not None
                    else self.replica_servers(range_index))
        if len(ackers) == len(replicas):
            return
        for server in replicas:
            if server in ackers or server in self.failed_servers:
                continue
            self._stale.setdefault(range_index, set()).add(server)

    def insert(self, record: MetadataRecord) -> Set[int]:
        """Insert (overwriting overlaps); returns servers contacted.

        With replication every ackable replica of the piece's range
        receives a copy; a range whose whole replica set is dead rejects
        the write, and quorum mode additionally rejects writes a
        majority cannot ack (:meth:`_write_ackers`).  Accepted pieces
        are appended to the range's write-ahead journal (after the
        acceptance check: a rejected write must not be resurrected by a
        later takeover replay); live members that missed the write are
        fenced as stale.
        """
        touched: Set[int] = set()
        for piece in self._split_by_range(record):
            range_index = int(piece.offset // self.range_size)
            try:
                ackers = self._write_ackers(range_index, piece.offset)
            except DataLossError as err:
                err.fid = piece.fid
                err.offset = piece.offset
                err.length = piece.length
                raise
            self._journal.setdefault(range_index, []).append(piece)
            for server in ackers:
                touched.add(server)
                self._insert_piece(server, piece)
            if self.unreachable_servers or self._stale:
                members = (self._members_at(range_index, piece.offset)
                           if range_index in self._splits else None)
                self._mark_missed(range_index, ackers, members)
            self._maybe_checkpoint(range_index)
        return touched

    def insert_many(self, records: Iterable[MetadataRecord],
                    coalesce: bool = False,
                    stats: Optional[Dict[str, int]] = None) -> Set[int]:
        """Batched insert: one journal append per touched range, deduped
        touched-server set, optional contiguous-record coalescing.

        Functionally identical to inserting the records one at a time —
        ranges partition the offset space, so grouping pieces by range
        cannot reorder an overwrite — but the journal takes one
        ``extend`` per range instead of one ``append`` per piece and each
        replica applies its range's pieces in one pass.  When any touched
        range has lost its whole replica set the call falls back to the
        sequential path so the partial-apply semantics of the legacy loop
        (pieces before the dead range stick, then the raise) are
        preserved bit-for-bit.
        """
        if coalesce:
            records, merges = coalesce_records(records)
        else:
            records = list(records)
            merges = 0
        per_range: Dict[int, List[MetadataRecord]] = {}
        n_pieces = 0
        for record in records:
            for piece in self._split_by_range(record):
                per_range.setdefault(int(piece.offset // self.range_size),
                                     []).append(piece)
                n_pieces += 1
        if stats is not None:
            stats["coalesced"] = stats.get("coalesced", 0) + merges
            stats["batches"] = stats.get("batches", 0) + len(per_range)
            stats["pieces"] = stats.get("pieces", 0) + n_pieces
        ackers_by_range: Dict[int, List[int]] = {}
        split_ackers: Dict[int, List[List[int]]] = {}
        for range_index, pieces in per_range.items():
            try:
                if range_index in self._splits:
                    # Split range: each piece routes to its sub-range's
                    # member set (pieces are already sliced at sub
                    # boundaries by _split_by_range).
                    split_ackers[range_index] = [
                        self._write_ackers(range_index, p.offset)
                        for p in pieces]
                else:
                    ackers_by_range[range_index] = self._write_ackers(
                        range_index)
            except DataLossError:
                # Legacy semantics under range loss (and quorum loss):
                # apply sequentially until the failing range rejects the
                # write, preserving the partial-apply the unbatched loop
                # produced bit-for-bit.
                touched = set()
                for record in records:
                    touched |= self.insert(record)
                return touched
        touched = set()
        for range_index, pieces in per_range.items():
            self._journal.setdefault(range_index, []).extend(pieces)
            per_piece = split_ackers.get(range_index)
            if per_piece is not None:
                for piece, ackers in zip(pieces, per_piece):
                    for server in ackers:
                        touched.add(server)
                        self._insert_piece(server, piece)
                    if self.unreachable_servers or self._stale:
                        self._mark_missed(
                            range_index, ackers,
                            self._members_at(range_index, piece.offset))
            else:
                ackers = ackers_by_range[range_index]
                for server in ackers:
                    touched.add(server)
                    insert = self._insert_piece
                    for piece in pieces:
                        insert(server, piece)
                if self.unreachable_servers or self._stale:
                    self._mark_missed(range_index, ackers)
            self._maybe_checkpoint(range_index)
        return touched

    def _insert_piece(self, server: int, piece: MetadataRecord) -> None:
        if self._stale:
            # Fencing enforcement point: a stale-epoch copy refuses the
            # write even if some path routes one here — the rebuilt
            # journal replay is the only way back to currency.
            range_index = int(piece.offset // self.range_size)
            if server in self._stale.get(range_index, ()):
                self.fence_rejections += 1
                if self.on_fence_reject is not None:
                    self.on_fence_reject(range_index, server)
                return
        self._insert_into(self._stores[server], piece)

    def _insert_into(self,
                     store: Dict[int, Tuple[List[int], List[MetadataRecord]]],
                     piece: MetadataRecord) -> None:
        apply_insert(store, piece, self.range_size, self.compaction)

    def compact(self, fid: Optional[int] = None) -> int:
        """Compaction sweep: merge every adjacent contiguous same-writer
        pair (within one range) across all stores; returns merges done.

        Merge-on-insert keeps stores compacted incrementally; the sweep
        covers stores populated while ``compaction`` was off, or after
        bulk mutations, and is what long-lived deployments would run in
        the background.
        """
        merged = 0
        for server, store in enumerate(self._stores):
            if server in self.failed_servers:
                continue
            fids = [fid] if fid is not None else list(store)
            for f in fids:
                entry = store.get(f)
                if not entry:
                    continue
                starts, recs = entry
                j = 1
                while j < len(recs):
                    prev, cur = recs[j - 1], recs[j]
                    if (_mergeable(prev, cur)
                            and int(prev.offset // self.range_size)
                            == int((cur.end - 1) // self.range_size)):
                        recs[j - 1:j + 1] = [_merge(prev, cur)]
                        del starts[j]
                        merged += 1
                    else:
                        j += 1
        return merged

    # -- journal checkpointing ---------------------------------------------
    def _maybe_checkpoint(self, range_index: int) -> None:
        """Truncate a range's journal behind a compacted checkpoint.

        Fires when the live journal reaches ``checkpoint_threshold``
        entries and **every** replica of the range is alive to
        acknowledge the batch (a dead replica has not acked; its rebuild
        keeps the full journal until it is recovered or replaced).  The
        checkpoint is the scratch-replay of (old checkpoint + journal):
        exactly the record list a store holds for the range, so replaying
        checkpoint-then-suffix reproduces what replaying the full history
        would have.  The journal key survives (emptied, not deleted) —
        range ownership is discovered by iterating journal keys.
        """
        threshold = self.checkpoint_threshold
        if threshold <= 0:
            return
        journal = self._journal.get(range_index)
        if not journal or len(journal) < threshold:
            return
        stale = self._stale.get(range_index, ())
        for server in self.replica_servers(range_index):
            if (server in self.failed_servers
                    or server in self.unreachable_servers
                    or server in stale):
                return
        scratch: Dict[int, Tuple[List[int], List[MetadataRecord]]] = {}
        for piece in self._checkpoints.get(range_index, ()):
            self._insert_into(scratch, piece)
        for piece in journal:
            self._insert_into(scratch, piece)
        snapshot: List[MetadataRecord] = []
        for f in sorted(scratch):
            snapshot.extend(scratch[f][1])
        truncated = len(journal)
        self._checkpoints[range_index] = snapshot
        self._journal[range_index] = []
        self.checkpoints_taken += 1
        self.journal_entries_truncated += truncated
        if self.on_checkpoint is not None:
            self.on_checkpoint(range_index, truncated)

    def delete_file(self, fid: int) -> Set[int]:
        """Drop all records of ``fid``; returns servers contacted."""
        touched = set()
        for server, store in enumerate(self._stores):
            if fid in store:
                touched.add(server)
                del store[fid]
        for range_index in list(self._journal.keys() | self._checkpoints.keys()):
            entries = self._journal.get(range_index, [])
            kept = [p for p in entries if p.fid != fid]
            ck = [p for p in self._checkpoints.get(range_index, ())
                  if p.fid != fid]
            if ck:
                self._checkpoints[range_index] = ck
            else:
                self._checkpoints.pop(range_index, None)
            if kept or ck:
                self._journal[range_index] = kept
            elif range_index in self._journal:
                del self._journal[range_index]
        return touched

    # -- recovery (range takeover) -----------------------------------------
    def journal_records(self, range_index: int) -> List[MetadataRecord]:
        """What a takeover must replay for a range, in replay order:
        the compacted checkpoint (if any) followed by the live journal
        suffix.  With truncation enabled this is what bounds replay cost
        for long-lived sessions."""
        checkpoint = self._checkpoints.get(range_index)
        suffix = self._journal.get(range_index, ())
        if checkpoint:
            return list(checkpoint) + list(suffix)
        return list(suffix)

    def recover_server(self, dead: int) -> List[Tuple[int, int]]:
        """Reassign every range that lost a copy with server ``dead``.

        For each journaled range whose replica set includes a failed
        server: keep the surviving members (their copies are already
        current), pick replacement servers round-robin from the live
        cluster, and rebuild each replacement's copy by replaying the
        range's write-ahead journal in arrival order.  Survivors stay at
        the head of the new set, so a range with any live copy keeps
        answering from it and the replay only fills the spare.

        Returns ``(range_index, new_primary)`` for every range whose
        assignment changed.  Idempotent: a second call for the same death
        finds the rewritten sets already free of failed members.

        ``dead`` may also be a *fenced* server (lease expired while
        partitioned): it is excluded the same way, and — being alive —
        is marked stale on every range it loses, so a healed partition
        finds its old lease superseded rather than a range it can still
        serve.  Every ownership rewrite bumps the range's lease epoch.
        """
        if not 0 <= dead < self.n_servers:
            raise ValueError(f"no server {dead}")
        excluded = (self.failed_servers | self.unreachable_servers
                    | self._retired)
        actions: List[Tuple[int, int]] = []
        for range_index in sorted(self._journal.keys()
                                  | self._checkpoints.keys()):
            if range_index in self._splits:
                primary = self._recover_split_range(range_index, dead,
                                                    excluded)
                if primary is not None:
                    actions.append((range_index, primary))
                continue
            candidates = self.replica_servers(range_index)
            if dead not in candidates:
                continue
            stale = self._stale.get(range_index, ())
            current = [s for s in candidates
                       if s not in excluded and s not in stale]
            need = self.replication - len(current)
            spares: List[int] = []
            for k in range(self.n_servers):
                if len(spares) >= need:
                    break
                server = (range_index + k) % self.n_servers
                if server in excluded or server in current:
                    continue
                spares.append(server)
            for server in spares:
                self._rebuild_copy(range_index, server)
            new_set = current + spares
            if not new_set:
                continue  # whole cluster down for this range: stays lost
            if new_set != candidates:
                # Ownership rewritten: new lease epoch, and every live
                # ex-member is fenced out of its old one.
                self._range_epoch[range_index] = (
                    self._range_epoch.get(range_index, 0) + 1)
                for server in candidates:
                    if (server not in new_set
                            and server not in self.failed_servers):
                        self._stale.setdefault(range_index, set()).add(server)
            self._range_replicas[range_index] = new_set
            actions.append((range_index, new_set[0]))
        return actions

    def _recover_split_range(self, range_index: int, dead: int,
                             excluded: Set[int]) -> Optional[int]:
        """Takeover for a *split* range: every sub-range that lost a copy
        with ``dead`` (or any other excluded/stale member) is refilled
        independently, its spares rebuilt by replaying only the sub's
        span.  Returns the new first-sub primary when any membership
        changed, else None."""
        subs = self._splits[range_index]
        if dead not in {s for _start, m in subs for s in m}:
            return None
        base_hi = int((range_index + 1) * self.range_size)
        stale = self._stale.get(range_index, ())
        new_subs: List[Tuple[int, List[int]]] = []
        changed = False
        fenced: List[int] = []
        for i, (start, members) in enumerate(subs):
            end = subs[i + 1][0] if i + 1 < len(subs) else base_hi
            current = [s for s in members
                       if s not in excluded and s not in stale]
            if current == members:
                new_subs.append((start, members))
                continue
            need = len(members) - len(current)
            spares: List[int] = []
            for k in range(self.n_servers):
                if len(spares) >= need:
                    break
                cand = (range_index + i + k) % self.n_servers
                if (cand in excluded or cand in current
                        or cand in stale or cand in spares):
                    continue
                spares.append(cand)
            for server in spares:
                self._drop_span(server, start, end)
                self._replay_span(range_index, server, start, end)
            new_set = current + spares
            if not new_set:
                new_subs.append((start, members))
                continue  # whole pool down for this sub: stays lost
            new_subs.append((start, new_set))
            changed = True
            for server in members:
                if server not in new_set and server not in self.failed_servers:
                    fenced.append(server)
        if not changed:
            return None
        self._splits[range_index] = new_subs
        self._range_epoch[range_index] = (
            self._range_epoch.get(range_index, 0) + 1)
        # Fencing is base-range granular: a live ex-member of any sub is
        # fenced for the whole range.  Safe — the same pass removed it
        # from every sub it belonged to (the exclusion reasons are
        # server-wide, not per-sub).
        for server in fenced:
            self._stale.setdefault(range_index, set()).add(server)
        return new_subs[0][1][0]

    def _rebuild_copy(self, range_index: int, server: int) -> None:
        """Bring a spare or stale copy current: clear the fence, drop
        whatever the server holds for the range, and replay the journal
        — the full accepted history, missed writes included.  On a
        *split* range only the sub-spans the server is a member of are
        replayed (a fenced ex-member comes back empty and current)."""
        members = self._stale.get(range_index)
        if members is not None:
            members.discard(server)
            if not members:
                del self._stale[range_index]
        self._drop_range(server, range_index)
        subs = self._splits.get(range_index)
        if subs is None:
            self._replay(range_index, server)
            return
        base_hi = int((range_index + 1) * self.range_size)
        for i, (start, sub_members) in enumerate(subs):
            if server not in sub_members:
                continue
            end = subs[i + 1][0] if i + 1 < len(subs) else base_hi
            self._replay_span(range_index, server, start, end)

    def _drop_range(self, server: int, range_index: int) -> None:
        """Discard every record the server holds inside one range
        (inserts split at range boundaries, so records never straddle)."""
        store = self._stores[server]
        lo = int(range_index * self.range_size)
        hi = int((range_index + 1) * self.range_size)
        for fid in list(store):
            _starts, recs = store[fid]
            if not recs or recs[-1].end <= lo or recs[0].offset >= hi:
                continue
            keep = [r for r in recs if r.end <= lo or r.offset >= hi]
            if len(keep) == len(recs):
                continue
            if keep:
                store[fid] = ([r.offset for r in keep], keep)
            else:
                del store[fid]

    def _replay(self, range_index: int, server: int) -> int:
        """Rebuild one range's partition on ``server``: checkpoint first,
        then the journal suffix (equivalent to the full history).
        Returns pieces applied (the handoff volume)."""
        applied = 0
        for piece in self._checkpoints.get(range_index, ()):
            self._insert_piece(server, piece)
            applied += 1
        for piece in self._journal.get(range_index, ()):
            self._insert_piece(server, piece)
            applied += 1
        return applied

    def _drop_span(self, server: int, lo: int, hi: int) -> None:
        """Discard what the server holds inside [lo, hi), slicing records
        that straddle a boundary — unlike base-range boundaries, in-store
        compaction *can* merge records across a sub-range boundary."""
        store = self._stores[server]
        for fid in list(store):
            _starts, recs = store[fid]
            if not recs or recs[-1].end <= lo or recs[0].offset >= hi:
                continue
            keep: List[MetadataRecord] = []
            changed = False
            for rec in recs:
                if rec.end <= lo or rec.offset >= hi:
                    keep.append(rec)
                    continue
                changed = True
                if rec.offset < lo:
                    keep.append(rec.slice(rec.offset, lo))
                if rec.end > hi:
                    keep.append(rec.slice(hi, rec.end))
            if not changed:
                continue
            if keep:
                store[fid] = ([r.offset for r in keep], keep)
            else:
                del store[fid]

    def _replay_span(self, range_index: int, server: int,
                     lo: int, hi: int) -> int:
        """Replay only the slice of a range's accepted history inside
        [lo, hi) onto ``server`` — the sub-range handoff path (split,
        merge, migration).  Returns pieces applied."""
        applied = 0
        for source in (self._checkpoints.get(range_index, ()),
                       self._journal.get(range_index, ())):
            for piece in source:
                if piece.end <= lo or piece.offset >= hi:
                    continue
                self._insert_piece(server,
                                   piece.slice(max(piece.offset, lo),
                                               min(piece.end, hi)))
                applied += 1
        return applied

    # -- hotspot mitigation ops (docs/MODEL.md §11) ------------------------
    def sub_ranges(self, range_index: int) -> List[Tuple[int, List[int]]]:
        """The ``(sub_start_offset, members)`` layout of a range — one
        entry covering the whole range when unsplit (introspection)."""
        subs = self._splits.get(range_index)
        if subs is not None:
            return [(start, list(members)) for start, members in subs]
        return [(int(range_index * self.range_size),
                 self.replica_servers(range_index))]

    def pool_servers(self) -> List[int]:
        """Servers currently in the placement pool (non-retired)."""
        return self._active_pool()

    @property
    def retired_servers(self) -> Set[int]:
        return set(self._retired)

    def _active_pool(self) -> List[int]:
        if self._pool is not None:
            return list(self._pool)
        return list(range(self.n_servers))

    def _require_quorum(self, range_index: int, members: List[int],
                        verb: str) -> List[int]:
        """Refuse a mitigation op that a majority (or, without quorum
        mode, any) of ``members`` cannot acknowledge — a split, merge or
        migration decided on the minority side of a partition could
        contradict the majority's epoch after it heals.  Returns the
        live, current members."""
        stale = self._stale.get(range_index, ())
        live = [s for s in members
                if s not in self.failed_servers
                and s not in self.unreachable_servers
                and s not in stale]
        needed = (len(members) // 2 + 1) if self.quorum else 1
        if len(live) < needed:
            raise QuorumLostError(
                f"metadata range {range_index}: cannot {verb}, only "
                f"{len(live)} of {len(members)} members can ack "
                f"({needed} required)", range_index=range_index,
                acked=len(live), needed=needed)
        return live

    def _pick_members(self, range_index: int, count: int,
                      avoid: Iterable[int], rotate: int = 0) -> List[int]:
        """Pick up to ``count`` healthy, current, non-retired members for
        a (sub-)range, walking the pool round-robin from the range's home
        position plus ``rotate`` and preferring servers outside ``avoid``
        (the already-loaded members)."""
        avoid = set(avoid)
        stale = self._stale.get(range_index, ())
        pool = self._active_pool()
        ordered = [pool[(range_index + rotate + k) % len(pool)]
                   for k in range(len(pool))]
        usable = [s for s in ordered
                  if s not in self.failed_servers
                  and s not in self.unreachable_servers
                  and s not in stale]
        # Prefer the servers carrying the fewest of this range's subs:
        # repeated splits would otherwise pile sub-ranges onto the walk's
        # first healthy servers and re-create the hotspot being split
        # away.  The sort is stable, so the rotated walk order still
        # breaks ties deterministically.
        load: Dict[int, int] = {}
        for _start, members in self._splits.get(range_index, ()):
            for s in members:
                load[s] = load.get(s, 0) + 1
        usable.sort(key=lambda s: load.get(s, 0))
        picked = [s for s in usable if s not in avoid][:count]
        for server in usable:
            if len(picked) >= count:
                break
            if server not in picked:
                picked.append(server)
        return picked

    def split_range(self, range_index: int) -> int:
        """Split the widest sub-range of ``range_index`` at its midpoint,
        handing the upper half to a (preferably fresh) member set.

        The op drains through quorum (:meth:`_require_quorum`), so the
        minority side of a partition cannot rewrite ownership; the new
        members rebuild their half through the same checkpoint + journal
        replay path a takeover uses; the base range's lease epoch is
        bumped so the layout change is ordered against takeovers.  Old
        members explicitly drop the half they handed off — nothing is
        fenced, because every old member stays current for the sub it
        keeps.  Returns the pieces replayed onto the new members (the
        handoff volume the caller prices), 0 when the range cannot split
        further.
        """
        base_lo = int(range_index * self.range_size)
        base_hi = int((range_index + 1) * self.range_size)
        subs = self._splits.get(range_index)
        if subs is None:
            subs = [(base_lo, self.replica_servers(range_index))]
        widest = max(
            ((subs[i + 1][0] if i + 1 < len(subs) else base_hi) - start, i)
            for i, (start, _members) in enumerate(subs))
        width, i = widest
        if width < 2:
            return 0
        start, members = subs[i]
        end = subs[i + 1][0] if i + 1 < len(subs) else base_hi
        mid = start + width // 2
        self._require_quorum(range_index, members, "split")
        new_members = self._pick_members(range_index, len(members),
                                         avoid=members, rotate=len(subs))
        if not new_members:
            raise QuorumLostError(
                f"metadata range {range_index}: cannot split, no healthy "
                f"server can host the new sub-range",
                range_index=range_index, acked=0, needed=1)
        moved = 0
        for server in new_members:
            if server in members:
                continue  # already holds the whole sub, stays current
            self._drop_span(server, mid, end)
            moved += self._replay_span(range_index, server, mid, end)
        for server in members:
            if server in new_members or server in self.failed_servers:
                continue
            self._drop_span(server, mid, end)
        self._splits[range_index] = (subs[:i]
                                     + [(start, list(members)),
                                        (mid, new_members)]
                                     + subs[i + 1:])
        self._range_replicas.pop(range_index, None)
        self._range_epoch[range_index] = (
            self._range_epoch.get(range_index, 0) + 1)
        self.splits_done += 1
        return moved

    def merge_range(self, range_index: int) -> int:
        """Collapse a split range back onto its first sub's live member
        set, replaying the full range onto members that held only part
        of it.  Every sub must pass the quorum check — merging with an
        unaccounted-for member could resurrect a stale layout.  Returns
        pieces replayed; 0 when the range is not split."""
        subs = self._splits.get(range_index)
        if subs is None:
            return 0
        target: List[int] = []
        for _start, members in subs:
            live = self._require_quorum(range_index, members, "merge")
            if not target:
                target = live
        if not target:
            raise QuorumLostError(
                f"metadata range {range_index}: cannot merge, first sub "
                f"has no live member", range_index=range_index,
                acked=0, needed=1)
        base_lo = int(range_index * self.range_size)
        base_hi = int((range_index + 1) * self.range_size)
        old_members = {s for _start, m in subs for s in m}
        del self._splits[range_index]
        self._range_replicas[range_index] = target
        self._range_epoch[range_index] = (
            self._range_epoch.get(range_index, 0) + 1)
        moved = 0
        for server in target:
            self._drop_span(server, base_lo, base_hi)
            moved += self._replay_span(range_index, server, base_lo, base_hi)
        for server in old_members:
            if server in target or server in self.failed_servers:
                continue
            self._drop_span(server, base_lo, base_hi)
        self.merges_done += 1
        return moved

    def set_read_spread(self, range_index: int, extra: int = 1) -> int:
        """Re-replicate a read-hot range onto up to ``extra`` additional
        servers and rotate reads over the widened set.

        No fencing: the membership only grows and every old copy stays
        current.  The spares become full members — they ack writes and
        count toward quorum majorities.  Returns pieces replayed onto
        the new members (0 when no spare exists or the range is split —
        a split range already fans out, rotation alone is enabled)."""
        if range_index in self._splits:
            self._read_spread.setdefault(range_index, 0)
            return 0
        members = self.replica_servers(range_index)
        self._require_quorum(range_index, members, "re-replicate")
        spares = [s for s in self._pick_members(
                      range_index, extra, avoid=members,
                      rotate=len(members))
                  if s not in members]
        moved = 0
        base_lo = int(range_index * self.range_size)
        base_hi = int((range_index + 1) * self.range_size)
        for server in spares:
            self._drop_span(server, base_lo, base_hi)
            moved += self._replay_span(range_index, server, base_lo, base_hi)
        if spares:
            self._range_replicas[range_index] = members + spares
            self._range_epoch[range_index] = (
                self._range_epoch.get(range_index, 0) + 1)
        self._read_spread.setdefault(range_index, 0)
        return moved

    def _pin_assignments(self) -> None:
        """Pin every data-bearing range's current replica set before the
        pool changes, so the modulus change cannot silently re-route a
        range away from its data."""
        for range_index in sorted(self._journal.keys()
                                  | self._checkpoints.keys()):
            if (range_index not in self._range_replicas
                    and range_index not in self._splits):
                self._range_replicas[range_index] = self.replica_servers(
                    range_index)

    def add_server(self) -> int:
        """Grow the pool by one server at runtime.

        Existing assignments are pinned first (:meth:`_pin_assignments`);
        only ranges first touched after the grow — and explicit
        migrations — land on the newcomer.  Returns the new server id.
        """
        self._pin_assignments()
        if self._pool is None:
            self._pool = [s for s in range(self.n_servers)
                          if s not in self._retired]
        new_id = self.n_servers
        self.n_servers += 1
        self._stores.append(dict())
        self._pool.append(new_id)
        return new_id

    def remove_server(self, server: int) -> int:
        """Drain and retire a pool server at runtime.

        Refuses to retire an unreachable or sole-live server: a
        partitioned box cannot be drained, because its copies cannot be
        verified current.  Every membership the retiree holds — per
        sub-range on split ranges — is migrated to a healthy spare
        through the takeover replay path with a per-range epoch bump.
        Returns pieces replayed onto the replacements.
        """
        if (not 0 <= server < self.n_servers or server in self._retired):
            raise ValueError(f"no server {server}")
        if server in self.unreachable_servers:
            raise QuorumLostError(
                f"cannot retire server {server}: unreachable — a "
                f"partitioned server cannot be drained",
                range_index=-1, acked=0, needed=1)
        live_pool = [s for s in self._active_pool()
                     if s not in self.failed_servers and s != server]
        if not live_pool:
            raise QuorumLostError(
                f"cannot retire server {server}: no live server left to "
                f"migrate its ranges to", range_index=-1, acked=0,
                needed=1)
        self._pin_assignments()
        if self._pool is None:
            self._pool = [s for s in range(self.n_servers)
                          if s not in self._retired]
        moved = 0
        for range_index in sorted(self._journal.keys()
                                  | self._checkpoints.keys()):
            subs = self._splits.get(range_index)
            if subs is not None:
                moved += self._migrate_split_memberships(range_index,
                                                         server)
                continue
            members = self.replica_servers(range_index)
            if server not in members:
                continue
            self._require_quorum(range_index, members, "migrate")
            remaining = [s for s in members if s != server]
            spares = [s for s in self._pick_members(
                          range_index, 1, avoid=set(members) | {server},
                          rotate=1)
                      if s not in remaining and s != server][:1]
            base_lo = int(range_index * self.range_size)
            base_hi = int((range_index + 1) * self.range_size)
            for spare in spares:
                self._drop_span(spare, base_lo, base_hi)
                moved += self._replay_span(range_index, spare,
                                           base_lo, base_hi)
            new_set = remaining + spares
            if not new_set:
                continue  # nobody to take it: assignment stays, data too
            self._range_replicas[range_index] = new_set
            self._range_epoch[range_index] = (
                self._range_epoch.get(range_index, 0) + 1)
        self._stores[server].clear()
        self._retired.add(server)
        if server in self._pool:
            self._pool.remove(server)
        self.migrations_done += 1
        return moved

    def _migrate_split_memberships(self, range_index: int,
                                   server: int) -> int:
        """Move every sub-range membership ``server`` holds in a split
        range onto spares; part of :meth:`remove_server`."""
        subs = self._splits[range_index]
        if server not in {s for _start, m in subs for s in m}:
            return 0
        base_hi = int((range_index + 1) * self.range_size)
        new_subs: List[Tuple[int, List[int]]] = []
        moved = 0
        changed = False
        for i, (start, members) in enumerate(subs):
            if server not in members:
                new_subs.append((start, members))
                continue
            self._require_quorum(range_index, members, "migrate")
            end = subs[i + 1][0] if i + 1 < len(subs) else base_hi
            remaining = [s for s in members if s != server]
            spares = [s for s in self._pick_members(
                          range_index, 1, avoid=set(members) | {server},
                          rotate=i + 1)
                      if s not in remaining and s != server][:1]
            for spare in spares:
                self._drop_span(spare, start, end)
                moved += self._replay_span(range_index, spare, start, end)
            new_set = remaining + spares
            if not new_set:
                new_subs.append((start, members))
                continue
            new_subs.append((start, new_set))
            changed = True
        if changed:
            self._splits[range_index] = new_subs
            self._range_epoch[range_index] = (
                self._range_epoch.get(range_index, 0) + 1)
        return moved

    # -- cost accounting (fast-path helpers) -------------------------------
    def write_target_servers(self, fid: int, offset: int,
                             length: int) -> Set[int]:
        """Servers an insert covering [offset, offset+length) contacts —
        the live replica set of every touched range.

        Client-computable without the records themselves: the batched
        write path prices its aggregated insert per *request* with this,
        reproducing exactly the touched set the per-request insert
        returned.  Raises like :meth:`insert` when a touched range has
        lost its whole replica set.
        """
        if length <= 0:
            return set()
        end = offset + length
        touched: Set[int] = set()
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        for range_index in range(first, last + 1):
            try:
                if self._splits and range_index in self._splits:
                    sub_lo = max(offset, int(range_index * self.range_size))
                    sub_hi = min(end, int((range_index + 1)
                                          * self.range_size))
                    for span_lo, _hi in self._overlapping_subs(
                            range_index, sub_lo, sub_hi):
                        touched.update(self._write_ackers(range_index,
                                                          span_lo))
                else:
                    touched.update(self._write_ackers(range_index))
            except DataLossError as err:
                err.fid = fid
                err.offset = max(offset, int(range_index * self.range_size))
                err.length = (min(end, int((range_index + 1)
                                           * self.range_size))
                              - err.offset)
                raise
        return touched

    def read_servers_for(self, fid: int, offset: int,
                         length: int) -> Set[int]:
        """Servers a :meth:`lookup` over the span would contact, without
        searching the stores — the location-cache hit path.

        Calls :meth:`read_server_of` per range in the same order as
        ``lookup``, so failover telemetry fires identically and a lost
        range raises the same request-annotated
        :class:`MetadataUnavailableError`.
        """
        if length <= 0:
            return set()
        end = offset + length
        touched: Set[int] = set()
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        for range_index in range(first, last + 1):
            try:
                if self._splits and range_index in self._splits:
                    sub_lo = max(offset, int(range_index * self.range_size))
                    sub_hi = min(end, int((range_index + 1)
                                          * self.range_size))
                    for span_lo, _hi in self._overlapping_subs(
                            range_index, sub_lo, sub_hi):
                        touched.add(self.read_server_of(range_index,
                                                        span_lo))
                else:
                    touched.add(self.read_server_of(range_index))
            except (MetadataUnavailableError, QuorumLostError) as err:
                err.fid = fid
                err.offset = max(offset, int(range_index * self.range_size))
                err.length = (min(end, int((range_index + 1)
                                           * self.range_size))
                              - err.offset)
                raise
        return touched

    # -- lookup ------------------------------------------------------------
    def lookup(self, fid: int, offset: int,
               length: int) -> Tuple[List[MetadataRecord], Set[int]]:
        """Records overlapping [offset, offset+length), clipped to it,
        plus the servers contacted.  Unmapped holes are simply absent.

        Each range in the span is answered by its first live replica, so
        the result never duplicates records across replicas and a dead
        primary costs only the failover to the next copy.
        """
        if length <= 0:
            return [], set()
        end = offset + length
        touched: Set[int] = set()
        found: List[MetadataRecord] = []
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        bisect_left = bisect.bisect_left
        for range_index in range(first, last + 1):
            sub_lo = max(offset, int(range_index * self.range_size))
            sub_hi = min(end, int((range_index + 1) * self.range_size))
            try:
                if self._splits and range_index in self._splits:
                    # Split range: one serving replica per overlapping
                    # sub-range, each answering only its own span.
                    spans = [(self.read_server_of(range_index, span_lo),
                              span_lo, span_hi)
                             for span_lo, span_hi in self._overlapping_subs(
                                 range_index, sub_lo, sub_hi)]
                else:
                    spans = ((self.read_server_of(range_index),
                              sub_lo, sub_hi),)
            except (MetadataUnavailableError, QuorumLostError) as err:
                # Range-level detection, request-level reporting: attach
                # what the caller was actually asking for.
                err.fid = fid
                err.offset = sub_lo
                err.length = sub_hi - sub_lo
                raise
            for server, span_lo, span_hi in spans:
                touched.add(server)
                store = self._stores[server].get(fid)
                if store is None:
                    continue
                starts, recs = store
                lo = bisect_left(starts, span_lo)
                if lo > 0 and recs[lo - 1].end > span_lo:
                    lo -= 1
                # Upper bound by bisect too: iterating a tail *slice*
                # copied O(records-per-server) per lookup.
                hi = bisect_left(starts, span_hi, lo)
                for i in range(lo, hi):
                    rec = recs[i]
                    rec_end = rec.offset + rec.length
                    if rec_end <= span_lo:
                        continue
                    if rec.offset >= span_lo and rec_end <= span_hi:
                        # Fully-covered record: the clip is the identity
                        # and records are frozen, so share instead of
                        # copying.  (The common case — inserts split at
                        # range boundaries, so aligned reads never clip.)
                        found.append(rec)
                    else:
                        found.append(rec.slice(max(rec.offset, span_lo),
                                               min(rec_end, span_hi)))
        found.sort(key=lambda r: r.offset)
        return found, touched

    def records_of(self, fid: int) -> List[MetadataRecord]:
        """All records of a file in offset order (flush path).

        Replicated pieces are identical frozen records, so surviving
        copies collapse in the dedup; ranges whose whole replica set died
        are simply absent (the flush path surfaces those through the
        per-record loss checks instead).  Unreachable servers cannot
        answer, and fenced copies are invisible: a flush or scrub pass
        must never act on records a stale-epoch ex-owner holds.
        """
        seen: Set[MetadataRecord] = set()
        stale = self._stale
        for server, store in enumerate(self._stores):
            if (server in self.failed_servers
                    or server in self.unreachable_servers):
                continue
            entry = store.get(fid)
            if not entry:
                continue
            if not stale:
                seen.update(entry[1])
                continue
            fenced = {ri for ri, members in stale.items()
                      if server in members}
            if not fenced:
                seen.update(entry[1])
            else:
                range_size = self.range_size
                seen.update(r for r in entry[1]
                            if int(r.offset // range_size) not in fenced)
        return sorted(seen, key=lambda r: (r.offset, r.proc_id))

    def server_record_counts(self) -> List[int]:
        """Records per server (for load-balance assertions in tests)."""
        return [sum(len(recs) for _s, recs in store.values())
                for store in self._stores]
