"""Distributed metadata service (§II-B3).

One record per placed segment maps ``(FID, logical offset range)`` to
``(ProcID, VA)`` — Fig. 3's ``M1..M16``.  Records are partitioned into
fixed-width **offset ranges** and the ranges are assigned to servers
round-robin, so (a) no single server owns a whole file's metadata (the
scalability argument against the naive centralised map) and (b) a client
can compute the owning server of any offset locally — one RPC per lookup.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import StorageTier

__all__ = ["MetadataRecord", "MetadataService"]


@dataclass(frozen=True)
class MetadataRecord:
    """Fig. 3's record: FID + offset -> source process + VA (+ locality)."""

    fid: int
    offset: int
    length: int
    proc_id: int
    va: float
    tier: StorageTier
    #: Compute node hosting the segment (meaningful for node-local tiers;
    #: the location-aware read service keys on this, §II-B4).
    node_id: Optional[int] = None

    def __post_init__(self):
        if self.offset < 0 or self.length <= 0:
            raise ValueError(f"invalid record range [{self.offset}, "
                             f"+{self.length})")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def slice(self, start: int, end: int) -> "MetadataRecord":
        """Sub-record for [start, end) ⊆ [offset, end); VA advances too."""
        if not (self.offset <= start < end <= self.end):
            raise ValueError(f"slice [{start}, {end}) outside record "
                             f"[{self.offset}, {self.end})")
        return replace(self, offset=start, length=end - start,
                       va=self.va + (start - self.offset))


class MetadataService:
    """The distributed KV store over all UniviStor servers.

    The functional store is exact (interval lists per (server, fid));
    the *cost* of an operation is returned as the set of servers
    contacted, which the caller prices with the network model.
    """

    def __init__(self, n_servers: int, range_size: float):
        if n_servers < 1:
            raise ValueError(f"need at least one server, got {n_servers}")
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        self.n_servers = n_servers
        self.range_size = float(range_size)
        # server -> fid -> (sorted start offsets, records)
        self._stores: List[Dict[int, Tuple[List[int], List[MetadataRecord]]]] = [
            dict() for _ in range(n_servers)]

    @property
    def record_count(self) -> int:
        return sum(len(recs) for store in self._stores
                   for _starts, recs in store.values())

    # -- partitioning ------------------------------------------------------
    def server_of(self, offset: int) -> int:
        """Owning server of ``offset``: range index round-robin (Fig. 3)."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        return int(offset // self.range_size) % self.n_servers

    def servers_for_range(self, offset: int, length: int) -> Set[int]:
        """All servers owning part of [offset, offset+length)."""
        if length <= 0:
            return set()
        first = int(offset // self.range_size)
        last = int((offset + length - 1) // self.range_size)
        if last - first + 1 >= self.n_servers:
            return set(range(self.n_servers))
        return {(r % self.n_servers) for r in range(first, last + 1)}

    def _split_by_range(self, record: MetadataRecord) -> Iterable[MetadataRecord]:
        """Split a record at range boundaries so each piece has one owner."""
        start = record.offset
        while start < record.end:
            boundary = (int(start // self.range_size) + 1) * self.range_size
            end = min(record.end, int(boundary))
            yield record.slice(start, end)
            start = end

    # -- mutation ----------------------------------------------------------
    def insert(self, record: MetadataRecord) -> Set[int]:
        """Insert (overwriting overlaps); returns servers contacted."""
        touched: Set[int] = set()
        for piece in self._split_by_range(record):
            server = self.server_of(piece.offset)
            touched.add(server)
            self._insert_piece(server, piece)
        return touched

    def insert_many(self, records: Iterable[MetadataRecord]) -> Set[int]:
        touched: Set[int] = set()
        for record in records:
            touched |= self.insert(record)
        return touched

    def _insert_piece(self, server: int, piece: MetadataRecord) -> None:
        starts, recs = self._stores[server].setdefault(
            piece.fid, ([], []))
        # Remove/trim overlapped records (an overwrite supersedes them).
        lo = bisect.bisect_left(starts, piece.offset)
        if lo > 0 and recs[lo - 1].end > piece.offset:
            lo -= 1
        hi = lo
        keep_left: Optional[MetadataRecord] = None
        keep_right: Optional[MetadataRecord] = None
        while hi < len(recs) and recs[hi].offset < piece.end:
            old = recs[hi]
            if old.offset < piece.offset:
                keep_left = old.slice(old.offset, piece.offset)
            if old.end > piece.end:
                keep_right = old.slice(piece.end, old.end)
            hi += 1
        replacement = [r for r in (keep_left, piece, keep_right)
                       if r is not None]
        recs[lo:hi] = replacement
        starts[lo:hi] = [r.offset for r in replacement]

    def delete_file(self, fid: int) -> Set[int]:
        """Drop all records of ``fid``; returns servers contacted."""
        touched = set()
        for server, store in enumerate(self._stores):
            if fid in store:
                touched.add(server)
                del store[fid]
        return touched

    # -- lookup ------------------------------------------------------------
    def lookup(self, fid: int, offset: int,
               length: int) -> Tuple[List[MetadataRecord], Set[int]]:
        """Records overlapping [offset, offset+length), clipped to it,
        plus the servers contacted.  Unmapped holes are simply absent."""
        if length <= 0:
            return [], set()
        end = offset + length
        touched = self.servers_for_range(offset, length)
        found: List[MetadataRecord] = []
        for server in touched:
            store = self._stores[server].get(fid)
            if store is None:
                continue
            starts, recs = store
            lo = bisect.bisect_left(starts, offset)
            if lo > 0 and recs[lo - 1].end > offset:
                lo -= 1
            for rec in recs[lo:]:
                if rec.offset >= end:
                    break
                if rec.end <= offset:
                    continue
                found.append(rec.slice(max(rec.offset, offset),
                                       min(rec.end, end)))
        found.sort(key=lambda r: r.offset)
        return found, touched

    def records_of(self, fid: int) -> List[MetadataRecord]:
        """All records of a file in offset order (flush path)."""
        out: List[MetadataRecord] = []
        for store in self._stores:
            entry = store.get(fid)
            if entry:
                out.extend(entry[1])
        out.sort(key=lambda r: r.offset)
        return out

    def server_record_counts(self) -> List[int]:
        """Records per server (for load-balance assertions in tests)."""
        return [sum(len(recs) for _s, recs in store.values())
                for store in self._stores]
