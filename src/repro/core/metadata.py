"""Distributed metadata service (§II-B3) with optional replication.

One record per placed segment maps ``(FID, logical offset range)`` to
``(ProcID, VA)`` — Fig. 3's ``M1..M16``.  Records are partitioned into
fixed-width **offset ranges** and the ranges are assigned to servers
round-robin, so (a) no single server owns a whole file's metadata (the
scalability argument against the naive centralised map) and (b) a client
can compute the owning server of any offset locally — one RPC per lookup.

Replication (robustness extension): with ``replication >= 2`` every range
is mirrored onto the next ``replication - 1`` servers at ``replica_stride``
steps (a stride of ``servers_per_node`` keeps replicas off the primary's
node, so a node crash never takes a range's whole replica set).  Writes go
to every live replica; a client computes the replica set locally and reads
from the first live member — owner death costs nothing but the failover.
When every replica of a range is dead the range is gone:
:class:`MetadataUnavailableError`.

Recovery (self-healing extension): every accepted insert is also appended
to a **write-ahead journal** on durable shared storage, partitioned by
offset range (each server journals the ranges it owns; the segments
transfer with the range on takeover).  :meth:`recover_server` — driven by
the failure detector through :class:`~repro.core.recovery.RecoveryService`
— reassigns every range that lost a copy with the dead server to surviving
servers and rebuilds the missing copies by replaying the journal, so
lookups route to the new owner instead of failing over per-read forever,
and a range whose *whole* replica set died comes back instead of raising
``MetadataUnavailableError`` until the end of time.

Metadata fast path (perf extension, docs/MODEL.md §9): batched inserts
(:meth:`insert_many` journals per-range batches and applies them grouped
by range), contiguous-record **coalescing** before the journal append,
**merge-on-insert compaction** inside the stores (adjacent contiguous
records of the same writer collapse, bounding the list length every
lookup bisects over), and **journal checkpoint + truncation** (once every
replica of a range is alive to acknowledge, the range's journal folds
into a compacted snapshot, so takeover replay cost stops growing with
session lifetime).  All of it is timing-neutral: the simulated cost
accounting is unchanged, only the simulator's own work shrinks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import StorageTier
from repro.core.errors import DataLossError, QuorumLostError

__all__ = ["MetadataRecord", "MetadataService", "MetadataUnavailableError",
           "QuorumLostError", "coalesce_records", "split_record",
           "apply_insert"]


class MetadataUnavailableError(DataLossError):
    """Every replica of a metadata range has failed — its records are gone.

    A :class:`~repro.core.errors.DataLossError` subclass: losing the map
    to the data is losing the data, and the chaos harness's durability
    invariant treats both identically.
    """


def _mergeable(prev: "MetadataRecord", cur: "MetadataRecord") -> bool:
    """True when ``cur`` is the byte-exact continuation of ``prev``.

    Safe to merge only when the merged record resolves to the same bytes
    as the pair: same file, same writing process, same tier (a VA is only
    meaningful within one layer — contiguous VAs can straddle a layer
    boundary when a log fills exactly to capacity), same node, and both
    the logical offsets *and* the virtual addresses are contiguous.
    """
    return (prev.fid == cur.fid
            and prev.proc_id == cur.proc_id
            and prev.tier is cur.tier
            and prev.node_id == cur.node_id
            and prev.offset + prev.length == cur.offset
            and prev.va + prev.length == cur.va)


def _merge(prev: "MetadataRecord", cur: "MetadataRecord") -> "MetadataRecord":
    return MetadataRecord(prev.fid, prev.offset, prev.length + cur.length,
                          prev.proc_id, prev.va, prev.tier, prev.node_id)


def coalesce_records(
        records: Iterable["MetadataRecord"],
) -> Tuple[List["MetadataRecord"], int]:
    """Merge *immediately consecutive* contiguous records; returns
    ``(coalesced, merges)``.

    Only adjacent pairs in the stream are considered: merging across an
    intervening record could reorder an overwrite (a later overlapping
    record from another process must still supersede exactly the bytes
    it did before).  Streams from one collective write op are per-process
    runs of chunk records, so the common case collapses completely.
    """
    out: List[MetadataRecord] = []
    merges = 0
    for rec in records:
        if out and _mergeable(out[-1], rec):
            out[-1] = _merge(out[-1], rec)
            merges += 1
        else:
            out.append(rec)
    return out, merges


def split_record(record: "MetadataRecord",
                 range_size: float) -> Iterable["MetadataRecord"]:
    """Split a record at range boundaries so each piece has one owner."""
    start = record.offset
    while start < record.end:
        boundary = (int(start // range_size) + 1) * range_size
        end = min(record.end, int(boundary))
        yield record.slice(start, end)
        start = end


def apply_insert(store: Dict[int, Tuple[List[int], List["MetadataRecord"]]],
                 piece: "MetadataRecord", range_size: float,
                 compaction: bool = True) -> None:
    """Insert one range-local piece into a ``fid -> (starts, records)``
    interval store: trim/remove overlapped records (an overwrite
    supersedes them), then — with ``compaction`` — merge the seams the
    insert created, never across a range boundary.

    Shared by the authoritative per-server stores and the client-side
    :class:`~repro.core.location_cache.LocationCache`, so both views hold
    byte-identical record lists by construction.
    """
    starts, recs = store.setdefault(piece.fid, ([], []))
    lo = bisect.bisect_left(starts, piece.offset)
    if lo > 0 and recs[lo - 1].end > piece.offset:
        lo -= 1
    hi = lo
    keep_left: Optional[MetadataRecord] = None
    keep_right: Optional[MetadataRecord] = None
    while hi < len(recs) and recs[hi].offset < piece.end:
        old = recs[hi]
        if old.offset < piece.offset:
            keep_left = old.slice(old.offset, piece.offset)
        if old.end > piece.end:
            keep_right = old.slice(piece.end, old.end)
        hi += 1
    replacement = [r for r in (keep_left, piece, keep_right)
                   if r is not None]
    recs[lo:hi] = replacement
    starts[lo:hi] = [r.offset for r in replacement]
    if compaction:
        # Merge the seams the insert created: recs[lo-1] through the
        # record after the replacement.  Merges never cross a range
        # boundary — replicas hold per-range piece streams, so an
        # in-range merge is identical on every copy (and pieces keep the
        # "one owner per piece" property the partitioning tests pin).
        j = max(lo, 1)
        end_idx = lo + len(replacement)
        while j <= end_idx and j < len(recs):
            prev, cur = recs[j - 1], recs[j]
            if (_mergeable(prev, cur)
                    and int(prev.offset // range_size)
                    == int((cur.end - 1) // range_size)):
                recs[j - 1:j + 1] = [_merge(prev, cur)]
                del starts[j]
                end_idx -= 1
            else:
                j += 1


@dataclass(frozen=True)
class MetadataRecord:
    """Fig. 3's record: FID + offset -> source process + VA (+ locality)."""

    fid: int
    offset: int
    length: int
    proc_id: int
    va: float
    tier: StorageTier
    #: Compute node hosting the segment (meaningful for node-local tiers;
    #: the location-aware read service keys on this, §II-B4).
    node_id: Optional[int] = None

    def __post_init__(self):
        if self.offset < 0 or self.length <= 0:
            raise ValueError(f"invalid record range [{self.offset}, "
                             f"+{self.length})")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def slice(self, start: int, end: int) -> "MetadataRecord":
        """Sub-record for [start, end) ⊆ [offset, end); VA advances too."""
        if not (self.offset <= start < end <= self.offset + self.length):
            raise ValueError(f"slice [{start}, {end}) outside record "
                             f"[{self.offset}, {self.end})")
        # Direct construction: dataclasses.replace re-introspects fields
        # on every call and slice() sits on the lookup/insert hot paths.
        return MetadataRecord(self.fid, start, end - start, self.proc_id,
                              self.va + (start - self.offset), self.tier,
                              self.node_id)


class MetadataService:
    """The distributed KV store over all UniviStor servers.

    The functional store is exact (interval lists per (server, fid));
    the *cost* of an operation is returned as the set of servers
    contacted, which the caller prices with the network model.
    """

    def __init__(self, n_servers: int, range_size: float,
                 replication: int = 1, replica_stride: int = 1,
                 compaction: bool = True, checkpoint_threshold: int = 0,
                 quorum: bool = False):
        if n_servers < 1:
            raise ValueError(f"need at least one server, got {n_servers}")
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if replica_stride < 1:
            raise ValueError(
                f"replica_stride must be >= 1, got {replica_stride}")
        if checkpoint_threshold < 0:
            raise ValueError(f"checkpoint_threshold must be >= 0, got "
                             f"{checkpoint_threshold}")
        self.n_servers = n_servers
        self.range_size = float(range_size)
        self.replication = min(replication, n_servers)
        self.replica_stride = replica_stride
        #: Merge adjacent contiguous same-writer records inside the stores
        #: (never across a range boundary), bounding the per-fid list
        #: length that every lookup bisects over.
        self.compaction = compaction
        #: Fold a range's journal into a compacted checkpoint once it
        #: reaches this many entries *and* every replica is alive to
        #: acknowledge.  0 disables truncation (journal grows unbounded,
        #: the pre-fast-path behaviour).
        self.checkpoint_threshold = checkpoint_threshold
        #: Checkpoint/truncation observability (host-side only).
        self.checkpoints_taken = 0
        self.journal_entries_truncated = 0
        #: Observer called as ``on_checkpoint(range_index, truncated)``
        #: after a journal truncation (telemetry counter wiring).
        self.on_checkpoint: Optional[Callable[[int, int], None]] = None
        #: Majority-quorum mode (CAP-complete failure model): writes need
        #: a majority of the replica set, reads repair lagging copies
        #: instead of skipping past them silently.
        self.quorum = quorum
        #: Servers whose partition is lost (crash injection).
        self.failed_servers: Set[int] = set()
        #: Servers that are alive but cut off by a network partition —
        #: requests to them are lost, so they can neither ack writes nor
        #: serve reads until the partition heals.
        self.unreachable_servers: Set[int] = set()
        #: Quorum/fencing observability (host-side only).
        self.read_repairs = 0
        self.fence_rejections = 0
        #: Observer called as ``on_read_repair(range_index, server)`` when
        #: a read brings a lagging replica current (telemetry wiring).
        self.on_read_repair: Optional[Callable[[int, int], None]] = None
        #: Observer called as ``on_fence_reject(range_index, server)``
        #: when a stale (fenced / lagging) copy is refused as a read or
        #: write target.
        self.on_fence_reject: Optional[Callable[[int, int], None]] = None
        #: Observer called as ``on_failover(range_index, server)`` when a
        #: read is served by a non-primary replica (telemetry wiring).
        self.on_failover: Optional[Callable[[int, int], None]] = None
        # server -> fid -> (sorted start offsets, records)
        self._stores: List[Dict[int, Tuple[List[int], List[MetadataRecord]]]] = [
            dict() for _ in range(n_servers)]
        # Write-ahead journal, partitioned by range: every accepted insert
        # piece, in arrival order.  Models the durable per-server journal
        # segments on shared storage — it survives ``fail_server`` (which
        # only loses the in-memory partition) and is what ``recover_server``
        # replays to rebuild a range on its new owner.
        self._journal: Dict[int, List[MetadataRecord]] = {}
        # Compacted snapshot of everything truncated out of a range's
        # journal.  Replay order is checkpoint first, then the live
        # journal suffix — equivalent to replaying the full history.
        self._checkpoints: Dict[int, List[MetadataRecord]] = {}
        # Ranges whose replica set was rewritten by a takeover.  Absent
        # entries use the computed round-robin set, so the healthy-cluster
        # routing (and its cost accounting) is bit-identical to before.
        self._range_replicas: Dict[int, List[int]] = {}
        # Lease epoch per range (absent -> 0).  Bumped whenever ownership
        # is rewritten by a takeover; a copy written under an older epoch
        # is fenced until rebuilt.
        self._range_epoch: Dict[int, int] = {}
        # range -> servers holding a stale copy: members that missed a
        # quorum write while unreachable (lagging) or whose lease epoch
        # was superseded by a takeover (fenced).  Stale copies never
        # serve reads, never ack writes, and are invisible to
        # :meth:`records_of` until rebuilt from the journal.
        self._stale: Dict[int, Set[int]] = {}

    @property
    def record_count(self) -> int:
        return sum(len(recs) for store in self._stores
                   for _starts, recs in store.values())

    # -- partitioning ------------------------------------------------------
    def server_of(self, offset: int) -> int:
        """Owning server of ``offset``: range index round-robin (Fig. 3)."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        return int(offset // self.range_size) % self.n_servers

    def replica_servers(self, range_index: int) -> List[int]:
        """Replica set of a range, primary first.

        Client-computable from the range index alone on a healthy cluster;
        after a takeover the rewritten set is served from the (replicated)
        assignment table instead.
        """
        override = self._range_replicas.get(range_index)
        if override is not None:
            return list(override)
        out: List[int] = []
        for k in range(self.replication):
            server = (range_index + k * self.replica_stride) % self.n_servers
            if server not in out:
                out.append(server)
        return out

    def read_server_of(self, range_index: int) -> int:
        """First live, reachable, *current* replica of a range — the
        server a client reads from.

        A fenced or lagging copy never answers: with quorum mode a
        reachable one is **read-repaired** (journal replay) before
        selection, without it the copy is skipped.  Raises
        :class:`MetadataUnavailableError` when the whole replica set is
        dead, :class:`QuorumLostError` when live copies exist but none
        is reachable and current; fires :attr:`on_failover` when the
        primary is not the one answering.
        """
        if (self.replication == 1 and not self.failed_servers
                and not self.unreachable_servers and not self._stale):
            # Fast path: unreplicated healthy cluster — the primary *is*
            # the replica set, no list to build.
            return range_index % self.n_servers
        stale = self._stale.get(range_index)
        if stale and self.quorum:
            # Read-repair: bring every reachable lagging copy current
            # from the journal before picking who answers.
            for server in sorted(stale):
                if (server not in self.failed_servers
                        and server not in self.unreachable_servers):
                    self._rebuild_copy(range_index, server)
                    self.read_repairs += 1
                    if self.on_read_repair is not None:
                        self.on_read_repair(range_index, server)
            stale = self._stale.get(range_index)
        replicas = self.replica_servers(range_index)
        for server in replicas:
            if (server in self.failed_servers
                    or server in self.unreachable_servers):
                continue
            if stale and server in stale:
                # Fenced copy without quorum read-repair: it must not
                # answer — its records may predate the current epoch.
                self.fence_rejections += 1
                if self.on_fence_reject is not None:
                    self.on_fence_reject(range_index, server)
                continue
            if server != replicas[0] and self.on_failover is not None:
                self.on_failover(range_index, server)
            return server
        if all(s in self.failed_servers for s in replicas):
            raise MetadataUnavailableError(
                f"metadata range {range_index} lost: all replicas "
                f"{replicas} have failed")
        raise QuorumLostError(
            f"metadata range {range_index} unavailable: no reachable "
            f"current replica in {replicas} (partitioned or fenced)",
            range_index=range_index, acked=0,
            needed=(len(replicas) // 2 + 1) if self.quorum else 1)

    def fail_server(self, server: int) -> None:
        """A server process dies: its partition (all copies it held) is
        gone.  Surviving replicas keep their ranges readable."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"no server {server}")
        self.failed_servers.add(server)
        self._stores[server].clear()

    def set_unreachable(self, server: int) -> None:
        """A live server is cut off by a network partition: it can
        neither ack writes nor serve reads until the link heals."""
        if not 0 <= server < self.n_servers:
            raise ValueError(f"no server {server}")
        self.unreachable_servers.add(server)

    def set_reachable(self, server: int) -> None:
        """The partition healed for ``server``.  Copies that lagged or
        were fenced while it was away stay stale until read-repaired or
        rebuilt by a takeover — reachability is not currency."""
        self.unreachable_servers.discard(server)

    def range_epoch(self, range_index: int) -> int:
        """Current lease epoch of a range (0 until a takeover rewrites
        its ownership)."""
        return self._range_epoch.get(range_index, 0)

    def stale_members(self, range_index: int) -> Set[int]:
        """Servers holding a fenced or lagging copy of the range."""
        return set(self._stale.get(range_index, ()))

    def servers_for_range(self, offset: int, length: int) -> Set[int]:
        """All servers owning part of [offset, offset+length)."""
        if length <= 0:
            return set()
        first = int(offset // self.range_size)
        last = int((offset + length - 1) // self.range_size)
        if last - first + 1 >= self.n_servers:
            return set(range(self.n_servers))
        return {(r % self.n_servers) for r in range(first, last + 1)}

    def _split_by_range(self, record: MetadataRecord) -> Iterable[MetadataRecord]:
        return split_record(record, self.range_size)

    # -- mutation ----------------------------------------------------------
    def _write_ackers(self, range_index: int) -> List[int]:
        """Replica-set members that can ack a write to the range: alive,
        reachable, and current (not fenced).

        With quorum mode the write is rejected
        (:class:`QuorumLostError`) unless a strict majority of the
        *full* replica set can ack — the minority side of a partition
        must not apply a write the majority side could contradict after
        a takeover.  Without quorum any single acker suffices (the
        original any-replica-alive semantics), but a range whose live
        copies are all partitioned away still raises: there is nobody to
        apply the write to.
        """
        replicas = self.replica_servers(range_index)
        if not (self.unreachable_servers or self._stale):
            ackers = [s for s in replicas if s not in self.failed_servers]
        else:
            stale = self._stale.get(range_index, ())
            ackers = [s for s in replicas
                      if s not in self.failed_servers
                      and s not in self.unreachable_servers
                      and s not in stale]
        if not ackers:
            if all(s in self.failed_servers for s in replicas):
                raise MetadataUnavailableError(
                    f"metadata range {range_index} lost: all replicas "
                    f"{replicas} have failed")
            raise QuorumLostError(
                f"metadata range {range_index} unavailable: no reachable "
                f"current replica in {replicas}",
                range_index=range_index, acked=0,
                needed=(len(replicas) // 2 + 1) if self.quorum else 1)
        if self.quorum:
            needed = len(replicas) // 2 + 1
            if len(ackers) < needed:
                raise QuorumLostError(
                    f"metadata range {range_index}: only {len(ackers)} of "
                    f"{len(replicas)} replicas can ack, majority {needed} "
                    f"required", range_index=range_index,
                    acked=len(ackers), needed=needed)
        return ackers

    def _mark_missed(self, range_index: int, ackers: List[int]) -> None:
        """Fence every live member that missed an accepted write: a
        lagging copy must not serve reads or ack writes until rebuilt
        from the journal (read-repair or takeover)."""
        replicas = self.replica_servers(range_index)
        if len(ackers) == len(replicas):
            return
        for server in replicas:
            if server in ackers or server in self.failed_servers:
                continue
            self._stale.setdefault(range_index, set()).add(server)

    def insert(self, record: MetadataRecord) -> Set[int]:
        """Insert (overwriting overlaps); returns servers contacted.

        With replication every ackable replica of the piece's range
        receives a copy; a range whose whole replica set is dead rejects
        the write, and quorum mode additionally rejects writes a
        majority cannot ack (:meth:`_write_ackers`).  Accepted pieces
        are appended to the range's write-ahead journal (after the
        acceptance check: a rejected write must not be resurrected by a
        later takeover replay); live members that missed the write are
        fenced as stale.
        """
        touched: Set[int] = set()
        for piece in self._split_by_range(record):
            range_index = int(piece.offset // self.range_size)
            try:
                ackers = self._write_ackers(range_index)
            except DataLossError as err:
                err.fid = piece.fid
                err.offset = piece.offset
                err.length = piece.length
                raise
            self._journal.setdefault(range_index, []).append(piece)
            for server in ackers:
                touched.add(server)
                self._insert_piece(server, piece)
            if self.unreachable_servers or self._stale:
                self._mark_missed(range_index, ackers)
            self._maybe_checkpoint(range_index)
        return touched

    def insert_many(self, records: Iterable[MetadataRecord],
                    coalesce: bool = False,
                    stats: Optional[Dict[str, int]] = None) -> Set[int]:
        """Batched insert: one journal append per touched range, deduped
        touched-server set, optional contiguous-record coalescing.

        Functionally identical to inserting the records one at a time —
        ranges partition the offset space, so grouping pieces by range
        cannot reorder an overwrite — but the journal takes one
        ``extend`` per range instead of one ``append`` per piece and each
        replica applies its range's pieces in one pass.  When any touched
        range has lost its whole replica set the call falls back to the
        sequential path so the partial-apply semantics of the legacy loop
        (pieces before the dead range stick, then the raise) are
        preserved bit-for-bit.
        """
        if coalesce:
            records, merges = coalesce_records(records)
        else:
            records = list(records)
            merges = 0
        per_range: Dict[int, List[MetadataRecord]] = {}
        n_pieces = 0
        for record in records:
            for piece in self._split_by_range(record):
                per_range.setdefault(int(piece.offset // self.range_size),
                                     []).append(piece)
                n_pieces += 1
        if stats is not None:
            stats["coalesced"] = stats.get("coalesced", 0) + merges
            stats["batches"] = stats.get("batches", 0) + len(per_range)
            stats["pieces"] = stats.get("pieces", 0) + n_pieces
        ackers_by_range: Dict[int, List[int]] = {}
        for range_index in per_range:
            try:
                ackers_by_range[range_index] = self._write_ackers(range_index)
            except DataLossError:
                # Legacy semantics under range loss (and quorum loss):
                # apply sequentially until the failing range rejects the
                # write, preserving the partial-apply the unbatched loop
                # produced bit-for-bit.
                touched = set()
                for record in records:
                    touched |= self.insert(record)
                return touched
        touched = set()
        for range_index, pieces in per_range.items():
            self._journal.setdefault(range_index, []).extend(pieces)
            ackers = ackers_by_range[range_index]
            for server in ackers:
                touched.add(server)
                insert = self._insert_piece
                for piece in pieces:
                    insert(server, piece)
            if self.unreachable_servers or self._stale:
                self._mark_missed(range_index, ackers)
            self._maybe_checkpoint(range_index)
        return touched

    def _insert_piece(self, server: int, piece: MetadataRecord) -> None:
        if self._stale:
            # Fencing enforcement point: a stale-epoch copy refuses the
            # write even if some path routes one here — the rebuilt
            # journal replay is the only way back to currency.
            range_index = int(piece.offset // self.range_size)
            if server in self._stale.get(range_index, ()):
                self.fence_rejections += 1
                if self.on_fence_reject is not None:
                    self.on_fence_reject(range_index, server)
                return
        self._insert_into(self._stores[server], piece)

    def _insert_into(self,
                     store: Dict[int, Tuple[List[int], List[MetadataRecord]]],
                     piece: MetadataRecord) -> None:
        apply_insert(store, piece, self.range_size, self.compaction)

    def compact(self, fid: Optional[int] = None) -> int:
        """Compaction sweep: merge every adjacent contiguous same-writer
        pair (within one range) across all stores; returns merges done.

        Merge-on-insert keeps stores compacted incrementally; the sweep
        covers stores populated while ``compaction`` was off, or after
        bulk mutations, and is what long-lived deployments would run in
        the background.
        """
        merged = 0
        for server, store in enumerate(self._stores):
            if server in self.failed_servers:
                continue
            fids = [fid] if fid is not None else list(store)
            for f in fids:
                entry = store.get(f)
                if not entry:
                    continue
                starts, recs = entry
                j = 1
                while j < len(recs):
                    prev, cur = recs[j - 1], recs[j]
                    if (_mergeable(prev, cur)
                            and int(prev.offset // self.range_size)
                            == int((cur.end - 1) // self.range_size)):
                        recs[j - 1:j + 1] = [_merge(prev, cur)]
                        del starts[j]
                        merged += 1
                    else:
                        j += 1
        return merged

    # -- journal checkpointing ---------------------------------------------
    def _maybe_checkpoint(self, range_index: int) -> None:
        """Truncate a range's journal behind a compacted checkpoint.

        Fires when the live journal reaches ``checkpoint_threshold``
        entries and **every** replica of the range is alive to
        acknowledge the batch (a dead replica has not acked; its rebuild
        keeps the full journal until it is recovered or replaced).  The
        checkpoint is the scratch-replay of (old checkpoint + journal):
        exactly the record list a store holds for the range, so replaying
        checkpoint-then-suffix reproduces what replaying the full history
        would have.  The journal key survives (emptied, not deleted) —
        range ownership is discovered by iterating journal keys.
        """
        threshold = self.checkpoint_threshold
        if threshold <= 0:
            return
        journal = self._journal.get(range_index)
        if not journal or len(journal) < threshold:
            return
        stale = self._stale.get(range_index, ())
        for server in self.replica_servers(range_index):
            if (server in self.failed_servers
                    or server in self.unreachable_servers
                    or server in stale):
                return
        scratch: Dict[int, Tuple[List[int], List[MetadataRecord]]] = {}
        for piece in self._checkpoints.get(range_index, ()):
            self._insert_into(scratch, piece)
        for piece in journal:
            self._insert_into(scratch, piece)
        snapshot: List[MetadataRecord] = []
        for f in sorted(scratch):
            snapshot.extend(scratch[f][1])
        truncated = len(journal)
        self._checkpoints[range_index] = snapshot
        self._journal[range_index] = []
        self.checkpoints_taken += 1
        self.journal_entries_truncated += truncated
        if self.on_checkpoint is not None:
            self.on_checkpoint(range_index, truncated)

    def delete_file(self, fid: int) -> Set[int]:
        """Drop all records of ``fid``; returns servers contacted."""
        touched = set()
        for server, store in enumerate(self._stores):
            if fid in store:
                touched.add(server)
                del store[fid]
        for range_index in list(self._journal.keys() | self._checkpoints.keys()):
            entries = self._journal.get(range_index, [])
            kept = [p for p in entries if p.fid != fid]
            ck = [p for p in self._checkpoints.get(range_index, ())
                  if p.fid != fid]
            if ck:
                self._checkpoints[range_index] = ck
            else:
                self._checkpoints.pop(range_index, None)
            if kept or ck:
                self._journal[range_index] = kept
            elif range_index in self._journal:
                del self._journal[range_index]
        return touched

    # -- recovery (range takeover) -----------------------------------------
    def journal_records(self, range_index: int) -> List[MetadataRecord]:
        """What a takeover must replay for a range, in replay order:
        the compacted checkpoint (if any) followed by the live journal
        suffix.  With truncation enabled this is what bounds replay cost
        for long-lived sessions."""
        checkpoint = self._checkpoints.get(range_index)
        suffix = self._journal.get(range_index, ())
        if checkpoint:
            return list(checkpoint) + list(suffix)
        return list(suffix)

    def recover_server(self, dead: int) -> List[Tuple[int, int]]:
        """Reassign every range that lost a copy with server ``dead``.

        For each journaled range whose replica set includes a failed
        server: keep the surviving members (their copies are already
        current), pick replacement servers round-robin from the live
        cluster, and rebuild each replacement's copy by replaying the
        range's write-ahead journal in arrival order.  Survivors stay at
        the head of the new set, so a range with any live copy keeps
        answering from it and the replay only fills the spare.

        Returns ``(range_index, new_primary)`` for every range whose
        assignment changed.  Idempotent: a second call for the same death
        finds the rewritten sets already free of failed members.

        ``dead`` may also be a *fenced* server (lease expired while
        partitioned): it is excluded the same way, and — being alive —
        is marked stale on every range it loses, so a healed partition
        finds its old lease superseded rather than a range it can still
        serve.  Every ownership rewrite bumps the range's lease epoch.
        """
        if not 0 <= dead < self.n_servers:
            raise ValueError(f"no server {dead}")
        excluded = self.failed_servers | self.unreachable_servers
        actions: List[Tuple[int, int]] = []
        for range_index in sorted(self._journal.keys()
                                  | self._checkpoints.keys()):
            candidates = self.replica_servers(range_index)
            if dead not in candidates:
                continue
            stale = self._stale.get(range_index, ())
            current = [s for s in candidates
                       if s not in excluded and s not in stale]
            need = self.replication - len(current)
            spares: List[int] = []
            for k in range(self.n_servers):
                if len(spares) >= need:
                    break
                server = (range_index + k) % self.n_servers
                if server in excluded or server in current:
                    continue
                spares.append(server)
            for server in spares:
                self._rebuild_copy(range_index, server)
            new_set = current + spares
            if not new_set:
                continue  # whole cluster down for this range: stays lost
            if new_set != candidates:
                # Ownership rewritten: new lease epoch, and every live
                # ex-member is fenced out of its old one.
                self._range_epoch[range_index] = (
                    self._range_epoch.get(range_index, 0) + 1)
                for server in candidates:
                    if (server not in new_set
                            and server not in self.failed_servers):
                        self._stale.setdefault(range_index, set()).add(server)
            self._range_replicas[range_index] = new_set
            actions.append((range_index, new_set[0]))
        return actions

    def _rebuild_copy(self, range_index: int, server: int) -> None:
        """Bring a spare or stale copy current: clear the fence, drop
        whatever the server holds for the range, and replay the journal
        — the full accepted history, missed writes included."""
        members = self._stale.get(range_index)
        if members is not None:
            members.discard(server)
            if not members:
                del self._stale[range_index]
        self._drop_range(server, range_index)
        self._replay(range_index, server)

    def _drop_range(self, server: int, range_index: int) -> None:
        """Discard every record the server holds inside one range
        (inserts split at range boundaries, so records never straddle)."""
        store = self._stores[server]
        lo = int(range_index * self.range_size)
        hi = int((range_index + 1) * self.range_size)
        for fid in list(store):
            _starts, recs = store[fid]
            if not recs or recs[-1].end <= lo or recs[0].offset >= hi:
                continue
            keep = [r for r in recs if r.end <= lo or r.offset >= hi]
            if len(keep) == len(recs):
                continue
            if keep:
                store[fid] = ([r.offset for r in keep], keep)
            else:
                del store[fid]

    def _replay(self, range_index: int, server: int) -> None:
        """Rebuild one range's partition on ``server``: checkpoint first,
        then the journal suffix (equivalent to the full history)."""
        for piece in self._checkpoints.get(range_index, ()):
            self._insert_piece(server, piece)
        for piece in self._journal.get(range_index, ()):
            self._insert_piece(server, piece)

    # -- cost accounting (fast-path helpers) -------------------------------
    def write_target_servers(self, fid: int, offset: int,
                             length: int) -> Set[int]:
        """Servers an insert covering [offset, offset+length) contacts —
        the live replica set of every touched range.

        Client-computable without the records themselves: the batched
        write path prices its aggregated insert per *request* with this,
        reproducing exactly the touched set the per-request insert
        returned.  Raises like :meth:`insert` when a touched range has
        lost its whole replica set.
        """
        if length <= 0:
            return set()
        end = offset + length
        touched: Set[int] = set()
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        for range_index in range(first, last + 1):
            try:
                touched.update(self._write_ackers(range_index))
            except DataLossError as err:
                err.fid = fid
                err.offset = max(offset, int(range_index * self.range_size))
                err.length = (min(end, int((range_index + 1)
                                           * self.range_size))
                              - err.offset)
                raise
        return touched

    def read_servers_for(self, fid: int, offset: int,
                         length: int) -> Set[int]:
        """Servers a :meth:`lookup` over the span would contact, without
        searching the stores — the location-cache hit path.

        Calls :meth:`read_server_of` per range in the same order as
        ``lookup``, so failover telemetry fires identically and a lost
        range raises the same request-annotated
        :class:`MetadataUnavailableError`.
        """
        if length <= 0:
            return set()
        end = offset + length
        touched: Set[int] = set()
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        for range_index in range(first, last + 1):
            try:
                touched.add(self.read_server_of(range_index))
            except (MetadataUnavailableError, QuorumLostError) as err:
                err.fid = fid
                err.offset = max(offset, int(range_index * self.range_size))
                err.length = (min(end, int((range_index + 1)
                                           * self.range_size))
                              - err.offset)
                raise
        return touched

    # -- lookup ------------------------------------------------------------
    def lookup(self, fid: int, offset: int,
               length: int) -> Tuple[List[MetadataRecord], Set[int]]:
        """Records overlapping [offset, offset+length), clipped to it,
        plus the servers contacted.  Unmapped holes are simply absent.

        Each range in the span is answered by its first live replica, so
        the result never duplicates records across replicas and a dead
        primary costs only the failover to the next copy.
        """
        if length <= 0:
            return [], set()
        end = offset + length
        touched: Set[int] = set()
        found: List[MetadataRecord] = []
        first = int(offset // self.range_size)
        last = int((end - 1) // self.range_size)
        bisect_left = bisect.bisect_left
        for range_index in range(first, last + 1):
            sub_lo = max(offset, int(range_index * self.range_size))
            sub_hi = min(end, int((range_index + 1) * self.range_size))
            try:
                server = self.read_server_of(range_index)
            except (MetadataUnavailableError, QuorumLostError) as err:
                # Range-level detection, request-level reporting: attach
                # what the caller was actually asking for.
                err.fid = fid
                err.offset = sub_lo
                err.length = sub_hi - sub_lo
                raise
            touched.add(server)
            store = self._stores[server].get(fid)
            if store is None:
                continue
            starts, recs = store
            lo = bisect_left(starts, sub_lo)
            if lo > 0 and recs[lo - 1].end > sub_lo:
                lo -= 1
            # Upper bound by bisect too: iterating a tail *slice* copied
            # O(records-per-server) per lookup.
            hi = bisect_left(starts, sub_hi, lo)
            for i in range(lo, hi):
                rec = recs[i]
                rec_end = rec.offset + rec.length
                if rec_end <= sub_lo:
                    continue
                if rec.offset >= sub_lo and rec_end <= sub_hi:
                    # Fully-covered record: the clip is the identity and
                    # records are frozen, so share instead of copying.
                    # (The common case — inserts split at range
                    # boundaries, so aligned reads never clip.)
                    found.append(rec)
                else:
                    found.append(rec.slice(max(rec.offset, sub_lo),
                                           min(rec_end, sub_hi)))
        found.sort(key=lambda r: r.offset)
        return found, touched

    def records_of(self, fid: int) -> List[MetadataRecord]:
        """All records of a file in offset order (flush path).

        Replicated pieces are identical frozen records, so surviving
        copies collapse in the dedup; ranges whose whole replica set died
        are simply absent (the flush path surfaces those through the
        per-record loss checks instead).  Unreachable servers cannot
        answer, and fenced copies are invisible: a flush or scrub pass
        must never act on records a stale-epoch ex-owner holds.
        """
        seen: Set[MetadataRecord] = set()
        stale = self._stale
        for server, store in enumerate(self._stores):
            if (server in self.failed_servers
                    or server in self.unreachable_servers):
                continue
            entry = store.get(fid)
            if not entry:
                continue
            if not stale:
                seen.update(entry[1])
                continue
            fenced = {ri for ri, members in stale.items()
                      if server in members}
            if not fenced:
                seen.update(entry[1])
            else:
                range_size = self.range_size
                seen.update(r for r in entry[1]
                            if int(r.offset // range_size) not in fenced)
        return sorted(seen, key=lambda r: (r.offset, r.proc_id))

    def server_record_counts(self) -> List[int]:
        """Records per server (for load-balance assertions in tests)."""
        return [sum(len(recs) for _s, recs in store.values())
                for store in self._stores]
