"""Adaptive metadata hotspot mitigation (docs/MODEL.md §11).

The :class:`HotspotManager` closes the loop the ROADMAP's "millions of
users" story needs: the static round-robin range assignment bottlenecks a
skewed workload on one range owner, so the manager rolls the metadata
service's per-range activity (:meth:`MetadataService.take_heat`) into
online mitigation actions every ``hotspot_interval`` seconds:

* a **write-hot** range (``range_split_threshold`` ops per interval)
  splits into sub-ranges with independent member sets until its fan-out
  covers the active pool (:meth:`MetadataService.split_range`),
* a **read-hot** range re-replicates onto extra members and rotates which
  replica answers (:meth:`MetadataService.set_read_spread`),
* a split range that stays **cold** (below ``range_merge_threshold``) for
  two consecutive intervals merges back,
* when a hot range has exhausted the pool's fan-out, the pool itself
  **grows** (up to ``pool_max_servers``); grown servers idle for two
  intervals are drained and **retired** again.

Every action drains through the metadata service's quorum checks — the
minority side of a partition cannot split, merge, or migrate — and a
refused action is simply deferred to a later tick (``hotspot-deferred``).
State handoff is priced like a takeover: the journal/checkpoint pieces
replayed onto new members become a timed background transfer, and every
layout change conservatively clears the client location caches exactly as
a takeover does.

The tick loop is a normal engine process, so it must let the engine drain
to quiescence: it exits after an idle interval and is restarted by the
metadata service's activity hook on the next recorded operation.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.errors import DataLossError
from repro.sim.engine import Event
from repro.units import GiB

__all__ = ["HotspotManager"]

#: Nominal serialized size of one replayed metadata piece and the
#: bandwidth of the handoff stream — the takeover replay cost model
#: (:mod:`repro.core.recovery`), shared so a split's handoff and a
#: takeover's replay price identically.
_HANDOFF_RECORD_BYTES = 64.0
_HANDOFF_BANDWIDTH = 4.0 * GiB
#: Consecutive cold intervals before a merge / pool shrink.
_COLD_TICKS = 2
#: Idle intervals the loop keeps ticking while splits or grown servers
#: are still outstanding (cold merges and pool shrinks need idle ticks
#: to mature) before it quiesces anyway — the bound keeps a permanently
#: deferred action (e.g. a merge refused for quorum on a dead sub) from
#: ticking the engine forever; the activity hook revives the loop.
_MAX_IDLE_TICKS = 8


class HotspotManager:
    """Heat-driven split/merge/re-replication/pool-elasticity daemon."""

    def __init__(self, system) -> None:
        # ``system`` is a UniviStorServers (typed loosely: import cycle).
        self.system = system
        self.engine = system.engine
        config = system.config
        self.split_threshold = config.range_split_threshold
        self.merge_threshold = config.range_merge_threshold
        self.interval = config.hotspot_interval
        self.pool_max = config.pool_max_servers
        metadata = system.metadata
        metadata.heat_enabled = True
        metadata.on_activity = self._on_activity
        #: range -> consecutive cold intervals (split ranges only).
        self._cold_streak: Dict[int, int] = {}
        #: Consecutive intervals the grown part of the pool stayed idle.
        self._pool_idle_streak = 0
        #: Servers this manager grew (only these are shrink candidates —
        #: the configured base deployment is never drained).
        self.grown_servers: List[int] = []
        #: Action log, newest last: (time, action, range_or_server).
        self.actions: List[tuple] = []
        self._loop: Optional[Event] = None

    # -- lifecycle ---------------------------------------------------------
    def _on_activity(self) -> None:
        """Metadata activity while the tick loop is quiesced: restart it."""
        if self._loop is None or self._loop.triggered:
            self._loop = self.engine.process(self._tick_loop(),
                                             name="hotspot-manager")

    def _tick_loop(self) -> Generator:
        idle = 0
        while True:
            yield self.engine.timeout(self.interval)
            heat = self.system.metadata.take_heat()
            acted = self._act(heat)
            if heat or acted:
                idle = 0
                continue
            # Idle interval: keep ticking while cold merges or pool
            # shrinks can still mature, then quiesce (the activity hook
            # revives the loop on the next recorded operation).
            idle += 1
            metadata = self.system.metadata
            pending = bool(metadata._splits) or bool(self.grown_servers)
            if not pending or idle >= _MAX_IDLE_TICKS:
                return

    # -- decision pass -----------------------------------------------------
    def _act(self, heat: Dict[int, tuple]) -> bool:
        metadata = self.system.metadata
        acted = False
        hot_saturated = False
        for range_index, (writes, reads) in sorted(heat.items()):
            total = writes + reads
            if total >= self.split_threshold:
                self._cold_streak.pop(range_index, None)
                self._pool_idle_streak = 0
                if writes >= reads:
                    did, saturated = self._split_hot(range_index)
                    acted |= did
                    hot_saturated |= saturated
                else:
                    acted |= self._spread_hot(range_index)
            elif (total <= self.merge_threshold
                    and range_index in metadata._splits):
                streak = self._cold_streak.get(range_index, 0) + 1
                self._cold_streak[range_index] = streak
                if streak >= _COLD_TICKS:
                    acted |= self._merge_cold(range_index)
        # Split ranges with *no* recorded activity this interval are cold
        # too — heat dicts only carry touched ranges.
        for range_index in list(metadata._splits):
            if range_index in heat:
                continue
            streak = self._cold_streak.get(range_index, 0) + 1
            self._cold_streak[range_index] = streak
            if streak >= _COLD_TICKS:
                acted |= self._merge_cold(range_index)
        acted |= self._resize_pool(hot_saturated, heat)
        return acted

    def _split_hot(self, range_index: int) -> tuple:
        """Split a write-hot range until its sub count reaches the active
        pool size; returns ``(acted, pool_saturated)``."""
        metadata = self.system.metadata

        def sub_count() -> int:
            subs = metadata._splits.get(range_index)
            return len(subs) if subs else 1

        pool_size = len(metadata.pool_servers())
        acted = False
        while sub_count() < pool_size:
            before = sub_count()
            try:
                moved = metadata.split_range(range_index)
            except DataLossError:
                self.system.count("hotspot-deferred")
                return acted, False
            if sub_count() <= before:
                return acted, False  # cannot split further (width < 2)
            acted = True
            self.system.count("meta-split")
            self.system.telemetry_hook(
                "hotspot-split",
                f"range:{range_index}x{len(metadata._splits[range_index])}",
                0.0)
            self.actions.append((self.engine.now, "split", range_index))
            self._handoff(f"split:range{range_index}", moved)
            self.system.invalidate_location_caches()
        saturated = (len(metadata._splits.get(range_index, ()))
                     >= pool_size > 0)
        return acted, saturated

    def _spread_hot(self, range_index: int) -> bool:
        """Re-replicate a read-hot range and rotate its read replica."""
        metadata = self.system.metadata
        if range_index in metadata._read_spread:
            return False  # already spread; rotation is doing its job
        try:
            moved = metadata.set_read_spread(range_index)
        except DataLossError:
            self.system.count("hotspot-deferred")
            return False
        self.system.count("meta-rereplicate")
        self.system.telemetry_hook("hotspot-rereplicate",
                                   f"range:{range_index}", 0.0)
        self.actions.append((self.engine.now, "rereplicate", range_index))
        if moved:
            self._handoff(f"rereplicate:range{range_index}", moved)
            self.system.invalidate_location_caches()
        return True

    def _merge_cold(self, range_index: int) -> bool:
        metadata = self.system.metadata
        try:
            moved = metadata.merge_range(range_index)
        except DataLossError:
            self.system.count("hotspot-deferred")
            return False
        self._cold_streak.pop(range_index, None)
        metadata._read_spread.pop(range_index, None)
        self.system.count("meta-merge")
        self.system.telemetry_hook("hotspot-merge", f"range:{range_index}",
                                   0.0)
        self.actions.append((self.engine.now, "merge", range_index))
        self._handoff(f"merge:range{range_index}", moved)
        self.system.invalidate_location_caches()
        return True

    # -- pool elasticity ---------------------------------------------------
    def _resize_pool(self, hot_saturated: bool, heat: Dict) -> bool:
        system = self.system
        if hot_saturated and self.pool_max > 0:
            if len(system.metadata.pool_servers()) < self.pool_max:
                new_id = system.grow_pool()
                self.grown_servers.append(new_id)
                self.actions.append((self.engine.now, "grow", new_id))
                return True
            return False
        if not self.grown_servers:
            return False
        if heat:
            self._pool_idle_streak = 0
            return False
        self._pool_idle_streak += 1
        if self._pool_idle_streak < _COLD_TICKS:
            return False
        # The grown part of the pool idled through the streak: drain the
        # newest grown server (LIFO keeps ids contiguous at the top).
        server_id = self.grown_servers[-1]
        moved = system.shrink_pool(server_id)
        if moved is None:
            self.system.count("hotspot-deferred")
            return False
        self.grown_servers.pop()
        self._pool_idle_streak = 0
        self.actions.append((self.engine.now, "shrink", server_id))
        self._handoff(f"shrink:server{server_id}", moved)
        return True

    # -- handoff pricing ---------------------------------------------------
    def _handoff(self, label: str, moved_pieces: int) -> None:
        """Price a layout change's state handoff like a takeover replay:
        the moved journal/checkpoint pieces stream as a timed background
        transfer (the layout switch itself is a metadata RPC round)."""
        if moved_pieces <= 0:
            return
        self.engine.process(self._handoff_cost(label, moved_pieces),
                            name=f"hotspot-handoff:{label}")

    def _handoff_cost(self, label: str, moved_pieces: int) -> Generator:
        t_start = self.engine.now
        nbytes = moved_pieces * _HANDOFF_RECORD_BYTES
        yield self.engine.timeout(nbytes / _HANDOFF_BANDWIDTH
                                  + moved_pieces * 1e-6)
        self.system.telemetry_hook("hotspot-handoff", label, nbytes,
                                   t_start=t_start)
