"""Location-aware read service (§II-B4).

Baseline read path: every read request goes to the co-located server,
which looks up the metadata, fetches the segment (possibly from a remote
node's log) and hands it back — at least one network round trip and a
server-side memory copy per request.

The location-aware service removes both overheads where locality allows:

* segments cached on the **reader's own node** are resolved against the
  server's shared metadata buffer and copied straight out of local
  storage — no server hop, no extra copy;
* segments on the **shared burst buffer** are globally visible, so after
  fetching the metadata the client reads them directly — no
  server-to-server transfer.

Only segments on *other nodes'* local storage still take the server
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.core.config import StorageTier
from repro.core.metadata import (MetadataRecord, MetadataUnavailableError,
                                 QuorumLostError)
from repro.simmpi.comm import Communicator
from repro.simmpi.mpiio import IORequest
from repro.storage.datamodel import CorruptPayload, Extent, ZeroPayload

__all__ = ["ReadService", "ReadBreakdown"]

#: Extra goodput penalty for local reads that are funnelled through the
#: co-located server process (one more memory copy) when the
#: location-aware service is disabled.
_SERVER_COPY_FACTOR = 0.65


@dataclass
class ReadBreakdown:
    """Byte accounting of one collective read (inspectable by tests)."""

    local_bytes: float = 0.0
    remote_bytes: float = 0.0
    bb_bytes: float = 0.0
    pfs_bytes: float = 0.0
    #: ranks that touched each category (stream counts for the flows)
    local_ranks: set = field(default_factory=set)
    remote_ranks: set = field(default_factory=set)
    bb_ranks: set = field(default_factory=set)
    pfs_ranks: set = field(default_factory=set)
    #: reader ranks with node-local hits, counted per node
    local_ranks_by_node: Dict[int, int] = field(default_factory=dict)
    lookups_per_server: Dict[int, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return (self.local_bytes + self.remote_bytes + self.bb_bytes
                + self.pfs_bytes)


class ReadService:
    """Plans and executes collective reads against a file session."""

    def __init__(self, system):
        # ``system`` is a UniviStorServers; typed loosely to avoid an
        # import cycle with repro.core.server.
        self.system = system
        self.machine = system.machine
        self.engine = system.engine

    # -- functional resolution ------------------------------------------------
    def resolve(self, session, record: MetadataRecord) -> List[Extent]:
        """Materialise a metadata record into logical-offset extents.

        Records pointing at a failed node's local storage fall back to
        the resilience replicas (when enabled) or raise
        :class:`~repro.core.resilience.DataLossError`.
        """
        # Failed-node set first: it is almost always empty, which
        # short-circuits past the tier property on the per-record path.
        if (record.node_id in self.system.failed_nodes
                and record.tier.is_node_local):
            return self.resolve_degraded(session, record)
        writer = session.writers.get(record.proc_id)
        if writer is None:
            raise KeyError(
                f"{session.path}: no log for source process {record.proc_id}")
        layer, addr = writer.vas.resolve(record.va)
        pieces = writer.logs[layer].sim_file.read_at(int(addr),
                                                     int(record.length))
        for p in pieces:
            # Checksum verification: rot in the cached log must never be
            # returned as data.  Corrupt segments fall back to a clean
            # copy (replica, then flushed PFS) or raise DataLossError —
            # the durability invariant forbids silent wrong bytes.
            if isinstance(p.payload, CorruptPayload):
                self.system.telemetry_hook(
                    "read-corrupt",
                    f"{session.path}:rank{record.proc_id}",
                    float(record.length))
                return self.resolve_degraded(session, record)
        rebase = record.offset - addr
        return [Extent(int(p.offset + rebase), p.length, p.payload,
                       p.payload_offset) for p in pieces]

    def resolve_degraded(self, session, record: MetadataRecord
                         ) -> List[Extent]:
        """Clean logical extents for a record whose primary copy is
        unusable (its node died, or it failed checksum verification):
        the resilience replica first, then the flushed PFS copy;
        :class:`DataLossError` when no clean copy survives.  The
        scrubber uses the same chain as its repair source.
        """
        from repro.core.resilience import DataLossError
        system = self.system
        stale_notes: list = []
        if system.config.resilience_enabled:
            try:
                return system.resilience.resolve_replica(session, record)
            except DataLossError as err:
                stale_notes.extend(err.stale_provenance)
        # The PFS copy is only authoritative when nothing newer sits
        # unflushed in the cache — repairing from a stale flush would be
        # exactly the silent corruption this path exists to prevent.  The
        # byte-count guard alone is not: a flush that skipped lost
        # records still bumps the counter, so the ladder additionally
        # demands the PFS version map match the authority over the span
        # (version-ordered reads, docs/MODEL.md §12).
        pfs = self.machine.pfs_files
        if (session.flushed_bytes >= session.cached_bytes_written
                and pfs.exists(session.path)):
            pfs_stale = session.pfs_versions.stale_spans(
                session.data_versions, record.offset, record.length)
            if pfs_stale:
                system.count("data-stale-reject")
                stale_notes.extend(pfs_stale)
            else:
                extents = pfs.open(session.path).read_at(record.offset,
                                                         record.length)
                good = sum(e.length for e in extents
                           if not isinstance(e.payload,
                                             (ZeroPayload, CorruptPayload)))
                if good >= record.length:
                    return extents
        message = (
            f"{session.path}: [{record.offset}, +{record.length}) has no "
            f"clean surviving copy (primary on node {record.node_id} dead "
            f"or failed checksum verification)")
        if stale_notes:
            message += ("; stale copies refused: "
                        + "; ".join(s.describe() for s in stale_notes))
        err = DataLossError(
            message, fid=record.fid, rank=record.proc_id,
            node=record.node_id, offset=record.offset,
            length=record.length)
        err.stale_provenance = tuple(stale_notes)
        raise err

    def _pfs_namespace_extents(self, session, req):
        """Serve one request straight from the flushed PFS file, or
        return None when the fallback is not safe.

        Safe only when nothing newer sits unflushed in the cache (the
        same staleness guard as :meth:`resolve_degraded` — a post-flush
        overwrite makes the PFS copy stale and the honest answer is the
        metadata error) and every byte of the span reads back as real
        flushed data, not holes or rot.
        """
        pfs = self.machine.pfs_files
        if (session.flushed_bytes < session.cached_bytes_written
                or not pfs.exists(session.path)):
            return None
        if session.pfs_versions.stale_spans(session.data_versions,
                                            req.offset, req.length):
            # The flushed copy lags a newer write whose metadata is now
            # unreachable — serving it would be a silent stale read.
            self.system.count("data-stale-reject")
            return None
        extents = pfs.open(session.path).read_at(req.offset, req.length)
        good = sum(e.length for e in extents
                   if not isinstance(e.payload,
                                     (ZeroPayload, CorruptPayload)))
        if good < req.length:
            return None
        self.system.telemetry_hook(
            "pfs-namespace-fallback",
            f"{session.path}:[{req.offset},+{req.length})",
            float(req.length))
        return sorted(extents, key=lambda e: e.offset)

    # -- the collective read ----------------------------------------------------
    def read_collective(self, session, comm: Communicator,
                        requests: List[IORequest], program: str
                        ) -> Generator:
        """Timed collective read; returns ``({rank: [Extent]}, breakdown)``."""
        location_aware = self.system.config.location_aware_reads
        metadata = self.system.metadata
        cache = self.system.location_cache
        count = self.system.count
        breakdown = ReadBreakdown()
        results: Dict[int, List[Extent]] = {}
        # keyed (node_id, tier): DRAM and local-SSD hits use their device.
        local_bytes_by_node: Dict[tuple, float] = {}
        remote_bytes_by_source: Dict[int, float] = {}

        failed_nodes = self.system.failed_nodes
        lookups_per_server = breakdown.lookups_per_server
        resolve = self.resolve
        for req in requests:
            if req.length == 0:
                results[req.rank] = []
                continue
            # Location-cache fast path: a tracked file resolves placement
            # locally.  The same per-range metadata RPCs are charged
            # (read_servers_for contacts the identical servers, fires the
            # identical failover telemetry and raises the identical
            # unavailability errors), so timing is unchanged — only the
            # server-side store search is skipped.
            try:
                records = (cache.lookup(session.fid, req.offset, req.length)
                           if cache is not None else None)
                if records is not None:
                    servers = metadata.read_servers_for(session.fid,
                                                        req.offset,
                                                        req.length)
                    count("cache-hit")
                else:
                    if cache is not None:
                        count("cache-miss")
                    records, servers = metadata.lookup(session.fid,
                                                       req.offset,
                                                       req.length)
            except (MetadataUnavailableError, QuorumLostError):
                # PFS namespace fallback: the range's metadata is lost or
                # quorum-unreachable, but if every cached byte has been
                # flushed the PFS file is itself an authoritative
                # offset-addressed namespace — serve the span from it.
                extents = self._pfs_namespace_extents(session, req)
                if extents is None:
                    raise
                breakdown.pfs_bytes += req.length
                breakdown.pfs_ranks.add(req.rank)
                results[req.rank] = extents
                continue
            for s in servers:
                lookups_per_server[s] = lookups_per_server.get(s, 0) + 1
            covered = sum(r.length for r in records)
            if covered < req.length:
                raise ValueError(
                    f"{session.path}: read [{req.offset}, +{req.length}) "
                    f"touches {req.length - covered} unwritten bytes")
            extents: List[Extent] = []
            reader_node = comm.node_of_rank(req.rank)
            for record in records:
                extents.extend(resolve(session, record))
                if (record.node_id in failed_nodes
                        and record.tier.is_node_local):
                    # Fail-over: served from the BB replica.
                    breakdown.bb_bytes += record.length
                    breakdown.bb_ranks.add(req.rank)
                elif record.tier.is_node_local:
                    if record.node_id == reader_node.node_id:
                        key = (reader_node.node_id, record.tier)
                        breakdown.local_bytes += record.length
                        if req.rank not in breakdown.local_ranks:
                            breakdown.local_ranks.add(req.rank)
                            breakdown.local_ranks_by_node[key] = (
                                breakdown.local_ranks_by_node.get(key, 0)
                                + 1)
                        local_bytes_by_node[key] = (
                            local_bytes_by_node.get(key, 0.0)
                            + record.length)
                    else:
                        rkey = (record.node_id, record.tier)
                        breakdown.remote_bytes += record.length
                        breakdown.remote_ranks.add(req.rank)
                        remote_bytes_by_source[rkey] = (
                            remote_bytes_by_source.get(rkey, 0.0)
                            + record.length)
                elif record.tier is StorageTier.SHARED_BB:
                    breakdown.bb_bytes += record.length
                    breakdown.bb_ranks.add(req.rank)
                else:
                    breakdown.pfs_bytes += record.length
                    breakdown.pfs_ranks.add(req.rank)
            extents.sort(key=lambda e: e.offset)
            results[req.rank] = extents

        yield from self._execute_flows(session, comm, breakdown,
                                       local_bytes_by_node,
                                       remote_bytes_by_source, program,
                                       location_aware)
        return results, breakdown

    # -- timing ------------------------------------------------------------
    def _execute_flows(self, session, comm: Communicator,
                       breakdown: ReadBreakdown,
                       local_bytes_by_node: Dict[int, float],
                       remote_bytes_by_source: Dict[int, float],
                       program: str, location_aware: bool) -> Generator:
        machine = self.machine
        net = machine.network
        sched = self.system.scheduler
        timed_io = self.system.timed_io
        flows = []

        # Metadata look-ups: the busiest KV server serialises its queue.
        if breakdown.lookups_per_server:
            busiest = max(breakdown.lookups_per_server.values())
            cost = net.rpc_cost(busiest, serialized=True)
            if not location_aware:
                # Indirection through the co-located server doubles hops.
                cost *= 2.0
            flows.append(self.engine.timeout(cost))

        # Local node-storage reads.  Scheduling efficiency is pooled
        # across nodes (CFS migration averages placements out over a
        # collective; see the same choice in the write path).
        pooled_eff = 1.0
        if local_bytes_by_node:
            effs = [sched.client_efficiency(machine.nodes[nid], program,
                                            "read")
                    for nid, _tier in local_bytes_by_node]
            pooled_eff = sum(effs) / len(effs)
        for (node_id, tier), nbytes in local_bytes_by_node.items():
            node = machine.nodes[node_id]
            ranks_here = breakdown.local_ranks_by_node.get((node_id, tier),
                                                           0)
            if ranks_here == 0:
                continue
            eff = pooled_eff
            if not location_aware:
                eff *= _SERVER_COPY_FACTOR
            device = self.system.tier_device(tier, node)
            if tier.value == "dram":
                # The client cache path bounds the node rate; the device's
                # read_factor (reads skip append bookkeeping) scales this
                # cap inside StorageDevice.read.
                cap = node.spec.dram_cache_bandwidth / ranks_here
            else:
                cap = device.pipe.bandwidth / ranks_here
            flows.append(timed_io(
                lambda device=device, nbytes=nbytes, ranks_here=ranks_here,
                cap=cap, eff=eff, tier=tier: device.read(
                    nbytes / ranks_here, streams=ranks_here,
                    per_stream_cap=cap, efficiency=eff,
                    tag=f"read-local-{tier.value}"),
                f"read-local-{tier.value}"))

        # Remote node-storage reads: remote device + backbone transfer.
        if breakdown.remote_bytes > 0:
            streams = max(1, len(breakdown.remote_ranks))
            per_stream = breakdown.remote_bytes / streams
            for (node_id, tier), nbytes in remote_bytes_by_source.items():
                node = machine.nodes[node_id]
                device = self.system.tier_device(tier, node)
                src_streams = max(1, round(
                    streams * nbytes / breakdown.remote_bytes))
                flows.append(timed_io(
                    lambda device=device, nbytes=nbytes,
                    src_streams=src_streams: device.read(
                        nbytes / src_streams, streams=src_streams,
                        tag="read-remote-src"),
                    "read-remote-src"))
            flows.append(net.transfer(per_stream, streams=streams,
                                      streams_per_node=comm.procs_per_node,
                                      tag="read-remote-net"))

        # Shared burst-buffer reads.
        if breakdown.bb_bytes > 0:
            bb = machine.burst_buffer
            assert bb is not None
            streams = max(1, len(breakdown.bb_ranks))
            per_stream = breakdown.bb_bytes / streams
            cap = bb.client_read_cap(comm.procs_per_node)
            bb_eff = 1.0 if location_aware else _SERVER_COPY_FACTOR
            flows.append(timed_io(
                lambda bb=bb, per_stream=per_stream, streams=streams,
                cap=cap, bb_eff=bb_eff: bb.read(
                    per_stream, streams=streams, per_stream_cap=cap,
                    efficiency=bb_eff, tag="read-bb"),
                "read-bb"))
            if not location_aware:
                # Server-mediated fetch: the payload additionally crosses
                # the network twice (BB -> server -> client); the server
                # copy also throttles the BB stream itself (bb_eff above).
                flows.append(net.transfer(
                    per_stream, streams=streams,
                    streams_per_node=comm.procs_per_node,
                    tag="read-bb-forward"))

        # PFS reads (spilled DHP logs are file-per-process: no N-to-1
        # penalty, but each stream only engages a couple of OSTs).
        if breakdown.pfs_bytes > 0:
            lustre = machine.lustre
            streams = max(1, len(breakdown.pfs_ranks))
            per_stream_bytes = breakdown.pfs_bytes / streams
            cap = min(2 * lustre.spec.ost_bandwidth,
                      lustre.spec.client_node_bandwidth * 2
                      / comm.procs_per_node)
            flows.append(timed_io(
                lambda lustre=lustre, per_stream_bytes=per_stream_bytes,
                streams=streams, cap=cap: lustre.device.read(
                    per_stream_bytes, streams=streams, per_stream_cap=cap,
                    efficiency=lustre.spec.fpp_efficiency(streams),
                    tag="read-pfs"),
                "read-pfs"))

        if flows:
            yield self.engine.all_of(flows)
