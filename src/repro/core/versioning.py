"""Data-plane version/epoch stamping (docs/MODEL.md §12).

The metadata plane got CAP-complete (quorum, lease fencing, range
epochs); the *data* plane's degraded read chain, however, trusted any
copy that passed checksum verification — so after a node crash wiped an
overwrite's only primary, an older replica or flushed PFS copy could be
served silently.  This module supplies the ordering that closes the gap:

* every write stamps an **authority map** (per session) with a
  monotonically increasing per-session write version plus the range
  epoch current at write time;
* every data *copy* (resilience replica log, flushed PFS file) carries a
  **copy map** stamped from the authority at copy time;
* the degraded read chain compares copy against authority per byte — a
  copy holding an older version for any byte of the requested span is
  **stale** and must never be served.

Maps are pure functional bookkeeping: stamping costs no simulated time
and emits no telemetry, so the stamps are observation-neutral for every
configuration (the golden chaos digests are bit-identical).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import List, Tuple

_START = itemgetter(0)
_END = itemgetter(1)

__all__ = ["StaleSpan", "VersionMap", "stamp_with_epochs"]


@dataclass(frozen=True)
class StaleSpan:
    """One byte range where a copy lags the authority (provenance for
    :class:`~repro.core.errors.DataLossError` messages and chaos
    failure-cause reporting)."""

    start: int
    end: int
    have_version: int
    have_epoch: int
    want_version: int
    want_epoch: int

    def describe(self) -> str:
        return (f"[{self.start}, +{self.end - self.start}) holds "
                f"v{self.have_version} (epoch {self.have_epoch}), "
                f"current is v{self.want_version} "
                f"(epoch {self.want_epoch})")


class VersionMap:
    """Interval map ``offset -> (version, epoch)`` with overwrite splice.

    Spans are kept sorted and disjoint; bytes never stamped read back as
    version 0 / epoch 0 (older than any real write, so an unstamped copy
    can never satisfy a stamped authority).
    """

    __slots__ = ("_spans",)

    def __init__(self):
        # [start, end, version, epoch], sorted by start, disjoint.
        self._spans: List[List[int]] = []

    def __len__(self) -> int:
        return len(self._spans)

    def stamp(self, offset: int, length: int, version: int,
              epoch: int = 0) -> None:
        """Record that [offset, offset+length) is at ``version`` of
        ``epoch``, superseding whatever the window held before."""
        if length <= 0:
            return
        start, end = int(offset), int(offset + length)
        spans = self._spans
        # Splice only the overlapped window (spans are sorted and
        # disjoint, so ends are sorted too): sessions accumulate one
        # span per rank-block and a full-list rebuild per stamp turns
        # a 1024-rank collective quadratic.
        i = bisect_right(spans, start, key=_END)   # first span ending past start
        j = bisect_left(spans, end, key=_START, lo=i)  # first span at/after end
        replacement: List[List[int]] = []
        if i < j and spans[i][0] < start:
            s, _e, v, ep = spans[i]
            replacement.append([s, start, v, ep])
        replacement.append([start, end, version, epoch])
        if i < j and spans[j - 1][1] > end:
            _s, e, v, ep = spans[j - 1]
            replacement.append([end, e, v, ep])
        spans[i:j] = replacement

    def spans(self, offset: int, length: int
              ) -> List[Tuple[int, int, int, int]]:
        """Stamped sub-spans overlapping the window, clipped to it, as
        ``(start, end, version, epoch)`` tuples.  Gaps are omitted."""
        if length <= 0:
            return []
        start, end = int(offset), int(offset + length)
        spans = self._spans
        out: List[Tuple[int, int, int, int]] = []
        for idx in range(bisect_right(spans, start, key=_END), len(spans)):
            s, e, v, ep = spans[idx]
            if s >= end:
                break
            out.append((max(s, start), min(e, end), v, ep))
        return out

    def copy_from(self, authority: "VersionMap", offset: int,
                  length: int) -> None:
        """Stamp this (copy) map over the window with the authority's
        current spans — "this copy now reflects what the authority says
        those bytes are".  Used at copy time (replication, flush
        materialisation, scrub repair)."""
        for s, e, v, ep in authority.spans(offset, length):
            self.stamp(s, e - s, v, ep)

    def stale_spans(self, authority: "VersionMap", offset: int,
                    length: int) -> List[StaleSpan]:
        """Byte ranges where this copy is older than the authority.

        Every byte the authority has stamped inside the window must be
        covered by this map at the same (or newer) version; unstamped
        copy bytes count as version 0.  Authority-unstamped bytes demand
        nothing (nothing was ever written there)."""
        stale: List[StaleSpan] = []
        for a_s, a_e, want_v, want_ep in authority.spans(offset, length):
            cursor = a_s
            for c_s, c_e, have_v, have_ep in self.spans(a_s, a_e - a_s):
                if c_s > cursor:
                    stale.append(StaleSpan(cursor, c_s, 0, 0,
                                           want_v, want_ep))
                if have_v < want_v:
                    stale.append(StaleSpan(c_s, c_e, have_v, have_ep,
                                           want_v, want_ep))
                cursor = c_e
            if cursor < a_e:
                stale.append(StaleSpan(cursor, a_e, 0, 0, want_v, want_ep))
        return stale

    def max_version(self) -> int:
        return max((v for _s, _e, v, _ep in self._spans), default=0)


def stamp_with_epochs(vmap: VersionMap, metadata, offset: int,
                      length: int, version: int) -> None:
    """Stamp an authority window with ``version``, splitting it at
    metadata range boundaries so every sub-span carries the range epoch
    current at stamp time (``metadata`` is a
    :class:`~repro.core.metadata.MetadataService`)."""
    if length <= 0:
        return
    range_size = metadata.range_size
    end = offset + length
    first = int(offset // range_size)
    last = int((end - 1) // range_size)
    # Coalesce consecutive ranges sharing an epoch into one stamp: in
    # the common case (no takeover ever bumped an epoch in the window)
    # a multi-MiB request costs one splice, not one per 64 KiB range.
    run_start = offset
    run_epoch = metadata.range_epoch(first)
    for range_index in range(first + 1, last + 1):
        epoch = metadata.range_epoch(range_index)
        if epoch == run_epoch:
            continue
        hi = int(range_index * range_size)
        vmap.stamp(run_start, hi - run_start, version, run_epoch)
        run_start, run_epoch = hi, epoch
    vmap.stamp(run_start, end - run_start, version, run_epoch)
