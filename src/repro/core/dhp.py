"""Distributed and Hierarchical data Placement (§II-B1).

Each (file, process) pair owns one log per storage layer.  Writes append
into the current layer's log until it (or its backing device) runs out of
space, then spill to the next layer — transforming the application's
shared-file pattern into file-per-process logs spread over the hierarchy,
exactly Fig. 2.

A log's space is a sequence of fixed-size **chunks**; data is appended
inside a chunk log-structured.  A **free-chunk stack** records reusable
chunk IDs: a fully dead chunk (all its bytes overwritten or deleted) is
pushed back and reused before fresh chunks are taken.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import StorageTier
from repro.core.va import VirtualAddressSpace
from repro.storage.datamodel import Payload
from repro.storage.device import CapacityError, StorageDevice
from repro.storage.posix import SimFile

__all__ = ["Chunk", "LogFile", "PlacedSegment", "DHPWriter", "LogFullError"]


class LogFullError(RuntimeError):
    """The log (or its device) cannot hold any more data."""


@dataclass(frozen=True)
class Chunk:
    """Descriptor of one log chunk (exposed for inspection/tests)."""

    chunk_id: int
    used: float
    live: float


@dataclass(frozen=True)
class PlacedSegment:
    """Where one contiguous run of logical file bytes physically landed."""

    rank: int
    logical_offset: int
    length: int
    layer: int
    tier: StorageTier
    va: float
    physical_address: float

    @property
    def logical_end(self) -> int:
        return self.logical_offset + self.length


class LogFile:
    """One process's log on one storage layer.

    ``capacity`` bounds the log (the c/p rule); ``device`` is the capacity
    ledger actually charged chunk by chunk — a log may fail *before* its
    own bound if the device runs dry (other processes' logs compete for
    the same DRAM/BB space).  ``sim_file`` holds the real bytes.
    """

    def __init__(self, tier: StorageTier, capacity: float, chunk_size: float,
                 sim_file: SimFile, device: Optional[StorageDevice] = None):
        if capacity <= 0:
            raise ValueError(f"log capacity must be positive, got {capacity}")
        if chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self.tier = tier
        self.capacity = float(capacity)
        self.chunk_size = float(chunk_size)
        self.sim_file = sim_file
        self.device = device
        self.max_chunks = (math.inf if capacity == math.inf
                           else max(1, int(capacity // chunk_size)))
        #: Bytes appended per allocated chunk, indexed by chunk id.
        self._chunk_used: List[float] = []
        #: Live (not-yet-freed) bytes per chunk.
        self._chunk_live: List[float] = []
        self._free_stack: List[int] = []
        self._active: Optional[int] = None  # chunk being appended to
        self.bytes_written = 0.0
        self.bytes_live = 0.0

    # -- queries ---------------------------------------------------------
    @property
    def allocated_chunks(self) -> int:
        return len(self._chunk_used)

    @property
    def free_stack(self) -> List[int]:
        return list(self._free_stack)

    def chunk(self, chunk_id: int) -> Chunk:
        return Chunk(chunk_id, self._chunk_used[chunk_id],
                     self._chunk_live[chunk_id])

    def remaining_in_log(self) -> float:
        """Space the log could still accept (ignoring device pressure)."""
        if self.max_chunks is math.inf:
            return math.inf
        remaining = 0.0
        if self._active is not None:
            remaining += self.chunk_size - self._chunk_used[self._active]
        fresh = self.max_chunks - self.allocated_chunks
        remaining += (fresh + len(self._free_stack)) * self.chunk_size
        return remaining

    # -- allocation -------------------------------------------------------
    def _take_chunk(self) -> int:
        """Pop a free chunk or mint a fresh one; charges the device."""
        if self._free_stack:
            cid = self._free_stack.pop()
            self._chunk_used[cid] = 0.0
            self._chunk_live[cid] = 0.0
            return cid
        if self.allocated_chunks >= self.max_chunks:
            raise LogFullError(f"log on {self.tier.value} is full")
        if self.device is not None:
            try:
                self.device.allocate(self.chunk_size)
            except CapacityError as err:
                raise LogFullError(str(err)) from None
        self._chunk_used.append(0.0)
        self._chunk_live.append(0.0)
        return self.allocated_chunks - 1

    def append(self, length: int, payload: Payload,
               payload_offset: int = 0) -> List[Tuple[float, int]]:
        """Append up to ``length`` bytes; returns [(physical_address, run_length)].

        Contiguous fresh chunks produce a single run; chunks reused from
        the free stack fragment the append.  The append is *partial* when
        the log (or its device) runs out of space: the returned runs sum
        to what actually landed here and the caller spills the remainder
        to the next layer (Fig. 2).  An already-full log returns ``[]``.
        """
        if length <= 0:
            raise ValueError(f"append length must be positive, got {length}")
        runs: List[Tuple[float, int]] = []
        placed = 0
        while placed < length:
            if self._active is None:
                # Fast path: with no reusable chunks, a large append takes
                # a contiguous run of fresh chunks in one batch (a single
                # device charge and a single extent) instead of looping
                # chunk by chunk — O(1) per append instead of O(chunks).
                if not self._free_stack:
                    batch = self._take_fresh_batch(length - placed)
                    if batch is not None:
                        first, n_chunks = batch
                        take = int(min(length - placed,
                                       n_chunks * self.chunk_size))
                        addr = first * self.chunk_size
                        self._record_run(runs, addr, take, payload,
                                         payload_offset + placed)
                        placed += take
                        # Account per-chunk usage for the batch.
                        full, rem = divmod(take, int(self.chunk_size))
                        for i in range(n_chunks):
                            used = (self.chunk_size if i < full
                                    else (rem if i == full else 0.0))
                            self._chunk_used[first + i] = used
                            self._chunk_live[first + i] = used
                        last = first + n_chunks - 1
                        if self._chunk_used[last] < self.chunk_size:
                            self._active = last
                        continue
                try:
                    self._active = self._take_chunk()
                except LogFullError:
                    break
            used = self._chunk_used[self._active]
            space = self.chunk_size - used
            if space <= 0:
                self._active = None
                continue
            take = int(min(space, length - placed))
            addr = self._active * self.chunk_size + used
            self._record_run(runs, addr, take, payload,
                             payload_offset + placed)
            self._chunk_used[self._active] += take
            self._chunk_live[self._active] += take
            placed += take
            if self._chunk_used[self._active] >= self.chunk_size:
                self._active = None
        return runs

    def _record_run(self, runs: List[Tuple[float, int]], addr: float,
                    take: int, payload: Payload, payload_offset: int) -> None:
        """Write bytes and extend/append the physical run list."""
        if runs and runs[-1][0] + runs[-1][1] == addr:
            prev_addr, prev_len = runs[-1]
            runs[-1] = (prev_addr, prev_len + take)
        else:
            runs.append((addr, take))
        self.sim_file.write_at(int(addr), take, payload, payload_offset)
        self.bytes_written += take
        self.bytes_live += take

    def _take_fresh_batch(self, nbytes: int) -> Optional[Tuple[int, int]]:
        """Allocate up to ceil(nbytes/chunk) fresh chunks contiguously.

        Returns (first_chunk_id, count) or ``None`` when no fresh chunk
        can be allocated (log bound or device pressure); partial batches
        are fine — the caller loops.
        """
        want = max(1, math.ceil(nbytes / self.chunk_size))
        if self.max_chunks is not math.inf:
            want = min(want, int(self.max_chunks - self.allocated_chunks))
            if want <= 0:
                return None
        if self.device is not None:
            # Charge what the device can actually hold.
            can = int(self.device.available // self.chunk_size)
            want = min(want, can)
            if want <= 0:
                return None
            self.device.allocate(want * self.chunk_size)
        first = self.allocated_chunks
        self._chunk_used.extend([0.0] * want)
        self._chunk_live.extend([0.0] * want)
        return first, want

    def free_segment(self, physical_address: float, length: int) -> None:
        """Mark bytes dead; fully dead chunks go back on the free stack."""
        if length <= 0:
            return
        remaining = length
        addr = physical_address
        while remaining > 0:
            cid = int(addr // self.chunk_size)
            if cid >= self.allocated_chunks:
                raise ValueError(
                    f"free of unallocated chunk {cid} (address {addr})")
            in_chunk = min(remaining,
                           self.chunk_size - (addr - cid * self.chunk_size))
            self._chunk_live[cid] -= in_chunk
            self.bytes_live -= in_chunk
            if self._chunk_live[cid] < -1e-6:
                raise ValueError(f"chunk {cid} live bytes went negative")
            if (self._chunk_live[cid] <= 1e-6
                    and self._chunk_used[cid] >= self.chunk_size - 1e-6
                    and cid != self._active):
                # Chunk fully written and fully dead: reusable (§II-B1).
                if cid not in self._free_stack:
                    self._free_stack.append(cid)
            addr += in_chunk
            remaining -= in_chunk

    def read_runs(self, runs: Sequence[Tuple[float, int]]):
        """Materialise extents for physical runs (for the read service)."""
        out = []
        for addr, length in runs:
            out.extend(self.sim_file.read_at(int(addr), int(length)))
        return out


class DHPWriter:
    """DHP for one (file, rank): logs across layers + spill logic."""

    def __init__(self, rank: int, vas: VirtualAddressSpace,
                 logs: Sequence[LogFile]):
        if len(logs) != vas.layers:
            raise ValueError("one log per VA layer required")
        for layer, log in enumerate(logs):
            if log.tier is not vas.tier_of_layer(layer):
                raise ValueError(
                    f"log {layer} tier {log.tier} != VA tier "
                    f"{vas.tier_of_layer(layer)}")
        self.rank = rank
        self.vas = vas
        self.logs = list(logs)
        #: Index of the shallowest layer that may still accept data; once
        #: a layer rejects an append the writer never returns to it (logs
        #: are append-only until chunks are freed).
        self._spill_level = 0

    def write(self, logical_offset: int, length: int, payload: Payload,
              payload_offset: int = 0) -> List[PlacedSegment]:
        """Place a logical write, spilling across layers as needed."""
        if length <= 0:
            raise ValueError(f"write length must be positive, got {length}")
        segments: List[PlacedSegment] = []
        placed = 0
        layer = self._spill_level
        while placed < length:
            if layer >= len(self.logs):
                raise LogFullError(
                    f"rank {self.rank}: data exhausted all "
                    f"{len(self.logs)} layers")
            log = self.logs[layer]
            if log.device is not None and not log.device.accepts_placement:
                # Failed or degraded tier: spill straight past it without
                # raising ``_spill_level`` — a transient brownout should
                # not permanently retire the layer (graceful degradation).
                layer += 1
                continue
            runs = log.append(length - placed, payload,
                              payload_offset + placed)
            for addr, run_len in runs:
                segments.append(PlacedSegment(
                    rank=self.rank,
                    logical_offset=logical_offset + placed,
                    length=run_len,
                    layer=layer,
                    tier=log.tier,
                    va=self.vas.va(layer, addr),
                    physical_address=addr,
                ))
                placed += run_len
            if placed < length:
                # This layer is out of space: spill downward (Fig. 2).
                layer += 1
                self._spill_level = max(self._spill_level, layer)
        return segments

    def free(self, segment: PlacedSegment) -> None:
        """Release a previously placed segment (overwrite/delete path)."""
        self.logs[segment.layer].free_segment(segment.physical_address,
                                              segment.length)

    def bytes_per_layer(self) -> List[float]:
        return [log.bytes_live for log in self.logs]
