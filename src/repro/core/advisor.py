"""Adaptive, usage-driven data placement (§V future work).

The paper's conclusions name "adaptive and proactive placement of data
based on data usage patterns" as planned work.  The observation: DRAM is
the scarcest tier, and a checkpoint stream that is written once and never
read back before its flush wastes it — while workflow files that a
consumer re-reads belong there.

The advisor groups files into **streams** (path with trailing step/index
digits stripped: ``/pfs/vpic_step3.h5`` → ``/pfs/vpic_step#.h5``), tracks
whether past files of each stream were read from the cache, and reorders
a new file's caching tiers accordingly:

* stream has history and was **never** cache-read → demote node-local
  tiers to the end of the spill order (shared tiers first), keeping DRAM
  free for data that earns it;
* stream was cache-read (or has no history yet) → keep the configured
  order (optimism: first files of a stream stay fast).

Enable with ``UniviStorConfig(adaptive_placement=True)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import StorageTier

__all__ = ["StreamStats", "PlacementAdvisor"]

_STEP_DIGITS = re.compile(r"\d+")


def stream_key(path: str) -> str:
    """Collapse trailing step/index digits: one key per file stream."""
    return _STEP_DIGITS.sub("#", path)


@dataclass
class StreamStats:
    """Observed behaviour of one file stream."""

    files_written: int = 0
    files_cache_read: int = 0
    bytes_written: float = 0.0
    bytes_cache_read: float = 0.0

    @property
    def read_ratio(self) -> float:
        if self.files_written == 0:
            return 0.0
        return self.files_cache_read / self.files_written

    @property
    def looks_write_once(self) -> bool:
        """History says: written, closed, never consumed from the cache."""
        return self.files_written >= 2 and self.files_cache_read == 0


class PlacementAdvisor:
    """Per-stream usage statistics + tier-order advice."""

    def __init__(self):
        self._stats: Dict[str, StreamStats] = {}
        #: paths whose cache reads were already counted (once per file).
        self._read_seen: Dict[str, bool] = {}

    def stats_for(self, path: str) -> StreamStats:
        key = stream_key(path)
        stats = self._stats.get(key)
        if stats is None:
            stats = StreamStats()
            self._stats[key] = stats
        return stats

    # -- observation hooks (called by the driver) ----------------------------
    def note_write_close(self, path: str, nbytes: float) -> None:
        """A written file closed: one more file of its stream."""
        stats = self.stats_for(path)
        stats.files_written += 1
        stats.bytes_written += nbytes
        self._read_seen.setdefault(path, False)

    def note_cache_read(self, path: str, nbytes: float) -> None:
        """Cached data of ``path`` was read back before deletion."""
        stats = self.stats_for(path)
        if not self._read_seen.get(path, False):
            self._read_seen[path] = True
            stats.files_cache_read += 1
        stats.bytes_cache_read += nbytes

    # -- advice ---------------------------------------------------------------
    def advise_tiers(self, path: str,
                     configured: Tuple[StorageTier, ...]
                     ) -> Tuple[StorageTier, ...]:
        """Possibly reorder the caching tiers for a new file of ``path``."""
        stats = self._stats.get(stream_key(path))
        if stats is None or not stats.looks_write_once:
            return configured
        shared = tuple(t for t in configured if t.is_shared)
        local = tuple(t for t in configured if t.is_node_local)
        return shared + local

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Stream statistics snapshot (for reporting and tests)."""
        return {key: {"files_written": s.files_written,
                      "files_cache_read": s.files_cache_read,
                      "read_ratio": s.read_ratio,
                      "write_once": s.looks_write_once}
                for key, s in self._stats.items()}
