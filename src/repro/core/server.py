"""The UniviStor server program (§II-A).

UniviStor servers run as a separate parallel program on every compute node
of the job (``servers_per_node`` each, default 2 to exploit both NUMA
sockets, §III-A).  They collectively provide:

* the **data caching service** — per-(file, rank) DHP logs on the
  configured tiers (:class:`FileSession`),
* the **distributed metadata service** (:class:`repro.core.metadata`),
* the **server-side flush service** (:mod:`repro.core.flush`),
* **connection management** — clients attach in ``MPI_Init`` and detach in
  ``MPI_Finalize``,
* the **workflow lock service** (§II-E) and the **interference-aware
  scheduler** (§II-C).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.cluster.node import ComputeNode
from repro.cluster.topology import Machine
from repro.core.config import StorageTier, UniviStorConfig
from repro.core.dhp import DHPWriter, LogFile
from repro.core.metadata import MetadataService
from repro.core.scheduler import SchedulerService
from repro.core.va import VirtualAddressSpace
from repro.core.versioning import VersionMap
from repro.core.workflow import WorkflowManager
from repro.sim.engine import Engine, Event
from repro.simmpi.comm import Communicator
from repro.storage.device import StorageDevice
from repro.storage.posix import FileStore

__all__ = ["FileSession", "UniviStorServers"]

SERVER_PROGRAM = "univistor-server"


class FileSession:
    """Server-side state for one logical shared file."""

    def __init__(self, system: "UniviStorServers", fid: int, path: str):
        self.system = system
        self.fid = fid
        self.path = path
        #: The communicator that produced the data (set at first write
        #: open); readers from other applications resolve ProcIDs against
        #: this communicator's placement — the Fig. 1 data-sharing path.
        self.writer_comm: Optional[Communicator] = None
        self.writers: Dict[int, DHPWriter] = {}
        self.bytes_written = 0.0
        #: Cumulative bytes written into *cache* tiers (monotonic — an
        #: overwrite counts again, so a later flush knows there is fresh
        #: data to push even though live bytes did not grow).
        self.cached_bytes_written = 0.0
        #: Same, restricted to volatile (node-local) tiers, for the
        #: resilience replication pass.
        self.volatile_bytes_written = 0.0
        #: Completion event of the most recent server-side flush.
        self.flush_event: Optional[Event] = None
        self.flushed_bytes = 0.0
        #: Data-plane version ordering (docs/MODEL.md §12).  The
        #: *authority* map records, per byte, the newest write version
        #: (a per-session counter bumped once per collective write op)
        #: plus the metadata range epoch current at write time.  Each
        #: data *copy* — the per-rank resilience replica log and the
        #: flushed PFS file — carries its own map stamped from the
        #: authority at copy time; the degraded read chain refuses any
        #: copy whose map lags the authority over the requested span.
        self.write_version = 0
        self.data_versions = VersionMap()
        self.replica_versions: Dict[int, VersionMap] = {}
        self.pfs_versions = VersionMap()
        #: Metadata ranges whose owner was fenced/taken over while
        #: ``data_quorum >= 2`` — scrub refreshes their data copies from
        #: the surviving primaries (epoch-aware re-replication).
        self.suspect_ranges: set = set()

    def replica_map(self, rank: int) -> VersionMap:
        """The version map of ``rank``'s replica log (lazily created)."""
        vmap = self.replica_versions.get(rank)
        if vmap is None:
            vmap = self.replica_versions[rank] = VersionMap()
        return vmap

    # -- DHP plumbing ----------------------------------------------------
    def writer_for(self, comm: Communicator, rank: int) -> DHPWriter:
        """Get (lazily creating) the DHP writer of ``rank``."""
        if self.writer_comm is None:
            self.writer_comm = comm
        writer = self.writers.get(rank)
        if writer is None:
            writer = self.system._make_writer(self, comm, rank)
            self.writers[rank] = writer
        return writer

    def cached_bytes_per_tier(self) -> Dict[StorageTier, float]:
        """Live bytes per tier across all ranks' logs."""
        out: Dict[StorageTier, float] = {}
        for writer in self.writers.values():
            for log in writer.logs:
                out[log.tier] = out.get(log.tier, 0.0) + log.bytes_live
        return out

    def node_of_proc(self, proc_id: int) -> ComputeNode:
        if self.writer_comm is None:
            raise RuntimeError(f"{self.path}: no writer has opened this file")
        return self.writer_comm.node_of_rank(proc_id)


class UniviStorServers:
    """The deployed server program plus its collective services."""

    def __init__(self, machine: Machine, config: UniviStorConfig):
        self.machine = machine
        self.engine: Engine = machine.engine
        self.config = config
        self.program = SERVER_PROGRAM
        for tier in config.cache_tiers:
            self._check_tier_available(tier)
        machine.register_program(self.program,
                                 len(machine.nodes) * config.servers_per_node,
                                 kind="server",
                                 procs_per_node=config.servers_per_node)
        self.total_servers = len(machine.nodes) * config.servers_per_node
        # Replica stride of servers_per_node puts each metadata copy on a
        # different node than its primary, so one node crash never wipes
        # a range's whole replica set.
        self.metadata = MetadataService(
            self.total_servers, config.metadata_range_size,
            replication=config.metadata_replication,
            replica_stride=(config.servers_per_node
                            if self.total_servers > config.servers_per_node
                            else 1),
            checkpoint_threshold=config.journal_checkpoint,
            quorum=config.meta_quorum)
        self.metadata.on_failover = self._note_metadata_failover
        self.metadata.on_checkpoint = self._note_journal_checkpoint
        self.metadata.on_read_repair = self._note_read_repair
        self.metadata.on_fence_reject = self._note_fence_reject
        # Client-side location cache (metadata fast path, §9): tracked
        # files resolve read placement locally; write-through plus the
        # invalidation hooks (overwrite / flush / delete / takeover)
        # keep it a byte-identical mirror of the authoritative stores.
        from repro.core.location_cache import LocationCache
        self.location_cache = (
            LocationCache(config.metadata_range_size)
            if config.location_cache else None)
        self.scheduler = SchedulerService(machine, config, self.program)
        self.workflow = WorkflowManager(self.engine)
        self._sessions: Dict[str, FileSession] = {}
        self._fids: Dict[str, int] = {}
        self.connected_clients: Dict[str, int] = {}
        #: Per-client-program shared-BB byte budgets (workload engine
        #: reservations); consulted by the c/p rule when
        #: ``config.bb_quota_enforced``.
        self.bb_quota: Dict[str, float] = {}
        #: Nodes whose local storage has been lost (resilience testing).
        self.failed_nodes: set = set()
        #: Server processes that have crashed (fault injection).
        self.failed_servers: set = set()
        #: Server processes that are alive but cut off by a network
        #: partition (fault injection; healable).
        self.partitioned_servers: set = set()
        #: Telemetry sink, attached by the Simulation facade.
        self.telemetry = None
        # Collective services (imported here to avoid module cycles).
        from repro.core.advisor import PlacementAdvisor
        from repro.core.flush import FlushService
        from repro.core.health import HealthMonitor
        from repro.core.read_service import ReadService
        from repro.core.recovery import RecoveryService, ScrubService
        from repro.core.resilience import ResilienceService
        self.read_service = ReadService(self)
        self.flush_service = FlushService(self)
        self.resilience = ResilienceService(self)
        self.advisor = PlacementAdvisor()
        # Self-healing services (all off by default; UniviStorConfig
        # .hardened() turns the full detection -> takeover -> scrub
        # pipeline on).  Construction order matters: the recovery service
        # registers its callbacks on the health monitor.
        self.health = HealthMonitor(self) if config.health_enabled else None
        self.scrub = ScrubService(self) if config.scrub_enabled else None
        self.recovery = (RecoveryService(self) if config.recovery_enabled
                         else None)
        # Adaptive hotspot mitigation (docs/MODEL.md §11): heat-driven
        # online range split/merge, read-hot re-replication, and an
        # elastic metadata server pool.
        from repro.core.hotspot import HotspotManager
        self.hotspot = (HotspotManager(self) if config.hotspot_enabled
                        else None)
        if config.resilience_enabled:
            self._check_tier_available(StorageTier.SHARED_BB)
        if config.data_quorum >= 2:
            # The synchronous second copy lands on the shared BB — the
            # quorum is meaningless without a second failure domain.
            self._check_tier_available(StorageTier.SHARED_BB)

    def telemetry_hook(self, op: str, path: str, nbytes: float,
                       t_start: Optional[float] = None) -> None:
        """Record a server-side operation if a telemetry sink is attached."""
        if self.telemetry is not None:
            self.telemetry.record(app="univistor-server", op=op, path=path,
                                  t_start=self.engine.now if t_start is None
                                  else t_start,
                                  nbytes=nbytes, driver="univistor")

    def _note_metadata_failover(self, range_index: int, server: int) -> None:
        self.telemetry_hook("metadata-failover",
                            f"range:{range_index}->server:{server}", 0.0)

    def _note_journal_checkpoint(self, range_index: int,
                                 truncated: int) -> None:
        self.count("journal-checkpoint")
        self.count("journal-truncated-entries", truncated)

    def _note_read_repair(self, range_index: int, server: int) -> None:
        self.count("meta-read-repair")

    def _note_fence_reject(self, range_index: int, server: int) -> None:
        self.count("fence-reject")

    def count(self, name: str, value: float = 1.0) -> None:
        """Bump a telemetry counter if a sink is attached (fast-path
        observability; deliberately not an :class:`OpRecord`)."""
        if self.telemetry is not None:
            self.telemetry.incr(name, value)

    @property
    def alive_servers(self) -> int:
        """Server processes still running (flush/replication fan-out);
        drained (retired) pool servers no longer serve."""
        return max(1, self.total_servers - len(self.failed_servers)
                   - len(self.metadata._retired))

    # -- elastic metadata pool (docs/MODEL.md §11) -------------------------
    def invalidate_location_caches(self) -> None:
        """Clear the client location caches after a layout change
        (takeover, split, merge, migration, pool resize).  Conservative —
        the cached records may still be right, but the coherence contract
        is "never serve from a cache a layout change may have outdated"."""
        if self.location_cache is not None:
            dropped = self.location_cache.clear()
            if dropped:
                self.count("cache-invalidate", dropped)

    def grow_pool(self) -> int:
        """Add a metadata server to the pool at runtime; returns its id.

        The newcomer serves the metadata plane only (existing data-plane
        logs stay where they are): existing range assignments are pinned
        before the modulus changes, so nothing silently re-routes.
        """
        new_id = self.metadata.add_server()
        self.total_servers += 1
        self.count("pool-grow")
        self.telemetry_hook("pool-grow", f"server:{new_id}", 0.0)
        self.invalidate_location_caches()
        return new_id

    def shrink_pool(self, server_id: int) -> Optional[int]:
        """Drain and retire a pool server; returns the pieces migrated
        off it, or None when it cannot leave cleanly — crashed,
        partitioned, suspect under the failure detector, or a migration
        the quorum refused.  An unclean server must not leave: its
        copies cannot be verified current while its liveness is in doubt.
        """
        if (server_id in self.failed_servers
                or server_id in self.partitioned_servers):
            return None
        if self.health is not None and not self.health.is_clean(server_id):
            return None
        from repro.core.errors import QuorumLostError
        try:
            moved = self.metadata.remove_server(server_id)
        except QuorumLostError:
            return None
        self.count("pool-shrink")
        self.telemetry_hook("pool-shrink", f"server:{server_id}", 0.0)
        self.invalidate_location_caches()
        return moved

    def fail_node(self, node_id: int) -> None:
        """Lose a compute node's local storage: its cached data is gone.

        Reads of segments that lived there either fall back to replicas
        (``resilience_enabled``) or raise
        :class:`~repro.core.resilience.DataLossError`.  The node's server
        processes keep running — use :meth:`crash_node` for a full crash.
        """
        if not 0 <= node_id < len(self.machine.nodes):
            raise ValueError(f"no node {node_id}")
        if node_id in self.failed_nodes:
            return
        self.failed_nodes.add(node_id)
        self.telemetry_hook("fault-node-storage-lost", f"node:{node_id}",
                            0.0)

    def crash_server(self, server_id: int) -> None:
        """Kill one server process: its metadata partition is lost.

        With ``metadata_replication >= 2`` the surviving replicas keep
        every range readable (client-side failover); otherwise lookups on
        its ranges raise
        :class:`~repro.core.metadata.MetadataUnavailableError`.
        """
        if not 0 <= server_id < self.total_servers:
            raise ValueError(f"no server {server_id}")
        if server_id in self.failed_servers:
            return
        self.failed_servers.add(server_id)
        self.metadata.fail_server(server_id)
        self.telemetry_hook("fault-server-crash", f"server:{server_id}", 0.0)
        # The partition loss above is instantaneous (the data really is
        # gone); *reacting* to it is not.  With the failure detector the
        # takeover fires once the server is declared dead; without it,
        # recovery (when enabled) rides directly on the crash event.
        if self.health is not None:
            self.health.note_server_crash(server_id)
        elif self.recovery is not None:
            self.recovery.handle_server_dead(server_id)

    def crash_node(self, node_id: int) -> None:
        """Full node crash: local data, plus every server process it ran.

        Recovery actions ride on the crash: metadata ranges fail over to
        replicas on surviving nodes, and (with resilience enabled) every
        session holding unreplicated volatile data gets an immediate
        re-replication pass so the remaining copies stop being unique.
        """
        if not 0 <= node_id < len(self.machine.nodes):
            raise ValueError(f"no node {node_id}")
        already_down = node_id in self.failed_nodes
        self.fail_node(node_id)
        for server_id in range(node_id * self.config.servers_per_node,
                               (node_id + 1) * self.config.servers_per_node):
            self.crash_server(server_id)
        if already_down:
            return
        self.telemetry_hook("fault-node-crash", f"node:{node_id}", 0.0)
        if self.health is not None:
            self.health.note_node_crash(node_id)
        elif self.recovery is not None:
            self.recovery.handle_node_dead(node_id)
        elif self.config.resilience_enabled:
            self.rereplicate_pending()

    def partition_servers(self, servers, mode: str = "sym") -> None:
        """Cut the network links to a group of server processes.

        ``sym`` (symmetric cut): client requests *and* heartbeats are
        lost — the failure detector holds the group in suspect and the
        lease clock starts ticking toward fencing.  ``oneway``: clients
        cannot reach the group but its heartbeats still arrive, so it is
        never suspected or fenced; ranges whose current copies all live
        inside it are simply unavailable until the heal.  Crashed
        servers are not re-animated by joining a partition group.
        """
        if mode not in ("sym", "oneway"):
            raise ValueError(f"unknown partition mode {mode!r}")
        group = sorted(set(servers))
        for server_id in group:
            if not 0 <= server_id < self.total_servers:
                raise ValueError(f"no server {server_id}")
        newly = [s for s in group if s not in self.partitioned_servers
                 and s not in self.failed_servers]
        if not newly:
            return
        for server_id in newly:
            self.partitioned_servers.add(server_id)
            self.metadata.set_unreachable(server_id)
        self.telemetry_hook(
            "fault-partition",
            f"servers:{'+'.join(map(str, newly))}:{mode}", 0.0)
        if mode == "sym" and self.health is not None:
            for server_id in newly:
                self.health.note_server_partition(server_id)

    def heal_partition(self, servers=None) -> None:
        """Restore connectivity to a partitioned group (default: every
        partitioned server).  Healing restores *reachability* only — a
        fenced ex-owner's ranges stay fenced in the metadata service
        until read-repair or a takeover rebuilds them."""
        group = (sorted(self.partitioned_servers) if servers is None
                 else sorted(set(servers)))
        healed = [s for s in group if s in self.partitioned_servers]
        if not healed:
            return
        for server_id in healed:
            self.partitioned_servers.discard(server_id)
            self.metadata.set_reachable(server_id)
            if self.health is not None:
                self.health.note_server_heal(server_id)
        self.telemetry_hook(
            "partition-heal", f"servers:{'+'.join(map(str, healed))}", 0.0)

    def rereplicate_pending(self) -> None:
        """Re-replicate every session still holding unreplicated volatile
        data, so the surviving copies stop being unique (crash-triggered
        or scheduled by the recovery service)."""
        for session in self._sessions.values():
            if self.resilience.pending_bytes(session) > 0:
                self.telemetry_hook("re-replicate", session.path,
                                    self.resilience.pending_bytes(
                                        session))
                self.resilience.start_replication(session)

    def mark_data_suspect(self, range_indices) -> None:
        """Stale-mark data copies after a fence/takeover (docs/MODEL.md
        §12): every session notes the affected metadata ranges so the
        next scrub pass refreshes their replica copies from the
        surviving primaries with current version/epoch stamps.  The
        per-read version check is the serve gate in the meantime — a
        marked-but-current copy may serve, a stale one never does."""
        marked = 0
        for session in self._sessions.values():
            before = len(session.suspect_ranges)
            session.suspect_ranges.update(range_indices)
            marked += len(session.suspect_ranges) - before
        if marked:
            self.count("data-stale-mark", marked)

    # -- fault-tolerant I/O ------------------------------------------------
    def timed_io(self, make_event, label: str) -> Event:
        """Wrap a timed storage operation in the configured retry policy.

        With retries and timeouts disabled (the default) this is exactly
        ``make_event()`` — zero overhead on the paper's configurations.
        Otherwise the operation runs as a small engine process that
        re-attempts transient failures with exponential backoff; every
        retry is surfaced through the telemetry hook.
        """
        config = self.config
        if config.io_retry_limit <= 0 and config.io_timeout is None:
            return make_event()
        from repro.core.retry import retrying

        def note_retry(attempt, delay, error):
            self.telemetry_hook(
                "io-retry", f"{label}:attempt{attempt}:{type(error).__name__}",
                0.0)

        return self.engine.process(
            retrying(self.engine, make_event, limit=config.io_retry_limit,
                     backoff_base=config.io_backoff_base,
                     timeout=config.io_timeout, on_retry=note_retry,
                     label=label),
            name=f"retry:{label}")

    # -- tier plumbing -----------------------------------------------------
    def _check_tier_available(self, tier: StorageTier) -> None:
        if tier is StorageTier.SHARED_BB and self.machine.burst_buffer is None:
            raise ValueError("configuration uses the shared burst buffer "
                             "but the machine has none")
        if (tier is StorageTier.LOCAL_SSD
                and self.machine.nodes[0].local_ssd is None):
            raise ValueError("configuration uses node-local SSDs but the "
                             "machine has none")

    def tier_device(self, tier: StorageTier,
                    node: Optional[ComputeNode]) -> StorageDevice:
        if tier is StorageTier.DRAM:
            assert node is not None
            return node.dram
        if tier is StorageTier.LOCAL_SSD:
            assert node is not None and node.local_ssd is not None
            return node.local_ssd
        if tier is StorageTier.SHARED_BB:
            assert self.machine.burst_buffer is not None
            return self.machine.burst_buffer.device
        return self.machine.lustre.device

    def tier_store(self, tier: StorageTier,
                   node: Optional[ComputeNode]) -> FileStore:
        if tier.is_node_local:
            assert node is not None
            return node.files
        if tier is StorageTier.SHARED_BB:
            return self.machine.bb_files
        return self.machine.pfs_files

    # -- connection management (§II-A) ---------------------------------------
    def connect(self, comm: Communicator) -> Event:
        """Client attach, piggybacked on MPI_Init: one RPC per rank to its
        co-located server (parallel, so one round trip)."""
        self.connected_clients[comm.name] = comm.size
        return self.machine.network.rpc(1, serialized=False)

    def disconnect(self, comm: Communicator) -> Event:
        self.connected_clients.pop(comm.name, None)
        return self.machine.network.rpc(1, serialized=False)

    # -- sessions ------------------------------------------------------------
    def fid_of(self, path: str) -> int:
        fid = self._fids.get(path)
        if fid is None:
            fid = self.engine.next_id()
            self._fids[path] = fid
        return fid

    def session(self, path: str, create: bool = True) -> FileSession:
        sess = self._sessions.get(path)
        if sess is None:
            if not create:
                raise FileNotFoundError(path)
            sess = FileSession(self, self.fid_of(path), path)
            self._sessions[path] = sess
            if self.location_cache is not None:
                # Track from birth: no record of the fid exists yet, so
                # the empty cache is a complete mirror.
                self.location_cache.begin_file(sess.fid)
        return sess

    def has_session(self, path: str) -> bool:
        return path in self._sessions

    # -- burst-buffer quotas (multi-job arbitration) --------------------------
    def set_bb_quota(self, program: str, nbytes: Optional[float]) -> None:
        """Grant (``None``: revoke) a shared-BB byte budget for one client
        program.  Takes effect for logs built after the call — the
        workload engine sets the quota at admission, before the job's
        first write, so every log the job builds sees it."""
        if nbytes is None:
            self.bb_quota.pop(program, None)
            return
        if nbytes <= 0:
            raise ValueError("quota must be positive (or None to revoke)")
        self.bb_quota[program] = float(nbytes)

    # -- log construction (the c/p rule of §II-B1) -----------------------------
    def _log_capacity(self, tier: StorageTier, node: ComputeNode,
                      comm: Communicator) -> float:
        """``c/p``: available capacity over the processes sharing it.

        The shared-BB numerator shrinks to the program's reservation when
        the workload engine granted one (``bb_quota``); the optional
        per-process config caps (``dram_log_capacity`` /
        ``bb_log_capacity``) then clamp the quotient.
        """
        if tier.is_node_local:
            device = self.tier_device(tier, node)
            p = max(1, comm.procs_on_node(node.node_id))
            cap = device.capacity / p
            if tier is StorageTier.DRAM and \
                    self.config.dram_log_capacity is not None:
                cap = min(cap, self.config.dram_log_capacity)
        else:
            device = self.tier_device(tier, None)
            total = device.capacity
            if tier is StorageTier.SHARED_BB and \
                    self.config.bb_quota_enforced:
                quota = self.bb_quota.get(comm.name)
                if quota is not None:
                    total = min(total, quota)
            cap = total / max(1, comm.size)
            if tier is StorageTier.SHARED_BB and \
                    self.config.bb_log_capacity is not None:
                cap = min(cap, self.config.bb_log_capacity)
        # A log smaller than one chunk is useless; round up.
        return max(cap, self.config.chunk_size)

    def _make_writer(self, session: FileSession, comm: Communicator,
                     rank: int) -> DHPWriter:
        node = comm.node_of_rank(rank)
        cache_tiers = self.config.cache_tiers
        if self.config.adaptive_placement:
            cache_tiers = self.advisor.advise_tiers(session.path,
                                                    cache_tiers)
        tiers: List[StorageTier] = list(cache_tiers)
        tiers.append(StorageTier.PFS)
        capacities: List[float] = []
        logs: List[LogFile] = []
        for tier in tiers:
            if tier is StorageTier.PFS:
                capacity: float = math.inf
            else:
                capacity = self._log_capacity(tier, node, comm)
            tier_node = node if tier.is_node_local else None
            store = self.tier_store(tier, tier_node)
            sim_file = store.create(
                f"/univistor/{session.fid}/{rank}/{tier.value}.log")
            device = (None if tier is StorageTier.PFS
                      else self.tier_device(tier, tier_node))
            logs.append(LogFile(tier, capacity, self.config.chunk_size,
                                sim_file, device=device))
            capacities.append(capacity)
        vas = VirtualAddressSpace(tiers, capacities)
        return DHPWriter(rank, vas, logs)

    # -- teardown ------------------------------------------------------------
    def delete_file(self, path: str) -> None:
        """Drop a file: free every log chunk and all metadata."""
        sess = self._sessions.pop(path, None)
        if sess is None:
            return
        self.metadata.delete_file(sess.fid)
        if self.location_cache is not None:
            if self.location_cache.invalidate_file(sess.fid):
                self.count("cache-invalidate")
        for rank, writer in sess.writers.items():
            for log in writer.logs:
                if log.device is not None and log.allocated_chunks:
                    log.device.free(log.allocated_chunks * log.chunk_size)
                log.sim_file.store.unlink(log.sim_file.path)
