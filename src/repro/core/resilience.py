"""Resilience for data in volatile storage layers (§V future work).

The paper's conclusions name "adding resilience to data in volatile
storage layers" as planned work: data cached in node-local DRAM vanishes
with the node, and until the asynchronous flush lands on the PFS a node
failure loses the only copy.

This extension closes the window with **asynchronous replication**: when a
written file closes, the servers copy every *volatile* (node-local)
segment to replica logs on a shared, failure-independent tier (the shared
burst buffer by default) — piggybacking on the same close-triggered
asynchrony as the flush.  The read path falls back transparently: a
metadata record pointing at a failed node's log resolves against the
replica instead.  Without replication, reading lost data raises
:class:`DataLossError` — exactly the exposure the paper describes.

Enable with ``UniviStorConfig(resilience_enabled=True)``; inject failures
with :meth:`UniviStorServers.fail_node`.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.core.config import StorageTier
from repro.core.errors import DataLossError
from repro.core.metadata import MetadataRecord
from repro.sim.engine import Event
from repro.storage.datamodel import CorruptPayload, Extent, ZeroPayload
from repro.storage.device import TransientIOError
from repro.storage.posix import SimFile

# ``DataLossError`` moved to :mod:`repro.core.errors` (so the metadata
# service can subclass it without an import cycle); re-exported here for
# compatibility — this module is where the API docs historically named it.
__all__ = ["DataLossError", "ResilienceService"]


class ResilienceService:
    """Asynchronous replication of volatile segments to a shared tier."""

    def __init__(self, system):
        # ``system`` is a UniviStorServers (loose typing: import cycle).
        self.system = system
        self.machine = system.machine
        self.engine = system.engine
        self.replica_tier = StorageTier.SHARED_BB
        #: session path -> rank -> replica file (logical-offset content).
        self._replicas: Dict[str, Dict[int, SimFile]] = {}
        #: bytes already replicated per session (incremental replication).
        self._replicated: Dict[str, float] = {}
        #: outstanding replication event per session.
        self._events: Dict[str, Event] = {}

    # -- replica plumbing ---------------------------------------------------
    def replica_file(self, session, rank: int) -> SimFile:
        per_session = self._replicas.setdefault(session.path, {})
        f = per_session.get(rank)
        if f is None:
            store = self.system.tier_store(self.replica_tier, None)
            f = store.create(
                f"/univistor/replica/{session.fid}/{rank}.log")
            per_session[rank] = f
        return f

    def _volatile_records(self, session) -> List[MetadataRecord]:
        return [r for r in self.system.metadata.records_of(session.fid)
                if r.tier.is_node_local]

    def pending_bytes(self, session) -> float:
        # Cumulative volatile writes (overwrites count again) minus what
        # is already replicated — mirrors the flush accounting.
        return max(0.0, session.volatile_bytes_written
                   - self._replicated.get(session.path, 0.0))

    # -- the asynchronous replication pass -------------------------------------
    def start_replication(self, session) -> Event:
        """Kick off (or no-op) replication; returns its completion event.

        Idempotent while a pass is in flight: a re-replication trigger
        (node crash) that races the close-time pass joins it instead of
        double-copying the same pending bytes.
        """
        outstanding = self._events.get(session.path)
        if outstanding is not None and not outstanding.triggered:
            return outstanding
        pending = self.pending_bytes(session)
        if pending <= 0:
            ev = self.engine.event(name="replicate-noop")
            ev.succeed(0.0)
            self._events[session.path] = ev
            return ev
        proc = self.engine.process(self._replicate(session, pending),
                                   name=f"replicate:{session.path}",
                                   shard=session.fid)
        self._events[session.path] = proc
        return proc

    def wait(self, session) -> Generator:
        ev = self._events.get(session.path)
        if ev is not None and not ev.processed:
            yield ev

    def _replicate(self, session, pending: float) -> Generator:
        t_start = self.engine.now
        system = self.system
        bb = self.machine.burst_buffer
        if bb is None:
            raise RuntimeError("resilience needs a shared burst buffer")
        servers = system.alive_servers
        # Functional copy: replica files hold logical-offset extents, so
        # fail-over reads need no VA translation.  Records whose source
        # node already died mid-session are unrecoverable here — skip
        # them (they would raise) and surface the loss via telemetry.
        read_service = system.read_service
        lost_bytes = 0.0
        for record in self._volatile_records(session):
            if self.is_lost(record):
                lost_bytes += record.length
                continue
            replica = self.replica_file(session, record.proc_id)
            try:
                extents = read_service.resolve(session, record)
            except DataLossError:
                # Source rotted (corruption) with no clean copy anywhere:
                # nothing usable to replicate.  Surface, don't crash the
                # background pass.
                lost_bytes += record.length
                continue
            for extent in extents:
                replica.write_at(extent.offset, extent.length,
                                 extent.payload, extent.payload_offset)
            # The replica now reflects the authority over this record's
            # span — stamp it so the version-ordered degraded read chain
            # (docs/MODEL.md §12) knows this copy is current.
            session.replica_map(record.proc_id).copy_from(
                session.data_versions, record.offset, record.length)
        if lost_bytes > 0:
            system.telemetry_hook("replicate-lost", session.path,
                                  lost_bytes, t_start=t_start)
        # Timed copy: the servers drain the volatile tiers into the BB
        # (file-per-process replica logs: no shared-file penalty).  Lost
        # bytes have nothing to drain.
        copy_bytes = max(0.0, pending - lost_bytes)
        if copy_bytes > 0:
            try:
                yield system.timed_io(
                    lambda: bb.write(copy_bytes / servers, streams=servers,
                                     per_stream_cap=bb.flush_cap(
                                         system.config.servers_per_node),
                                     tag=f"replicate:{session.path}"),
                    f"replicate:{session.path}")
            except TransientIOError:
                # Retry budget exhausted mid-brownout.  Without recovery
                # the failure propagates (sync waiters see it — the PR 1
                # fail-loud contract).  Self-healing mode contains it
                # instead: leave the replicated counter alone so the next
                # scrub pass re-sends these bytes, and report — an
                # unhandled raise in an unobserved background process
                # would crash the engine.
                if not system.config.recovery_enabled:
                    raise
                system.telemetry_hook("replicate-failed", session.path,
                                      copy_bytes, t_start=t_start)
                return 0.0
        self._replicated[session.path] = (
            self._replicated.get(session.path, 0.0) + pending)
        self.system.telemetry_hook("replicate", session.path, pending,
                                   t_start=t_start)
        return pending

    def note_synchronous_copy(self, session, nbytes: float) -> None:
        """Credit bytes copied synchronously at write time (``data_quorum
        >= 2``, docs/MODEL.md §12) against the async pass's pending
        accounting, so the close-time replication no-ops instead of
        re-copying what the write already made durable."""
        self._replicated[session.path] = (
            self._replicated.get(session.path, 0.0) + nbytes)

    # -- fail-over read path -------------------------------------------------
    def is_lost(self, record: MetadataRecord) -> bool:
        return (record.tier.is_node_local
                and record.node_id in self.system.failed_nodes)

    def resolve_replica(self, session, record: MetadataRecord
                        ) -> List[Extent]:
        """Replica extents for a lost record; raises on a gap."""
        per_session = self._replicas.get(session.path, {})
        replica = per_session.get(record.proc_id)
        if replica is None:
            raise DataLossError(
                f"{session.path}: rank {record.proc_id}'s data on failed "
                f"node {record.node_id} was never replicated",
                fid=record.fid, rank=record.proc_id, node=record.node_id,
                offset=record.offset, length=record.length)
        # Version-ordered fallback (docs/MODEL.md §12): a replica holding
        # an older write version for any byte of the span must never be
        # served, even if its payload passes checksum verification —
        # that is exactly the node-crash overwrite stale-serve gap.
        vmap = session.replica_versions.get(record.proc_id)
        stale = (session.data_versions.spans(record.offset, record.length)
                 if vmap is None else
                 vmap.stale_spans(session.data_versions, record.offset,
                                  record.length))
        if vmap is None:
            from repro.core.versioning import StaleSpan
            stale = [StaleSpan(s, e, 0, 0, v, ep) for s, e, v, ep in stale]
        if stale:
            self.system.count("data-stale-reject")
            first = stale[0]
            err = DataLossError(
                f"{session.path}: replica of rank {record.proc_id} is "
                f"stale — {first.describe()} — version-ordered fallback "
                f"refuses to serve it",
                fid=record.fid, rank=record.proc_id, node=record.node_id,
                offset=first.start, length=first.end - first.start)
            err.stale_provenance = tuple(stale)
            raise err
        extents = replica.read_at(record.offset, record.length)
        for ext in extents:
            if isinstance(ext.payload, ZeroPayload):
                raise DataLossError(
                    f"{session.path}: replica of rank {record.proc_id} "
                    f"misses [{ext.offset}, +{ext.length})",
                    fid=record.fid, rank=record.proc_id,
                    node=record.node_id, offset=ext.offset,
                    length=ext.length)
            if isinstance(ext.payload, CorruptPayload):
                raise DataLossError(
                    f"{session.path}: replica of rank {record.proc_id} "
                    f"fails checksum verification at "
                    f"[{ext.offset}, +{ext.length})",
                    fid=record.fid, rank=record.proc_id,
                    node=record.node_id, offset=ext.offset,
                    length=ext.length)
        return extents
