"""Bounded retry with exponential backoff for tier I/O.

Every timed storage operation on the flush, read and replication paths can
be wrapped in :func:`retrying`: transient failures (injected write errors,
device brownouts, per-operation timeouts) are re-attempted up to
``UniviStorConfig.io_retry_limit`` times with exponentially growing
backoff, after which the last error surfaces to the caller.  Hard
modelling errors (bad arguments, capacity bugs) are never retried.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.sim.engine import Engine, Event
from repro.storage.device import TransientIOError

__all__ = ["IOTimeoutError", "retrying"]


class IOTimeoutError(TransientIOError):
    """A timed operation missed its per-operation deadline."""


def retrying(engine: Engine, make_event: Callable[[], Event], *,
             limit: int, backoff_base: float,
             timeout: Optional[float] = None,
             on_retry: Optional[Callable[[int, float, BaseException], None]]
             = None,
             label: str = "io") -> Generator:
    """Run ``make_event()`` until it completes, retrying transient errors.

    ``make_event`` is called afresh per attempt (a new flow each time) and
    may raise :class:`TransientIOError` synchronously (injected errors,
    down devices) or return an event to wait on.  With a finite
    ``timeout`` the wait races a deadline; a miss counts as a transient
    failure.  ``on_retry(attempt, delay, error)`` observes every backoff —
    the servers feed it into telemetry so retries stay auditable.
    """
    if limit < 0:
        raise ValueError(f"retry limit must be >= 0, got {limit}")
    if backoff_base <= 0:
        raise ValueError(f"backoff base must be positive, got {backoff_base}")
    attempt = 0
    while True:
        error: Optional[BaseException] = None
        try:
            event = make_event()
        except TransientIOError as err:
            error = err
        else:
            if timeout is not None and math.isfinite(timeout):
                winner, value = yield engine.any_of(
                    [event, engine.timeout(timeout)])
                if winner is event:
                    return value
                error = IOTimeoutError(
                    f"{label}: no completion within {timeout:g}s")
            else:
                value = yield event
                return value
        attempt += 1
        if attempt > limit:
            raise error
        delay = backoff_base * (2 ** (attempt - 1))
        if on_retry is not None:
            on_retry(attempt, delay, error)
        yield engine.timeout(delay)
