"""Adaptive data striping (§II-D, Eqs. 2–6).

UniviStor's flush servers each write one contiguous range of the shared
file to the PFS.  How those ranges map onto OSTs decides the flush
bandwidth; this module computes that mapping.

* **Case 1, servers < OSTs** — maximise each server's bandwidth by
  striping its range across a *distinct* set of
  ``C_per_server = min(C_max_units / C_servers, alpha)`` OSTs (Eq. 2),
  with the stripe size/count of Eqs. 3–4.
* **Case 2, servers >= OSTs** — balance the per-OST writer load.  The
  naive Eq. 5 (``stripe = file / servers``, OSTs round-robin) leaves
  ``servers mod OSTs`` OSTs with an extra writer; Eq. 6 rounds the server
  count up to ``C_dum_servers``, shrinking the stripe so every server's
  range spreads evenly over the OST ring.

:func:`default_plan` builds the non-adaptive baseline: the file striped
with the system default stripe settings, every server's contiguous range
touching (nearly) every OST — the wide-striping synchronisation overhead
the paper calls out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.cluster.spec import LustreSpec
from repro.storage.lustre import StripingLayout

__all__ = ["StripingPlan", "adaptive_plan", "eq5_plan", "default_plan",
           "layout_for_ranges"]


@dataclass(frozen=True)
class StripingPlan:
    """The outcome of a striping decision, ready for the flush path."""

    file_size: float
    servers: int
    stripe_size: float
    stripe_count: int
    per_server_osts: float
    layout: StripingLayout
    adaptive: bool
    #: Eq. 6's C_dum_servers (equals ``servers`` outside case 2).
    dum_servers: int

    @property
    def bytes_per_server(self) -> float:
        return self.file_size / self.servers


def layout_for_ranges(file_size: float, servers: int, stripe_size: float,
                      osts: int, ost_offset: int = 0) -> StripingLayout:
    """Writer→OST sets when each of ``servers`` writers owns the ``s``-th
    contiguous range of the file and stripe ``i`` lives on OST
    ``(i + ost_offset) % osts`` (Lustre's round-robin object allocation)."""
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if stripe_size <= 0:
        raise ValueError(f"stripe_size must be positive, got {stripe_size}")
    per_server = file_size / servers
    sets: List[tuple] = []
    weights: List[tuple] = []
    for s in range(servers):
        start = s * per_server
        end = (s + 1) * per_server
        first = int(start // stripe_size)
        last = int(max(start, end - 1) // stripe_size)
        span = last - first + 1
        if span >= osts:
            sets.append(tuple(range(osts)))
            weights.append(tuple([1.0 / osts] * osts))
            continue
        # Byte-exact split of the range over its stripes, folded onto the
        # OST ring (stripes of one writer may share an OST when wrapping).
        per_ost: dict = {}
        for stripe in range(first, last + 1):
            lo = max(start, stripe * stripe_size)
            hi = min(end, (stripe + 1) * stripe_size)
            if hi <= lo:
                continue
            ost = (stripe + ost_offset) % osts
            per_ost[ost] = per_ost.get(ost, 0.0) + (hi - lo) / per_server
        items = sorted(per_ost.items())
        sets.append(tuple(o for o, _w in items))
        weights.append(tuple(w for _o, w in items))
    return StripingLayout(osts, tuple(sets), weights=tuple(weights))


def adaptive_plan(file_size: float, servers: int,
                  lustre: LustreSpec) -> StripingPlan:
    """UniviStor's ADPT policy: Eqs. 2–4 (case 1) or Eqs. 5–6 (case 2)."""
    if file_size <= 0:
        raise ValueError(f"file_size must be positive, got {file_size}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    units = lustre.osts
    if units // servers >= 2:
        # Case 1: distinct OST sets per server, Eq. 2.  (When servers
        # approach the OST count, Eq. 2's floor division would strand
        # OSTs — e.g. 128 servers on 248 OSTs would engage only 128 — so
        # the balanced case-2 layout below takes over as soon as distinct
        # sets cannot span every OST; the paper leaves this boundary
        # unspecified.)
        per_server = min(units // servers, lustre.saturation_stripe_count)
        per_server = max(1, per_server)
        # Eq. 3 / Eq. 4.
        stripe_size = min(file_size / (servers * per_server),
                          lustre.max_stripe_size)
        stripe_count = int(min(math.ceil(file_size / stripe_size), units))
        # Distinct sets never wrap: servers * per_server <= units.
        sets = tuple(tuple(range(s * per_server, (s + 1) * per_server))
                     for s in range(servers))
        layout = StripingLayout(units, sets)
        return StripingPlan(file_size, servers, stripe_size, stripe_count,
                            float(per_server), layout, adaptive=True,
                            dum_servers=servers)
    # Case 2: Eq. 6 rounds servers up to a multiple of the OST count,
    # shrinking Eq. 5's stripe so per-OST load balances.  (For servers
    # slightly below the OST count this degenerates to one stripe per
    # OST, which spreads every server's range over ~units/servers OSTs —
    # balanced and fully engaged.)
    dum_servers = int(math.ceil(servers / units)) * units
    stripe_size = file_size / dum_servers
    layout = layout_for_ranges(file_size, servers, stripe_size, units)
    stripe_count = units
    per_server = layout.stripe_count_per_writer
    return StripingPlan(file_size, servers, stripe_size, stripe_count,
                        per_server, layout, adaptive=True,
                        dum_servers=dum_servers)


def eq5_plan(file_size: float, servers: int,
             lustre: LustreSpec) -> StripingPlan:
    """Case 2 *without* Eq. 6 — the straggler-prone strawman of §II-D
    (``512 % 248 = 16`` OSTs carry an extra flushing server)."""
    units = lustre.osts
    stripe_size = file_size / servers
    layout = StripingLayout.round_robin(servers, units, per_writer=1)
    return StripingPlan(file_size, servers, stripe_size, units,
                        1.0, layout, adaptive=False, dum_servers=servers)


def default_plan(file_size: float, servers: int,
                 lustre: LustreSpec) -> StripingPlan:
    """The non-ADPT baseline: system-default striping.

    Each server's contiguous range spans many default-size stripes laid
    round-robin over the default stripe count, so every server talks to
    (nearly) every OST — maximal synchronisation overhead, the §II-D
    motivation.
    """
    stripe_size = lustre.default_stripe_size
    units = min(lustre.default_stripe_count, lustre.osts)
    layout = layout_for_ranges(file_size, servers, stripe_size, units)
    return StripingPlan(file_size, servers, stripe_size, units,
                        layout.stripe_count_per_writer, layout,
                        adaptive=False, dum_servers=servers)
