"""Virtual addressing (§II-B2, Eq. 1).

A segment living at physical address ``A_i`` inside a process's log on
storage layer ``i`` has virtual address

.. math::  VA_i = \\sum_{k < i} C_k + A_i

where ``C_k`` is the capacity of the process's log on layer ``k`` (the
paper's summation bound is inclusive by typo; its own worked example —
segment D4 with physical address 1 in the layer-1 log behind a layer-0 log
of capacity 2 has VA 3 — fixes the convention, which we follow).  A VA
therefore simultaneously identifies the layer (by which capacity window it
falls into) and the physical address within that layer's log.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.core.config import StorageTier

__all__ = ["VirtualAddressSpace"]


class VirtualAddressSpace:
    """The VA <-> (layer, physical address) bijection for one process.

    Built from the ordered per-layer log capacities fixed at file-open
    time (the c/p rule of §II-B1).  The last layer may be unbounded (the
    PFS destination), expressed as ``float('inf')``.
    """

    def __init__(self, tiers: Sequence[StorageTier],
                 capacities: Sequence[float]):
        if len(tiers) != len(capacities):
            raise ValueError("tiers and capacities must align")
        if not tiers:
            raise ValueError("at least one layer is required")
        for i, c in enumerate(capacities):
            if c <= 0:
                raise ValueError(f"layer {i} has non-positive capacity {c}")
            if c == float("inf") and i != len(capacities) - 1:
                raise ValueError("only the last layer may be unbounded")
        self.tiers: Tuple[StorageTier, ...] = tuple(tiers)
        self.capacities: Tuple[float, ...] = tuple(float(c) for c in capacities)
        # bases[i] = sum of capacities below layer i; one extra entry caps
        # the addressable range.
        bases: List[float] = [0.0]
        for c in self.capacities:
            bases.append(bases[-1] + c)
        self._bases = bases

    @property
    def layers(self) -> int:
        return len(self.tiers)

    def layer_base(self, layer: int) -> float:
        """``sum_{k < layer} C_k`` — the VA window start of ``layer``."""
        self._check_layer(layer)
        return self._bases[layer]

    def layer_capacity(self, layer: int) -> float:
        self._check_layer(layer)
        return self.capacities[layer]

    def tier_of_layer(self, layer: int) -> StorageTier:
        self._check_layer(layer)
        return self.tiers[layer]

    def va(self, layer: int, physical_address: float) -> float:
        """Eq. 1: virtual address of ``physical_address`` in ``layer``."""
        self._check_layer(layer)
        if physical_address < 0:
            raise ValueError(f"negative physical address {physical_address}")
        if physical_address >= self.capacities[layer]:
            raise ValueError(
                f"physical address {physical_address} outside layer {layer} "
                f"log of capacity {self.capacities[layer]}")
        return self._bases[layer] + physical_address

    def resolve(self, va: float) -> Tuple[int, float]:
        """Inverse of Eq. 1: (layer, physical address) of ``va``."""
        if va < 0:
            raise ValueError(f"negative virtual address {va}")
        if va >= self._bases[-1]:
            raise ValueError(
                f"virtual address {va} beyond the addressable space "
                f"({self._bases[-1]})")
        layer = bisect.bisect_right(self._bases, va) - 1
        return layer, va - self._bases[layer]

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < len(self.tiers):
            raise ValueError(f"layer {layer} outside [0, {len(self.tiers)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{t.value}:{c:.3g}"
                          for t, c in zip(self.tiers, self.capacities))
        return f"<VirtualAddressSpace {parts}>"
