"""Lightweight workflow management (§II-E).

Coordinates applications with data dependencies through per-file
reader/writer/flush states kept in a shared **state file** (on the PFS in
the real system).  Lock acquire/release piggybacks on the collective
``MPI_File_open`` / ``MPI_File_close``: only the root process touches the
state file, so coordination costs one RPC, not an all-to-all.

State machine (per file)::

    IDLE -> WRITING -> WRITE_DONE -> READING -> READ_DONE -> ...
                   \\-> FLUSHING -> FLUSH_DONE (server-side, overlaps reads)

Rules enforced (the paper's conflict table):

* a writer waits while the file is WRITING, READING or FLUSHING;
* a reader waits while the file is WRITING (flushes do not block reads —
  the cached copy stays valid);
* concurrent readers are admitted together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.sim.engine import Engine, Event

__all__ = ["FileState", "WorkflowManager"]


class FileState(enum.Enum):
    """The observable state recorded in the shared state file."""

    IDLE = "idle"
    WRITING = "writing"
    WRITE_DONE = "write_done"
    READING = "reading"
    READ_DONE = "read_done"
    FLUSHING = "flushing"
    FLUSH_DONE = "flush_done"


@dataclass
class _Entry:
    state: FileState = FileState.IDLE
    writer_active: bool = False
    readers: int = 0
    flushers: int = 0
    waiters: List[Event] = field(default_factory=list)
    #: Audit trail of state transitions (state, sim time) for tests.
    history: List = field(default_factory=list)


class WorkflowManager:
    """The state-file lock service, one per UniviStor deployment."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._entries: Dict[str, _Entry] = {}

    def _entry(self, path: str) -> _Entry:
        entry = self._entries.get(path)
        if entry is None:
            entry = _Entry()
            self._entries[path] = entry
        return entry

    def state_of(self, path: str) -> FileState:
        return self._entry(path).state

    def history_of(self, path: str) -> List:
        return list(self._entry(path).history)

    def _set_state(self, entry: _Entry, state: FileState) -> None:
        entry.state = state
        entry.history.append((state, self.engine.now))

    def _wake_all(self, entry: _Entry) -> None:
        waiters, entry.waiters = entry.waiters, []
        for ev in waiters:
            ev.succeed()

    def _wait(self, entry: _Entry) -> Event:
        ev = self.engine.event(name="workflow-wait")
        entry.waiters.append(ev)
        return ev

    # -- writers -----------------------------------------------------------
    def acquire_write(self, path: str) -> Generator:
        """Block until the file accepts a writer, then mark WRITING."""
        entry = self._entry(path)
        while entry.writer_active or entry.readers > 0 or entry.flushers > 0:
            yield self._wait(entry)
        entry.writer_active = True
        self._set_state(entry, FileState.WRITING)

    def release_write(self, path: str) -> None:
        entry = self._entry(path)
        if not entry.writer_active:
            raise RuntimeError(f"{path}: write release without acquire")
        entry.writer_active = False
        self._set_state(entry, FileState.WRITE_DONE)
        self._wake_all(entry)

    # -- readers -----------------------------------------------------------
    def acquire_read(self, path: str) -> Generator:
        """Block until the file has no active writer, then mark READING."""
        entry = self._entry(path)
        while entry.writer_active:
            yield self._wait(entry)
        entry.readers += 1
        self._set_state(entry, FileState.READING)

    def release_read(self, path: str) -> None:
        entry = self._entry(path)
        if entry.readers <= 0:
            raise RuntimeError(f"{path}: read release without acquire")
        entry.readers -= 1
        if entry.readers == 0:
            self._set_state(entry, FileState.READ_DONE)
            self._wake_all(entry)

    # -- server-side flush ---------------------------------------------------
    def begin_flush(self, path: str) -> None:
        """Mark FLUSHING (blocks new writers; readers are unaffected).

        The flush is started by the servers right after a writer's close,
        so there is never an active writer here by construction.
        """
        entry = self._entry(path)
        if entry.writer_active:
            raise RuntimeError(f"{path}: flush while writer active")
        entry.flushers += 1
        self._set_state(entry, FileState.FLUSHING)

    def end_flush(self, path: str) -> None:
        entry = self._entry(path)
        if entry.flushers <= 0:
            raise RuntimeError(f"{path}: flush end without begin")
        entry.flushers -= 1
        if entry.flushers == 0:
            self._set_state(entry, FileState.FLUSH_DONE)
            self._wake_all(entry)

    # -- invariants (for tests) ----------------------------------------------
    def check_invariants(self) -> None:
        for path, entry in self._entries.items():
            assert not (entry.writer_active and entry.readers > 0), \
                f"{path}: reader and writer concurrently active"
            assert not (entry.writer_active and entry.flushers > 0), \
                f"{path}: writer active during flush"
            assert entry.readers >= 0 and entry.flushers >= 0
