"""Structured data-loss errors shared across the core subsystems.

:class:`DataLossError` is the system's single "your data is gone" signal:
reads that touch bytes whose every copy has died, failed checksum
verification with no clean copy left, and metadata ranges whose whole
replica set crashed all surface through it (the last via the
:class:`~repro.core.metadata.MetadataUnavailableError` subclass).  The
durability invariant the chaos harness asserts is phrased in terms of this
type: every read either returns correct bytes or raises a structured
``DataLossError`` — never silent wrong data, never an unhandled exception.

The class lives in its own module so that :mod:`repro.core.metadata` (which
must not import the resilience machinery) can subclass it without a cycle;
:mod:`repro.core.resilience` re-exports it under its historical name.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DataLossError", "DataQuorumLostError", "QuorumLostError"]


class DataLossError(RuntimeError):
    """A read touched data that no surviving copy can serve.

    Carries a structured payload naming exactly what was lost — the
    file, the source rank, the failed node and the byte range — so
    callers (and tests) can react to the loss instead of parsing the
    message.  Fields are ``None`` when the failure mode cannot attribute
    them (e.g. a lost metadata range knows no single source rank).

    ``stale_provenance`` lists the stale copies the version-ordered
    degraded read chain *refused* to serve (docs/MODEL.md §12) as
    :class:`~repro.core.versioning.StaleSpan` tuples; it is empty when
    the loss involved no stale copy (every copy simply dead/corrupt).
    """

    def __init__(self, message: str, *, fid: Optional[int] = None,
                 rank: Optional[int] = None, node: Optional[int] = None,
                 offset: Optional[int] = None,
                 length: Optional[int] = None):
        super().__init__(message)
        self.fid = fid
        self.rank = rank
        self.node = node
        self.offset = offset
        self.length = length
        self.stale_provenance: tuple = ()


class QuorumLostError(DataLossError):
    """A metadata range cannot assemble a quorum of reachable replicas.

    Distinct from :class:`~repro.core.metadata.MetadataUnavailableError`
    (every copy *dead* — the records are gone): here at least one replica
    may still be alive but partitioned away or known-stale, so the honest
    answer is "unavailable right now", not "lost".  Subclasses
    :class:`DataLossError` so the durability invariant's single except
    clause still covers it; the extra fields say what quorum was missed.
    """

    def __init__(self, message: str, *, range_index: Optional[int] = None,
                 acked: Optional[int] = None, needed: Optional[int] = None,
                 fid: Optional[int] = None, offset: Optional[int] = None,
                 length: Optional[int] = None):
        super().__init__(message, fid=fid, offset=offset, length=length)
        self.range_index = range_index
        self.acked = acked
        self.needed = needed


class DataQuorumLostError(DataLossError):
    """A write could not make ``data_quorum`` copies of a segment durable
    on distinct failure domains (docs/MODEL.md §12).

    The data-plane mirror of :class:`QuorumLostError`: the primary
    (node-local) copy was written but the synchronous remote copy failed
    past the bounded retry/backoff budget, so the write is *not*
    acknowledged at the requested durability.  ``acked``/``needed``
    count copies, not metadata replicas.
    """

    def __init__(self, message: str, *, acked: Optional[int] = None,
                 needed: Optional[int] = None, fid: Optional[int] = None,
                 rank: Optional[int] = None, offset: Optional[int] = None,
                 length: Optional[int] = None):
        super().__init__(message, fid=fid, rank=rank, offset=offset,
                         length=length)
        self.acked = acked
        self.needed = needed
