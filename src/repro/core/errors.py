"""Structured data-loss errors shared across the core subsystems.

:class:`DataLossError` is the system's single "your data is gone" signal:
reads that touch bytes whose every copy has died, failed checksum
verification with no clean copy left, and metadata ranges whose whole
replica set crashed all surface through it (the last via the
:class:`~repro.core.metadata.MetadataUnavailableError` subclass).  The
durability invariant the chaos harness asserts is phrased in terms of this
type: every read either returns correct bytes or raises a structured
``DataLossError`` — never silent wrong data, never an unhandled exception.

The class lives in its own module so that :mod:`repro.core.metadata` (which
must not import the resilience machinery) can subclass it without a cycle;
:mod:`repro.core.resilience` re-exports it under its historical name.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DataLossError", "QuorumLostError"]


class DataLossError(RuntimeError):
    """A read touched data that no surviving copy can serve.

    Carries a structured payload naming exactly what was lost — the
    file, the source rank, the failed node and the byte range — so
    callers (and tests) can react to the loss instead of parsing the
    message.  Fields are ``None`` when the failure mode cannot attribute
    them (e.g. a lost metadata range knows no single source rank).
    """

    def __init__(self, message: str, *, fid: Optional[int] = None,
                 rank: Optional[int] = None, node: Optional[int] = None,
                 offset: Optional[int] = None,
                 length: Optional[int] = None):
        super().__init__(message)
        self.fid = fid
        self.rank = rank
        self.node = node
        self.offset = offset
        self.length = length


class QuorumLostError(DataLossError):
    """A metadata range cannot assemble a quorum of reachable replicas.

    Distinct from :class:`~repro.core.metadata.MetadataUnavailableError`
    (every copy *dead* — the records are gone): here at least one replica
    may still be alive but partitioned away or known-stale, so the honest
    answer is "unavailable right now", not "lost".  Subclasses
    :class:`DataLossError` so the durability invariant's single except
    clause still covers it; the extra fields say what quorum was missed.
    """

    def __init__(self, message: str, *, range_index: Optional[int] = None,
                 acked: Optional[int] = None, needed: Optional[int] = None,
                 fid: Optional[int] = None, offset: Optional[int] = None,
                 length: Optional[int] = None):
        super().__init__(message, fid=fid, offset=offset, length=length)
        self.range_index = range_index
        self.acked = acked
        self.needed = needed
