"""Crash recovery and integrity scrubbing (self-healing extension).

Two services close the loop that :mod:`repro.core.health` opens:

:class:`RecoveryService`
    Fires on a **dead** declaration.  A dead server's metadata offset
    ranges are taken over by surviving servers — the replica assignment is
    rewritten and the missing copies rebuilt by replaying the per-range
    write-ahead journal (:meth:`MetadataService.recover_server`) — so
    lookups route to the new owner instead of paying a failover per read
    forever.  A dead node additionally triggers re-replication of every
    session still holding unreplicated volatile data, plus a scrub pass.

:class:`ScrubService`
    Background integrity pass: checksum-verifies cached log chunks and
    replica files against the recorded content provenance, repairs rot
    from the surviving clean copy (replica -> log, log -> replica, flushed
    PFS copy as the last source), and re-replicates sessions whose
    volatile data lost its replica.  Data that fails verification with no
    clean copy anywhere is reported (``scrub-lost``) — the next read
    raises :class:`~repro.core.errors.DataLossError` rather than
    returning wrong bytes.

Both services are engine-clock aware but deliberately cheap on the timed
side: detection latency is modelled by the health monitor's timers, the
journal replay and scrub scans by throughput-derived timeouts.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.errors import DataLossError
from repro.core.metadata import MetadataRecord
from repro.sim.engine import Event
from repro.units import GiB

__all__ = ["RecoveryService", "ScrubService"]

#: Nominal serialized size of one journaled metadata record (replay cost).
_JOURNAL_RECORD_BYTES = 64.0
#: Nominal scrub scan throughput per pass (checksum-verify is sequential
#: streaming I/O; one server's worth so passes stay background-cheap).
_SCRUB_BANDWIDTH = 4.0 * GiB
#: Records streamed between replay-cursor persists: the granularity at
#: which a crash of the *new* owner mid-takeover can resume instead of
#: replaying the whole journal from scratch.
_REPLAY_CHUNK = 32


class RecoveryService:
    """Turns dead declarations into takeover and re-replication actions."""

    def __init__(self, system) -> None:
        # ``system`` is a UniviStorServers (typed loosely: import cycle).
        self.system = system
        self.engine = system.engine
        #: ``(range_index, new_primary)`` takeovers performed, for tests.
        self.takeovers: List[Tuple[int, int]] = []
        #: Persisted replay cursor: range -> journal records the timed
        #: replay has already streamed.  Survives a crash of the new
        #: owner mid-takeover, so the next takeover of the same range
        #: resumes from the cursor instead of streaming from scratch.
        self.replay_cursor: Dict[int, int] = {}
        health = getattr(system, "health", None)
        if health is not None:
            health.on_server_dead.append(self.handle_server_dead)
            health.on_node_dead.append(self.handle_node_dead)
            health.on_server_fenced.append(self.handle_server_fenced)

    # -- server death: metadata range takeover ----------------------------
    def handle_server_dead(self, server_id: int) -> None:
        self._takeover(server_id)

    def handle_server_fenced(self, server_id: int) -> None:
        """A partitioned server's lease expired: it is alive but no
        longer an owner.  Takeover proceeds exactly as for a death —
        :meth:`MetadataService.recover_server` fences the live ex-member
        out of every range it loses."""
        self.system.telemetry_hook("lease-expired", f"server:{server_id}",
                                   0.0)
        self._takeover(server_id)

    def _takeover(self, server_id: int) -> None:
        metadata = self.system.metadata
        actions = metadata.recover_server(server_id)
        if not actions:
            return
        # Range takeover rewrote replica assignments under the clients:
        # every location cache is cleared (the shared layout-change
        # invalidation path, also used by splits/merges/migrations).
        self.system.invalidate_location_caches()
        jobs: List[Tuple[int, int, int]] = []
        for range_index, new_primary in actions:
            total = len(metadata.journal_records(range_index))
            done = min(self.replay_cursor.get(range_index, 0), total)
            self.takeovers.append((range_index, new_primary))
            self.system.telemetry_hook(
                "recovery-takeover",
                f"range:{range_index}->server:{new_primary}", 0.0)
            if done > 0:
                self.system.telemetry_hook(
                    "recovery-replay-resume",
                    f"range:{range_index}@{done}/{total}", 0.0)
            if total > done:
                jobs.append((range_index, new_primary, total))
            else:
                self.replay_cursor.pop(range_index, None)
        if jobs:
            self.engine.process(self._replay_cost(server_id, jobs),
                                name=f"journal-replay:server{server_id}")
        if self.system.config.data_quorum >= 2:
            # Epoch-aware data fencing (docs/MODEL.md §12): the fenced
            # server's takeover bumped the affected ranges' epochs, so
            # data copies stamped under the old epoch are suspect.
            # Stale-mark them and rebuild from the surviving primaries —
            # re-replication plus a scrub pass that refreshes every
            # version-lagging replica span with current stamps.
            self.system.mark_data_suspect(ri for ri, _p in actions)
            if self.system.config.resilience_enabled:
                self.system.rereplicate_pending()
            scrub = getattr(self.system, "scrub", None)
            if scrub is not None:
                scrub.start_scrub()

    def _replay_cost(self, server_id: int,
                     jobs: List[Tuple[int, int, int]]) -> Generator:
        """Timed journal replay: the new owners stream the lost server's
        journal segments off shared storage and re-insert the records.

        Streamed in :data:`_REPLAY_CHUNK`-record chunks with the cursor
        persisted after each one; if the new primary itself dies (or is
        partitioned away) mid-replay the job aborts at the cursor and
        the *next* takeover of the range resumes there.
        """
        t_start = self.engine.now
        metadata = self.system.metadata
        streamed = 0.0
        for range_index, new_primary, total in jobs:
            done = min(self.replay_cursor.get(range_index, 0), total)
            aborted = False
            while done < total:
                if (new_primary in metadata.failed_servers
                        or new_primary in metadata.unreachable_servers):
                    self.replay_cursor[range_index] = done
                    self.system.telemetry_hook(
                        "recovery-replay-aborted",
                        f"range:{range_index}@{done}/{total}", 0.0)
                    aborted = True
                    break
                chunk = min(_REPLAY_CHUNK, total - done)
                nbytes = chunk * _JOURNAL_RECORD_BYTES
                yield self.engine.timeout(nbytes / _SCRUB_BANDWIDTH
                                          + chunk * 1e-6)
                done += chunk
                self.replay_cursor[range_index] = done
                streamed += nbytes
            if not aborted:
                self.replay_cursor.pop(range_index, None)
        self.system.telemetry_hook("recovery-replay",
                                   f"server:{server_id}", streamed,
                                   t_start=t_start)

    # -- node death: close the replication window -------------------------
    def handle_node_dead(self, node_id: int) -> None:
        system = self.system
        if system.config.resilience_enabled:
            system.rereplicate_pending()
        scrub = getattr(system, "scrub", None)
        if scrub is not None:
            scrub.start_scrub()


class ScrubService:
    """Background checksum verification and repair over cached data."""

    def __init__(self, system) -> None:
        self.system = system
        self.engine = system.engine
        self._event: Optional[Event] = None
        self._periodic: Optional[Event] = None
        #: Session-granular resume cursor for rate-limited passes: the
        #: next session path a budgeted pass should start from (None =
        #: start of the namespace, i.e. the sweep is complete).
        self._cursor_path: Optional[str] = None
        #: Pass statistics (cumulative, for tests/reporting).
        self.verified_bytes = 0.0
        self.repaired_bytes = 0.0
        self.lost_bytes = 0.0
        #: Ticks skipped because foreground I/O was in flight.
        self.deferred = 0

    # -- public API --------------------------------------------------------
    def start_scrub(self) -> Event:
        """Kick off (or join) a scrub pass; returns its completion event."""
        outstanding = self._event
        if outstanding is not None and not outstanding.triggered:
            return outstanding
        proc = self.engine.process(self._scrub_pass(), name="scrub")
        self._event = proc
        return proc

    def start_periodic(self) -> Optional[Event]:
        """Proactive scrubbing: repeat rate-limited passes every
        ``scrub_interval`` seconds until a full sweep comes back clean.

        Ticks that land while foreground I/O (flush or replication) is
        in flight are deferred to the next tick (``scrub-deferred``
        counter) — scrubbing is a background citizen.  Each pass scans
        at most ``scrub_rate_limit`` bytes (0 = unlimited) and resumes
        from the session cursor where the previous tick stopped.
        Terminates — the engine drains to quiescence — once a complete
        sweep repairs nothing.
        """
        if self.system.config.scrub_interval <= 0:
            return None
        outstanding = self._periodic
        if outstanding is not None and not outstanding.triggered:
            return outstanding
        proc = self.engine.process(self._periodic_loop(),
                                   name="scrub-periodic")
        self._periodic = proc
        return proc

    def wait(self) -> Generator:
        if self._event is not None and not self._event.processed:
            yield self._event

    # -- the periodic loop -------------------------------------------------
    def _foreground_busy(self) -> bool:
        system = self.system
        for session in system._sessions.values():
            ev = getattr(session, "flush_event", None)
            if ev is not None and not ev.triggered:
                return True
        resilience = getattr(system, "resilience", None)
        if resilience is not None:
            for ev in resilience._events.values():
                if not ev.triggered:
                    return True
        return False

    def _periodic_loop(self) -> Generator:
        config = self.system.config
        sweep_repaired = 0.0
        while True:
            yield self.engine.timeout(config.scrub_interval)
            if self._foreground_busy():
                self.deferred += 1
                self.system.count("scrub-deferred")
                continue
            repaired = yield from self._scrub_pass(
                budget=config.scrub_rate_limit)
            sweep_repaired += repaired
            if self._cursor_path is None:
                # Sweep complete: quiesce on a clean one, else go again.
                if sweep_repaired == 0:
                    return
                sweep_repaired = 0.0

    # -- the pass ----------------------------------------------------------
    def _scrub_pass(self, budget: float = 0.0) -> Generator:
        t_start = self.engine.now
        system = self.system
        scanned = repaired = lost = 0.0
        paths = sorted(system._sessions)
        start = 0
        if budget > 0 and self._cursor_path is not None:
            for i, path in enumerate(paths):
                if path >= self._cursor_path:
                    start = i
                    break
        next_cursor = None
        for path in paths[start:]:
            if budget > 0 and scanned >= budget:
                next_cursor = path
                break
            session = system._sessions[path]
            s, r, l = self._scrub_session(session)
            scanned += s
            repaired += r
            lost += l
            if (system.config.resilience_enabled
                    and system.resilience.pending_bytes(session) > 0):
                # Volatile data with no (or a dead) replica: restore the
                # redundancy the durability story depends on.
                system.telemetry_hook("scrub-rereplicate", session.path,
                                      system.resilience.pending_bytes(
                                          session))
                system.resilience.start_replication(session)
        if budget > 0:
            self._cursor_path = next_cursor
        self.verified_bytes += scanned
        self.repaired_bytes += repaired
        self.lost_bytes += lost
        if scanned > 0:
            yield self.engine.timeout(scanned / _SCRUB_BANDWIDTH)
        system.telemetry_hook("scrub", "all", scanned, t_start=t_start)
        return repaired

    def _scrub_session(self, session) -> Tuple[float, float, float]:
        """Verify one session's logs and replicas; returns
        ``(scanned, repaired, lost)`` byte counts."""
        system = self.system
        scanned = repaired = lost = 0.0
        records = system.metadata.records_of(session.fid)
        for record in records:
            if (record.tier.is_node_local
                    and record.node_id in system.failed_nodes):
                continue  # log died with the node; the replica serves
            writer = session.writers.get(record.proc_id)
            if writer is None:
                continue
            layer, addr = writer.vas.resolve(record.va)
            sim_file = writer.logs[layer].sim_file
            scanned += record.length
            for c_off, c_len in sim_file.corrupt_ranges(int(addr),
                                                        int(record.length)):
                lo = record.offset + (c_off - int(addr))
                sub = record.slice(lo, lo + c_len)
                try:
                    clean = system.read_service.resolve_degraded(session,
                                                                 sub)
                except DataLossError:
                    lost += c_len
                    system.telemetry_hook(
                        "scrub-lost", f"{session.path}:[{lo},+{c_len})",
                        float(c_len))
                    continue
                for ext in clean:
                    phys = int(addr) + (ext.offset - record.offset)
                    sim_file.write_at(int(phys), ext.length, ext.payload,
                                      ext.payload_offset)
                repaired += c_len
                system.telemetry_hook(
                    "scrub-repair", f"{session.path}:[{lo},+{c_len})",
                    float(c_len))
        if system.config.resilience_enabled:
            s, r, l = self._scrub_replicas(session)
            scanned += s
            repaired += r
            lost += l
        if system.config.data_quorum >= 2:
            refreshed = self._refresh_stale_replicas(session)
            scanned += refreshed
            repaired += refreshed
        return scanned, repaired, lost

    def _scrub_replicas(self, session) -> Tuple[float, float, float]:
        """Verify replica logs against the primary copies."""
        system = self.system
        scanned = repaired = lost = 0.0
        replicas = system.resilience._replicas.get(session.path, {})
        for rank in sorted(replicas):
            replica = replicas[rank]
            scanned += replica.size
            for off, ln in replica.corrupt_ranges(0, replica.size):
                try:
                    records, _servers = system.metadata.lookup(
                        session.fid, off, ln)
                except DataLossError:
                    lost += ln
                    system.telemetry_hook(
                        "scrub-lost",
                        f"{session.path}:replica{rank}:[{off},+{ln})",
                        float(ln))
                    continue
                healed = 0.0
                healed_records = []
                for record in records:
                    if record.proc_id != rank:
                        continue
                    try:
                        clean = self._primary_extents(session, record)
                    except DataLossError:
                        continue
                    for ext in clean:
                        replica.write_at(ext.offset, ext.length,
                                         ext.payload, ext.payload_offset)
                        healed += ext.length
                    healed_records.append(record)
                if healed > 0:
                    repaired += healed
                    system.telemetry_hook(
                        "scrub-repair",
                        f"{session.path}:replica{rank}:[{off},+{ln})",
                        float(healed))
                    # The healed spans now reflect the authority; stamp
                    # them so version-ordered reads accept the repair.
                    for record in healed_records:
                        session.replica_map(rank).copy_from(
                            session.data_versions, record.offset,
                            record.length)
                if healed < ln:
                    lost += ln - healed
                    system.telemetry_hook(
                        "scrub-lost",
                        f"{session.path}:replica{rank}:[{off},+{ln})",
                        float(ln - healed))
        return scanned, repaired, lost

    def _refresh_stale_replicas(self, session) -> float:
        """Epoch-aware rebuild (``data_quorum >= 2``, docs/MODEL.md §12):
        re-copy every replica span whose version map lags the authority
        — fenced/taken-over copies, or replicas that missed an overwrite
        — from a live current source, re-stamping with current
        version/epoch.  Spans with no current source anywhere stay
        stale: the read ladder keeps refusing them (an honest
        :class:`DataLossError`), never serves them."""
        system = self.system
        refreshed = 0.0
        for record in system.metadata.records_of(session.fid):
            if not record.tier.is_node_local:
                continue
            vmap = session.replica_versions.get(record.proc_id)
            if vmap is not None and not vmap.stale_spans(
                    session.data_versions, record.offset, record.length):
                continue
            if vmap is None and not session.data_versions.spans(
                    record.offset, record.length):
                continue
            try:
                clean = system.read_service.resolve(session, record)
            except (DataLossError, KeyError):
                continue
            replica = system.resilience.replica_file(session,
                                                     record.proc_id)
            for ext in clean:
                replica.write_at(ext.offset, ext.length, ext.payload,
                                 ext.payload_offset)
            session.replica_map(record.proc_id).copy_from(
                session.data_versions, record.offset, record.length)
            refreshed += record.length
        session.suspect_ranges.clear()
        if refreshed > 0:
            system.count("data-scrub-refresh", refreshed)
            system.telemetry_hook("data-rebuild", session.path, refreshed)
        return refreshed

    def _primary_extents(self, session, record: MetadataRecord):
        """Clean logical extents straight from the writer's log (replica
        repair source); :class:`DataLossError` when the log itself is
        dead or rotten with no third copy."""
        return self.system.read_service.resolve(session, record)
