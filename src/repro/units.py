"""Size/bandwidth/time unit helpers.

All simulator-internal quantities are plain floats in **bytes**, **seconds**
and **bytes/second**.  These constants keep call sites readable and make the
binary/decimal distinction explicit: capacities follow the paper's binary
units (MiB/GiB), bandwidths use vendor-style decimal GB/s.
"""

from __future__ import annotations

__all__ = [
    "KiB", "MiB", "GiB", "TiB",
    "KB", "MB", "GB", "TB",
    "USEC", "MSEC", "SEC", "MINUTE",
    "fmt_bytes", "fmt_rate", "fmt_time",
]

KiB = 1024.0
MiB = 1024.0 ** 2
GiB = 1024.0 ** 3
TiB = 1024.0 ** 4

KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

USEC = 1e-6
MSEC = 1e-3
SEC = 1.0
MINUTE = 60.0


def fmt_bytes(nbytes: float) -> str:
    """Human-readable binary size, e.g. ``fmt_bytes(2*MiB) == '2.00 MiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(rate: float) -> str:
    """Human-readable decimal rate, e.g. ``fmt_rate(3e9) == '3.00 GB/s'``."""
    value = float(rate)
    for unit in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000.0 or unit == "TB/s":
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
