"""Multi-job workload traces (docs/MODEL.md §10).

A :class:`JobTrace` is an ordered list of :class:`Job` entries — arrival
time, rank count and a per-phase I/O script — that the workload engine
(:mod:`repro.workloads.engine`) replays against one simulated machine so
jobs genuinely contend for burst-buffer capacity and bandwidth.

Traces come from two places:

* :func:`generate_trace` — a seeded synthetic generator covering the four
  canonical mixes (``write_heavy``, ``read_heavy``, ``producer_consumer``
  and the heavy-tail ``cloud`` mix, whose job sizes are lognormal with a
  fat tail plus occasional full-width "giant" jobs).
* :meth:`JobTrace.load` — JSON (schema 1) or CSV files, so externally
  recorded traces replay through the same engine.

Determinism: every stochastic draw comes from a named
:class:`~repro.sim.rng.StreamRNG` stream (``trace.arrival`` for
inter-arrival gaps, ``trace.job.<i>`` for job ``i``'s shape), so adding a
new per-job draw never perturbs other jobs, and the same ``seed`` always
yields the byte-identical trace.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.sim.rng import StreamRNG
from repro.units import KiB, MiB

__all__ = [
    "Job",
    "JobPhase",
    "JobTrace",
    "MIXES",
    "PATTERNS",
    "generate_trace",
]

#: Trace-file schema version (bump on incompatible layout changes).
TRACE_SCHEMA = 1

#: Per-job I/O patterns a phase script can be generated from.
PATTERNS = ("write_heavy", "read_heavy", "producer_consumer")

#: Trace-level mixes: one fixed pattern for every job, or the heavy-tail
#: ``cloud`` mix that draws each job's pattern (and occasionally a giant).
MIXES = PATTERNS + ("cloud",)

_PHASE_KINDS = ("write", "read", "compute")


@dataclass(frozen=True)
class JobPhase:
    """One step of a job's I/O script.

    ``write``/``read`` phases move ``nbytes_per_rank`` bytes per rank
    (writes append a fresh contiguous region; reads fetch the most
    recently written region); ``compute`` phases sleep for ``seconds``.
    """

    kind: str
    nbytes_per_rank: float = 0.0
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in _PHASE_KINDS:
            raise ValueError(f"unknown phase kind {self.kind!r}; "
                             f"valid: {list(_PHASE_KINDS)}")
        if self.nbytes_per_rank < 0:
            raise ValueError("nbytes_per_rank must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.kind == "compute" and self.nbytes_per_rank:
            raise ValueError("compute phases carry no bytes")
        if self.kind != "compute" and self.seconds:
            raise ValueError("I/O phases carry no compute seconds")


@dataclass(frozen=True)
class Job:
    """One job of a multi-job trace."""

    job_id: int
    arrival: float
    ranks: int
    pattern: str
    phases: Tuple[JobPhase, ...]

    def __post_init__(self):
        if self.job_id < 0:
            raise ValueError("job_id must be >= 0")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if not self.phases:
            raise ValueError("a job needs at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def name(self) -> str:
        """The program name the job runs under (``job0007``)."""
        return f"job{self.job_id:04d}"

    @property
    def write_bytes(self) -> float:
        """Total bytes the job writes (all ranks, all write phases)."""
        return sum(p.nbytes_per_rank for p in self.phases
                   if p.kind == "write") * self.ranks

    @property
    def read_bytes(self) -> float:
        return sum(p.nbytes_per_rank for p in self.phases
                   if p.kind == "read") * self.ranks

    @property
    def compute_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if p.kind == "compute")

    @property
    def bb_request(self) -> float:
        """Burst-buffer bytes the job asks the storage scheduler for.

        Writes append (never overwrite), so the peak footprint is the
        total written volume.
        """
        return self.write_bytes


@dataclass(frozen=True)
class JobTrace:
    """An arrival-ordered collection of jobs plus its provenance."""

    jobs: Tuple[Job, ...]
    mix: str = "custom"
    seed: int = 0
    schema: int = field(default=TRACE_SCHEMA, compare=False)

    def __post_init__(self):
        if self.schema != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {self.schema} "
                             f"(this build reads schema {TRACE_SCHEMA})")
        jobs = tuple(sorted(self.jobs, key=lambda j: (j.arrival, j.job_id)))
        if len({j.job_id for j in jobs}) != len(jobs):
            raise ValueError("duplicate job_id in trace")
        object.__setattr__(self, "jobs", jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    # -- JSON ---------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "schema": TRACE_SCHEMA,
            "mix": self.mix,
            "seed": self.seed,
            "jobs": [{
                "job_id": j.job_id,
                "arrival": j.arrival,
                "ranks": j.ranks,
                "pattern": j.pattern,
                "phases": [{
                    "kind": p.kind,
                    **({"nbytes_per_rank": p.nbytes_per_rank}
                       if p.kind != "compute" else {}),
                    **({"seconds": p.seconds}
                       if p.kind == "compute" else {}),
                } for p in j.phases],
            } for j in self.jobs],
        }, indent=2)

    @staticmethod
    def from_json(text: str) -> "JobTrace":
        doc = json.loads(text)
        if not isinstance(doc, dict) or "jobs" not in doc:
            raise ValueError("not a job trace: missing 'jobs'")
        jobs = tuple(
            Job(job_id=int(j["job_id"]),
                arrival=float(j["arrival"]),
                ranks=int(j["ranks"]),
                pattern=str(j["pattern"]),
                phases=tuple(
                    JobPhase(kind=str(p["kind"]),
                             nbytes_per_rank=float(
                                 p.get("nbytes_per_rank", 0.0)),
                             seconds=float(p.get("seconds", 0.0)))
                    for p in j["phases"]))
            for j in doc["jobs"])
        return JobTrace(jobs=jobs, mix=str(doc.get("mix", "custom")),
                        seed=int(doc.get("seed", 0)),
                        schema=int(doc.get("schema", TRACE_SCHEMA)))

    # -- CSV ----------------------------------------------------------------
    # One row per job; the phase script is packed into a single column as
    # e.g. ``write:8388608|compute:0.5|read:8388608`` (bytes for I/O
    # phases, seconds for compute).
    _CSV_FIELDS = ("job_id", "arrival", "ranks", "pattern", "phases")

    def to_csv(self) -> str:
        lines = [",".join(self._CSV_FIELDS)]
        for j in self.jobs:
            phases = "|".join(
                f"{p.kind}:{p.seconds!r}" if p.kind == "compute"
                else f"{p.kind}:{p.nbytes_per_rank!r}"
                for p in j.phases)
            lines.append(f"{j.job_id},{j.arrival!r},{j.ranks},"
                         f"{j.pattern},{phases}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_csv(text: str) -> "JobTrace":
        reader = csv.DictReader(text.splitlines())
        missing = set(JobTrace._CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"trace CSV missing columns: {sorted(missing)}")
        jobs: List[Job] = []
        for row in reader:
            phases = []
            for part in row["phases"].split("|"):
                kind, _, value = part.partition(":")
                if kind == "compute":
                    phases.append(JobPhase(kind, seconds=float(value)))
                else:
                    phases.append(JobPhase(kind,
                                           nbytes_per_rank=float(value)))
            jobs.append(Job(job_id=int(row["job_id"]),
                            arrival=float(row["arrival"]),
                            ranks=int(row["ranks"]),
                            pattern=row["pattern"],
                            phases=tuple(phases)))
        return JobTrace(jobs=tuple(jobs))

    # -- files --------------------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the trace; ``.csv`` selects CSV, anything else JSON."""
        text = (self.to_csv() if str(path).endswith(".csv")
                else self.to_json() + "\n")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    @staticmethod
    def load(path: Union[str, os.PathLike]) -> "JobTrace":
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if str(path).endswith(".csv"):
            return JobTrace.from_csv(text)
        return JobTrace.from_json(text)


# -- synthetic generation -----------------------------------------------------

#: cloud-mix pattern weights over PATTERNS (write-heavy dominates, as in
#: datacenter storage traces).
_CLOUD_WEIGHTS = (0.50, 0.25, 0.25)
#: Fraction of cloud-mix jobs that are full-width "giants" (heavy tail).
_CLOUD_GIANT_FRACTION = 0.08
#: Size multiplier a giant gets on top of its lognormal draw.
_CLOUD_GIANT_SCALE = 8.0
#: Lognormal sigma: modest spread for the fixed mixes, fat tail for cloud.
_SIGMA_NARROW = 0.5
_SIGMA_HEAVY = 1.4

_MIN_PHASE_BYTES = 64 * KiB


def _phases_for(pattern: str, nbytes: float, compute: float
                ) -> Tuple[JobPhase, ...]:
    write = JobPhase("write", nbytes_per_rank=nbytes)
    read = JobPhase("read", nbytes_per_rank=nbytes)
    think = (JobPhase("compute", seconds=compute),) if compute > 0 else ()
    if pattern == "write_heavy":
        # Two checkpoints with a compute gap: the VPIC shape.
        return (write,) + think + (write,)
    if pattern == "read_heavy":
        # One checkpoint, then repeated analysis passes over it.
        return (write,) + think + (read, read)
    if pattern == "producer_consumer":
        return (write,) + think + (read,)
    raise ValueError(f"unknown pattern {pattern!r}; valid: {list(PATTERNS)}")


def generate_trace(*, jobs: int = 50, mix: str = "cloud", seed: int = 0,
                   arrival_rate: float = 4.0,
                   mean_mb_per_rank: float = 8.0,
                   max_ranks: int = 16,
                   compute_seconds: float = 0.2) -> JobTrace:
    """Generate a deterministic synthetic trace.

    * Arrivals are Poisson: exponential inter-arrival gaps at
      ``arrival_rate`` jobs/second (stream ``trace.arrival``).
    * Job ``i``'s shape comes from stream ``trace.job.<i>`` with a fixed
      draw order (pattern, size, ranks, giant flag, compute), so a new
      knob appended to the order never reshuffles earlier draws.
    * Per-rank sizes are lognormal with mean ``mean_mb_per_rank`` MiB —
      a narrow spread for the fixed mixes, a fat tail (sigma 1.4) plus
      occasional full-width giants for the ``cloud`` mix.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; valid: {list(MIXES)}")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if mean_mb_per_rank <= 0:
        raise ValueError("mean_mb_per_rank must be positive")
    if max_ranks < 1:
        raise ValueError("max_ranks must be >= 1")
    if compute_seconds < 0:
        raise ValueError("compute_seconds must be >= 0")

    rng = StreamRNG(seed)
    arrivals = rng.stream("trace.arrival")
    heavy = mix == "cloud"
    sigma = _SIGMA_HEAVY if heavy else _SIGMA_NARROW
    # mu chosen so the lognormal has mean 1 regardless of sigma.
    mu = -0.5 * sigma * sigma

    out: List[Job] = []
    t = 0.0
    for i in range(jobs):
        t += float(arrivals.exponential(1.0 / arrival_rate))
        s = rng.stream(f"trace.job.{i}")
        # Fixed draw order — see docstring.
        if heavy:
            u = float(s.random())
            idx = 0
            acc = 0.0
            for idx, w in enumerate(_CLOUD_WEIGHTS):
                acc += w
                if u < acc:
                    break
            pattern = PATTERNS[idx]
        else:
            pattern = mix
        nbytes = mean_mb_per_rank * MiB * float(s.lognormal(mu, sigma))
        ranks = min(int(2 ** int(s.integers(0, 4))), max_ranks)
        if heavy and float(s.random()) < _CLOUD_GIANT_FRACTION:
            ranks = max_ranks
            nbytes *= _CLOUD_GIANT_SCALE
        compute = (float(s.exponential(compute_seconds))
                   if compute_seconds > 0 else 0.0)
        nbytes = max(float(int(nbytes)), _MIN_PHASE_BYTES)
        out.append(Job(job_id=i, arrival=t, ranks=ranks, pattern=pattern,
                       phases=_phases_for(pattern, nbytes, compute)))
    return JobTrace(jobs=tuple(out), mix=mix, seed=seed)
