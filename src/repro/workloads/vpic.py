"""VPIC-IO: the plasma-physics checkpoint kernel (§III-A/§III-C).

Each MPI process writes data for eight million particles per time step;
a particle has eight 4-byte floating-point properties, so every process
emits 8 variables x 8 Mi particles x 4 B = 256 MiB per step.  The
simulation alternates computation (emulated with a sleep — the paper
inserts 60 s) and checkpoint phases; each time step goes to its own file,
and both UniviStor and Data Elevator overlap the asynchronous flush with
the following compute phase.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.simmpi.comm import Communicator
from repro.simulation import Simulation
from repro.workloads.hdf5sim import DatasetSpec, Hdf5Layout

__all__ = ["VpicIO", "VPIC_BYTES_PER_PROC_PER_STEP", "VPIC_PROPERTIES"]

VPIC_PROPERTIES = ("x", "y", "z", "px", "py", "pz", "id1", "id2")
PARTICLES_PER_PROC = 8 * 2 ** 20
BYTES_PER_PROPERTY = 4
#: 8 properties x 8 Mi particles x 4 B = 256 MiB.
VPIC_BYTES_PER_PROC_PER_STEP = (len(VPIC_PROPERTIES) * PARTICLES_PER_PROC
                                * BYTES_PER_PROPERTY)


class VpicIO:
    """The VPIC-IO writer application."""

    #: Per-H5Dwrite object-header/attribute update cost coefficient: each
    #: dataset write updates the shared metadata region, whose small
    #: serialised writes contend like the Lustre shared-file plateau
    #: (~sqrt(p)).  This cost is a property of the HDF5 layer above ADIO,
    #: so it applies identically to UniviStor, Data Elevator and Lustre.
    HDF5_META_COEFF = 0.006

    def __init__(self, sim: Simulation, comm: Communicator,
                 fstype: str, steps: int = 5,
                 compute_seconds: float = 60.0,
                 path_prefix: str = "/pfs/vpic",
                 particles_per_proc: int = PARTICLES_PER_PROC):
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.sim = sim
        self.comm = comm
        self.fstype = fstype
        self.steps = steps
        self.compute_seconds = compute_seconds
        self.path_prefix = path_prefix
        self.bytes_per_property = particles_per_proc * BYTES_PER_PROPERTY
        self.layouts: Dict[int, Hdf5Layout] = {}

    def hdf5_metadata_seconds(self) -> float:
        """Object-header update time per H5Dwrite at this scale."""
        return self.HDF5_META_COEFF * self.comm.size ** 0.5

    def step_path(self, step: int) -> str:
        return f"{self.path_prefix}_step{step}.h5"

    def layout(self, step: int) -> Hdf5Layout:
        layout = self.layouts.get(step)
        if layout is None:
            layout = Hdf5Layout([
                DatasetSpec(name, self.bytes_per_property, self.comm.size)
                for name in VPIC_PROPERTIES])
            self.layouts[step] = layout
        return layout

    def seed_base(self, step: int, prop_index: int) -> int:
        """Distinct payload stream per (step, property, rank)."""
        return 100_000 * (step + 1) + 1_000 * prop_index

    # -- application processes ---------------------------------------------------
    def checkpoint(self, step: int) -> Generator:
        """Write one time step: 8 collective variable writes + close."""
        layout = self.layout(step)
        fh = yield from self.sim.open(self.comm, self.step_path(step), "w",
                                      fstype=self.fstype)
        meta_cost = self.hdf5_metadata_seconds()
        for i, prop in enumerate(VPIC_PROPERTIES):
            requests = layout.write_requests(
                prop, payload_seed_base=self.seed_base(step, i))
            yield from fh.write_at_all(requests)
            # H5Dwrite's object-header update on the shared metadata
            # region (counted as write time, like the paper measures).
            t0 = self.sim.engine.now
            yield self.sim.engine.timeout(meta_cost)
            self.sim.telemetry.record(app=self.comm.name, op="write",
                                      path=fh.path, t_start=t0,
                                      nbytes=0.0, driver="hdf5-meta")
        yield from fh.close()
        return fh

    def run(self, sync_last: bool = True) -> Generator:
        """The full simulation loop: [compute, checkpoint] x steps.

        The measured I/O time (the figures' convention) is what telemetry
        records: write + close per step, plus the *last* step's flush when
        ``sync_last`` (earlier flushes hide inside compute phases).
        """
        last_fh = None
        for step in range(self.steps):
            if self.compute_seconds > 0:
                yield self.sim.engine.timeout(self.compute_seconds)
            last_fh = yield from self.checkpoint(step)
        if sync_last and last_fh is not None:
            t0 = self.sim.engine.now
            yield from last_fh.sync()
            # The visible (non-overlapped) tail of the last flush.
            self.sim.telemetry.record(app=self.comm.name, op="flush-wait",
                                      path=last_fh.path, t_start=t0,
                                      driver=self.fstype)
        return last_fh

    # -- accounting ------------------------------------------------------------
    def measured_io_time(self) -> float:
        """The paper's Fig. 7/8 metric: open+write+close time for all
        steps plus the exposed wait for the last flush."""
        tel = self.sim.telemetry
        app = self.comm.name
        return (tel.total_time(app=app, op="open")
                + tel.total_time(app=app, op="write")
                + tel.total_time(app=app, op="close")
                + tel.total_time(app=app, op="flush-wait"))
