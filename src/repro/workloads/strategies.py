"""Pluggable burst-buffer storage schedulers (docs/MODEL.md §10).

The workload engine splits the schedulable burst-buffer capacity into a
fixed number of equal :class:`BBPool` shards (the virtual allocation
targets, DynoStore-style) and asks a :class:`StorageScheduler` where —
and whether — to place each job's reservation.  The scheduler answers
with an :class:`Allocation` or ``None`` ("keep the job queued"); the
engine owns all bookkeeping (pool charge/credit, admission order, the
per-program byte quota handed to the DHP layer).

Plugin protocol
---------------
A strategy is a class with:

* a unique ``name`` class attribute (the registry key),
* ``__init__(self, *, rng=None, params=None)`` — ``rng`` is a seeded
  ``numpy`` generator (only source of randomness a strategy may use;
  anything else breaks replay determinism), ``params`` a str->value
  mapping from ``WorkloadSpec.strategy_params``,
* ``allocate(self, job, request, pools)`` returning an
  :class:`Allocation` with ``nbytes <= request`` into a pool with
  ``free >= nbytes``, or ``None`` to defer the job.  ``pools`` is
  read-only and always ordered by ``pool_id``; ``allocate`` is called
  again for the same job after every completion, so deferring is cheap.

Register with the decorator::

    from repro.workloads import StorageScheduler, register_strategy

    @register_strategy
    class Widest(StorageScheduler):
        name = "widest"
        def allocate(self, job, request, pools):
            ...

after which ``WorkloadSpec(strategy="widest")`` resolves it by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Set, Type

__all__ = [
    "Allocation",
    "BBPool",
    "StorageScheduler",
    "available_strategies",
    "make_strategy",
    "register_strategy",
]


@dataclass
class BBPool:
    """One virtual burst-buffer capacity shard (engine-owned state)."""

    pool_id: int
    capacity: float
    allocated: float = 0.0
    #: job_ids currently holding a reservation in this pool.
    active_jobs: Set[int] = field(default_factory=set)

    @property
    def free(self) -> float:
        return self.capacity - self.allocated


@dataclass(frozen=True)
class Allocation:
    """A strategy's placement decision for one job."""

    job_id: int
    pool_id: int
    nbytes: float

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("allocation must be positive")


class StorageScheduler:
    """Base class for burst-buffer allocation strategies."""

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self, *, rng=None, params: Optional[Mapping] = None):
        self.rng = rng
        self.params = dict(params or {})

    def allocate(self, job, request: float, pools: Sequence[BBPool]
                 ) -> Optional[Allocation]:
        raise NotImplementedError

    def _eligible(self, request: float, pools: Sequence[BBPool]):
        return [p for p in pools if p.free >= request]


_REGISTRY: Dict[str, Type[StorageScheduler]] = {}


def register_strategy(cls: Type[StorageScheduler]
                      ) -> Type[StorageScheduler]:
    """Class decorator: add a scheduler to the by-name registry."""
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise TypeError(f"{cls.__name__} needs a non-empty 'name' "
                        "class attribute")
    if not callable(getattr(cls, "allocate", None)):
        raise TypeError(f"{cls.__name__} does not implement allocate()")
    current = _REGISTRY.get(name)
    if current is not None and current is not cls:
        raise ValueError(f"storage scheduler {name!r} already registered "
                         f"by {current.__name__}")
    _REGISTRY[name] = cls
    return cls


def make_strategy(name: str, *, rng=None,
                  params: Optional[Mapping] = None) -> StorageScheduler:
    """Instantiate a registered strategy by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown storage scheduler {name!r}; "
            f"registered: {sorted(_REGISTRY)}") from None
    return cls(rng=rng, params=params)


def available_strategies() -> list:
    return sorted(_REGISTRY)


# -- built-ins ----------------------------------------------------------------

@register_strategy
class RoundRobinScheduler(StorageScheduler):
    """First fit from a rotating cursor.

    Load concentrates on few pools while the cursor advances, leaving
    whole pools empty — which is exactly what lets heavy-tail giant
    requests through (the classic first-fit vs worst-fit trade-off).
    """

    name = "round_robin"

    def __init__(self, *, rng=None, params=None):
        super().__init__(rng=rng, params=params)
        self._cursor = 0

    def allocate(self, job, request, pools):
        n = len(pools)
        for i in range(n):
            pool = pools[(self._cursor + i) % n]
            if pool.free >= request:
                self._cursor = (pool.pool_id + 1) % n
                return Allocation(job.job_id, pool.pool_id, request)
        return None


@register_strategy
class WorstFitScheduler(StorageScheduler):
    """Place into the pool with the most free capacity.

    Spreads load evenly — good mean queue wait for uniform jobs, but the
    even loading leaves no pool with room for a giant request, so
    heavy-tail jobs starve behind it.
    """

    name = "worst_fit"

    def allocate(self, job, request, pools):
        eligible = self._eligible(request, pools)
        if not eligible:
            return None
        pool = min(eligible, key=lambda p: (-p.free, p.pool_id))
        return Allocation(job.job_id, pool.pool_id, request)


@register_strategy
class RandomScheduler(StorageScheduler):
    """Uniform random choice among pools that fit (seeded; the engine
    hands every instance its own named RNG stream, so replays are
    bit-identical)."""

    name = "random"

    def allocate(self, job, request, pools):
        eligible = self._eligible(request, pools)
        if not eligible:
            return None
        if self.rng is None:
            raise RuntimeError("random strategy needs an rng")
        pool = eligible[int(self.rng.integers(0, len(eligible)))]
        return Allocation(job.job_id, pool.pool_id, request)


@register_strategy
class InterferenceAwareScheduler(StorageScheduler):
    """Fewest-co-tenants placement with a per-pool concurrency cap.

    Chooses the eligible pool with the fewest active jobs (ties: most
    free, then lowest id) and refuses to co-schedule more than
    ``interference_limit`` jobs per pool (param, default 2): a job that
    would exceed the cap waits instead.  Trades queue wait for lower
    in-service interference — concurrent jobs share real burst-buffer
    bandwidth in the machine model, so fewer co-tenants means lower
    stretch.
    """

    name = "interference_aware"

    def allocate(self, job, request, pools):
        eligible = self._eligible(request, pools)
        if not eligible:
            return None
        pool = min(eligible,
                   key=lambda p: (len(p.active_jobs), -p.free, p.pool_id))
        limit = int(self.params.get("interference_limit", 2))
        if limit > 0 and len(pool.active_jobs) >= limit:
            return None
        return Allocation(job.job_id, pool.pool_id, request)
