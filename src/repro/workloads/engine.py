"""The multi-job workload engine (docs/MODEL.md §10).

Replays a :class:`~repro.workloads.jobs.JobTrace` against ONE simulated
machine: every job runs in the same event loop, through the same
simmpi + DHP stack, so concurrent jobs genuinely contend for CPU,
network and burst-buffer bandwidth.  What the engine adds on top of the
single-workflow :class:`~repro.simulation.Simulation` facade is
*admission*: jobs arrive over time, ask a pluggable
:class:`~repro.workloads.strategies.StorageScheduler` for a burst-buffer
reservation, and queue (FIFO, head-of-line) when the scheduler defers
them.  A granted reservation becomes the job's per-program byte quota in
the DHP layer (:meth:`UniviStorServers.set_bb_quota`), so a job that
writes more than it reserved spills to the PFS — reservations have real
performance consequences, not just bookkeeping ones.

Public surface: :class:`WorkloadSpec` (kw-only config, mirroring
:class:`~repro.core.config.UniviStorConfig`), :func:`run_trace` and
:func:`compare_strategies`; per-job metrics come back as
:class:`JobResult`/:class:`TraceResult`, side-channel counters (``wl-*``)
flow through ``Telemetry.counters``.
"""

from __future__ import annotations

import hashlib
import math
import os
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.spec import MachineSpec
from repro.core.config import UniviStorConfig
from repro.sim.faults import FaultSpec
from repro.sim.rng import StreamRNG
from repro.simmpi.mpiio import IORequest
from repro.simulation import Simulation
from repro.storage.datamodel import PatternPayload
from repro.units import MiB
from repro.workloads.jobs import Job, JobTrace, generate_trace
from repro.workloads.strategies import BBPool, make_strategy

__all__ = [
    "JobResult",
    "TraceResult",
    "WorkloadEngine",
    "WorkloadSpec",
    "compare_strategies",
    "run_trace",
]

_MACHINES = ("small", "cori", "summit")

_SYSTEM_CONFIGS = {
    "UniviStor/BB": UniviStorConfig.bb_only,
    "UniviStor/DRAM": UniviStorConfig.dram_only,
    "UniviStor/(DRAM+BB)": UniviStorConfig.dram_bb,
    "UniviStor/(Disk)": UniviStorConfig.pfs_only,
}

#: The strategies compare-strategies sweeps by default.
DEFAULT_STRATEGIES = ("round_robin", "worst_fit", "random",
                      "interference_aware")


@dataclass(frozen=True, kw_only=True)
class WorkloadSpec:
    """Everything a multi-job run can toggle (kw-only, like
    :class:`UniviStorConfig`).

    The defaults are tuned so the bundled ``small`` test machine is
    genuinely contended by a 50-job heavy-tail trace: a small
    ``bb_fraction`` makes the schedulable burst-buffer slice the scarce
    resource the strategies fight over.
    """

    # -- deployment ---------------------------------------------------------
    machine: str = "small"           # small | cori | summit
    nodes: int = 4
    procs_per_node: int = 4          # placement width for job communicators
    system: str = "UniviStor/BB"
    #: Full override; when set, ``system``/``chunk_size`` are ignored.
    config: Optional[UniviStorConfig] = None
    chunk_size: float = MiB          # finer than the 8 MiB default: multi-
    #                                  job quotas are MiB-scale
    # -- storage scheduling -------------------------------------------------
    strategy: str = "round_robin"
    #: Strategy knobs; accepts a mapping, stored as sorted item pairs so
    #: the spec stays hashable.
    strategy_params: Tuple[Tuple[str, float], ...] = ()
    bb_pools: int = 4
    #: Fraction of the machine's burst-buffer capacity the scheduler may
    #: reserve (the schedulable slice; the rest models other tenants).
    #: The small default keeps the bundled test machine contended.
    bb_fraction: float = 0.10
    #: Cap on concurrently running jobs (0 = unlimited).
    max_concurrent: int = 0
    # -- trace generation (WorkloadSpec.generate) ---------------------------
    jobs: int = 50
    mix: str = "cloud"
    arrival_rate: float = 16.0       # jobs/second
    mean_mb_per_rank: float = 16.0
    max_ranks: int = 0               # 0 -> nodes * procs_per_node
    compute_seconds: float = 0.2
    seed: int = 0
    # -- fault composition --------------------------------------------------
    #: Optional fault mini-language string (see ``FaultSpec.parse``),
    #: armed against the shared system before the first arrival.
    fault_spec: Optional[str] = None
    fault_seed: int = 0
    # -- verification -------------------------------------------------------
    verify_reads: bool = False

    def __post_init__(self):
        if isinstance(self.strategy_params, Mapping):
            object.__setattr__(
                self, "strategy_params",
                tuple(sorted(self.strategy_params.items())))
        else:
            object.__setattr__(
                self, "strategy_params",
                tuple((str(k), v) for k, v in self.strategy_params))
        if self.machine not in _MACHINES:
            raise ValueError(f"unknown machine {self.machine!r}; "
                             f"valid: {list(_MACHINES)}")
        if self.config is None and self.system not in _SYSTEM_CONFIGS:
            raise ValueError(f"unknown system {self.system!r}; "
                             f"valid: {sorted(_SYSTEM_CONFIGS)}")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.procs_per_node < 1:
            raise ValueError("procs_per_node must be >= 1")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.bb_pools < 1:
            raise ValueError("bb_pools must be >= 1")
        if not 0 < self.bb_fraction <= 1:
            raise ValueError("bb_fraction must be in (0, 1]")
        if self.max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0")
        if self.max_ranks < 0:
            raise ValueError("max_ranks must be >= 0")

    # -- derived ------------------------------------------------------------
    def machine_spec(self) -> MachineSpec:
        if self.machine == "cori":
            return MachineSpec.cori_haswell(nodes=self.nodes)
        if self.machine == "summit":
            return MachineSpec.summit_like(nodes=self.nodes)
        return MachineSpec.small_test(nodes=self.nodes)

    def univistor_config(self) -> UniviStorConfig:
        if self.config is not None:
            return self.config
        return _SYSTEM_CONFIGS[self.system](chunk_size=self.chunk_size)

    def generate(self) -> JobTrace:
        """Generate the synthetic trace this spec describes."""
        return generate_trace(
            jobs=self.jobs, mix=self.mix, seed=self.seed,
            arrival_rate=self.arrival_rate,
            mean_mb_per_rank=self.mean_mb_per_rank,
            max_ranks=self.max_ranks or self.nodes * self.procs_per_node,
            compute_seconds=self.compute_seconds)


@dataclass(frozen=True)
class JobResult:
    """Per-job outcome of a trace replay."""

    job_id: int
    name: str
    pattern: str
    ranks: int
    #: Pool holding the reservation (-1: the job reserved nothing).
    pool_id: int
    granted: float
    arrival: float
    admitted: float
    finished: float
    bytes_written: float
    bytes_read: float
    #: Estimated isolated service time (bytes over nominal BB bandwidth
    #: plus compute) — the stretch denominator.
    ideal_seconds: float

    @property
    def queue_wait(self) -> float:
        return self.admitted - self.arrival

    @property
    def stretch(self) -> float:
        span = self.finished - self.arrival
        return span / self.ideal_seconds if self.ideal_seconds > 0 else 1.0


@dataclass(frozen=True)
class TraceResult:
    """Whole-trace outcome for one strategy."""

    strategy: str
    seed: int
    mix: str
    jobs: Tuple[JobResult, ...]
    makespan: float
    #: Schedulable burst-buffer bytes (capacity * bb_fraction).
    bb_schedulable: float
    #: Time-averaged fraction of the schedulable slice reserved.
    occupancy: float
    counters: Dict[str, float] = field(compare=False)
    digest: str = ""

    @property
    def mean_queue_wait(self) -> float:
        return sum(j.queue_wait for j in self.jobs) / max(1, len(self.jobs))

    @property
    def max_queue_wait(self) -> float:
        return max((j.queue_wait for j in self.jobs), default=0.0)

    @property
    def mean_stretch(self) -> float:
        return sum(j.stretch for j in self.jobs) / max(1, len(self.jobs))

    @property
    def max_stretch(self) -> float:
        return max((j.stretch for j in self.jobs), default=0.0)

    def summary(self) -> Dict[str, float]:
        """The comparison metrics, one flat dict per strategy."""
        return {
            "jobs": float(len(self.jobs)),
            "makespan": self.makespan,
            "mean_queue_wait": self.mean_queue_wait,
            "max_queue_wait": self.max_queue_wait,
            "mean_stretch": self.mean_stretch,
            "max_stretch": self.max_stretch,
            "bb_occupancy": self.occupancy,
            "interference": self.counters.get("wl-interference", 0.0),
            "queued": self.counters.get("wl-queued", 0.0),
        }


class WorkloadEngine:
    """Admits a trace's jobs into one shared simulation."""

    def __init__(self, trace: JobTrace, spec: Optional[WorkloadSpec] = None):
        if not isinstance(trace, JobTrace):
            raise TypeError("trace must be a JobTrace "
                            "(use run_trace for path inputs)")
        if not trace.jobs:
            raise ValueError("empty trace")
        self.trace = trace
        self.spec = spec or WorkloadSpec()
        for job in trace.jobs:
            if self._nodes_needed(job) > self.spec.nodes:
                raise ValueError(
                    f"{job.name}: {job.ranks} ranks do not fit on "
                    f"{self.spec.nodes} nodes x "
                    f"{self.spec.procs_per_node} procs/node")
        self._ran = False

    # -- placement ----------------------------------------------------------
    def _nodes_needed(self, job: Job) -> int:
        ppn = min(self.spec.procs_per_node, job.ranks)
        return math.ceil(job.ranks / ppn)

    # -- the run ------------------------------------------------------------
    def run(self) -> TraceResult:
        if self._ran:
            raise RuntimeError("WorkloadEngine.run is one-shot; "
                               "build a new engine to rerun")
        self._ran = True
        spec = self.spec
        self.sim = sim = Simulation(spec.machine_spec())
        self.system = sim.install_univistor(spec.univistor_config())
        if spec.fault_spec:
            sim.install_faults(FaultSpec.parse(spec.fault_spec),
                               seed=spec.fault_seed)
        rng = StreamRNG(spec.seed).spawn("workload")
        self.strategy = make_strategy(
            spec.strategy, rng=rng.stream(f"strategy.{spec.strategy}"),
            params=dict(spec.strategy_params))
        bb_capacity = sim.machine.burst_buffer.device.capacity
        self.bb_schedulable = bb_capacity * spec.bb_fraction
        self.pool_capacity = self.bb_schedulable / spec.bb_pools
        self.pools = [BBPool(i, self.pool_capacity)
                      for i in range(spec.bb_pools)]
        self._pending: deque = deque()
        self._active: Dict[int, float] = {}     # job_id -> granted bytes
        self._results: List[JobResult] = []
        # Occupancy integral: area under reserved-bytes(t).
        self._occ_bytes = 0.0
        self._occ_area = 0.0
        self._occ_t = 0.0

        for job in self.trace.jobs:
            sim.engine.call_later(job.arrival, self._arrival_fn(job))
        sim.run()

        if self._pending:
            stuck = ", ".join(j.name for j in self._pending)
            raise RuntimeError(
                f"strategy {spec.strategy!r} never admitted: {stuck}")
        results = tuple(sorted(self._results, key=lambda r: r.job_id))
        makespan = max((r.finished for r in results), default=0.0)
        self._occ_touch(makespan)
        occupancy = (self._occ_area / (self.bb_schedulable * makespan)
                     if makespan > 0 and self.bb_schedulable > 0 else 0.0)
        counters = dict(sim.telemetry.counters)
        digest = self._digest(results, makespan)
        return TraceResult(strategy=spec.strategy, seed=spec.seed,
                           mix=self.trace.mix, jobs=results,
                           makespan=makespan,
                           bb_schedulable=self.bb_schedulable,
                           occupancy=occupancy, counters=counters,
                           digest=digest)

    def _digest(self, results: Sequence[JobResult], makespan: float) -> str:
        h = hashlib.sha256()
        h.update(repr((self.spec.strategy, self.spec.seed, self.trace.mix,
                       len(results), makespan)).encode())
        for r in results:
            h.update(f"{r.job_id}|{r.pool_id}|{r.granted!r}|{r.arrival!r}|"
                     f"{r.admitted!r}|{r.finished!r}|{r.bytes_written!r}|"
                     f"{r.bytes_read!r}\n".encode())
        return h.hexdigest()

    # -- admission ----------------------------------------------------------
    def _arrival_fn(self, job: Job):
        def fire(_event=None):
            self.sim.telemetry.incr("wl-arrive")
            self._pending.append(job)
            self._try_admit()
            if self._pending and self._pending[-1] is job:
                self.sim.telemetry.incr("wl-queued")
        return fire

    def _try_admit(self) -> None:
        spec = self.spec
        while self._pending:
            if spec.max_concurrent and \
                    len(self._active) >= spec.max_concurrent:
                return
            job = self._pending[0]
            request = min(job.bb_request, self.pool_capacity)
            if request <= 0:
                self._pending.popleft()
                self._admit(job, pool_id=-1, granted=0.0)
                continue
            alloc = self.strategy.allocate(job, request, self.pools)
            if alloc is None:
                self.sim.telemetry.incr("wl-deferred")
                return
            if alloc.job_id != job.job_id:
                raise RuntimeError(
                    f"strategy {spec.strategy!r} answered for job "
                    f"{alloc.job_id}, asked about {job.job_id}")
            if not 0 <= alloc.pool_id < len(self.pools):
                raise RuntimeError(f"strategy {spec.strategy!r} chose "
                                   f"nonexistent pool {alloc.pool_id}")
            pool = self.pools[alloc.pool_id]
            if alloc.nbytes > request or alloc.nbytes > pool.free + 1e-6:
                raise RuntimeError(
                    f"strategy {spec.strategy!r} overcommitted pool "
                    f"{alloc.pool_id}")
            self._pending.popleft()
            self._admit(job, pool_id=alloc.pool_id, granted=alloc.nbytes)

    def _admit(self, job: Job, pool_id: int, granted: float) -> None:
        sim = self.sim
        tele = sim.telemetry
        if pool_id >= 0:
            pool = self.pools[pool_id]
            self._occ_touch(sim.now)
            pool.allocated += granted
            self._occ_bytes += granted
            tele.incr("wl-interference", float(len(pool.active_jobs)))
            pool.active_jobs.add(job.job_id)
            self.system.set_bb_quota(job.name, granted)
        tele.incr("wl-admit")
        tele.incr("wl-bb-granted-bytes", granted)
        self._active[job.job_id] = granted
        ppn = min(self.spec.procs_per_node, job.ranks)
        offset = job.job_id % max(1, self.spec.nodes
                                  - self._nodes_needed(job) + 1)
        comm = sim.comm(job.name, job.ranks, procs_per_node=ppn,
                        node_offset=offset)
        sim.spawn(self._job_body(job, pool_id, granted, comm, sim.now),
                  name=job.name, shard=comm.shard_of_rank(0))

    def _release(self, job: Job, pool_id: int, granted: float) -> None:
        if pool_id >= 0:
            pool = self.pools[pool_id]
            self._occ_touch(self.sim.now)
            pool.allocated -= granted
            self._occ_bytes -= granted
            pool.active_jobs.discard(job.job_id)
            self.system.set_bb_quota(job.name, None)
        self._active.pop(job.job_id, None)
        self.sim.telemetry.incr("wl-complete")
        self._try_admit()

    def _occ_touch(self, now: float) -> None:
        self._occ_area += self._occ_bytes * (now - self._occ_t)
        self._occ_t = now

    # -- job execution ------------------------------------------------------
    def _job_body(self, job: Job, pool_id: int, granted: float, comm,
                  admitted: float):
        sim = self.sim
        path = f"/wl/{job.name}.h5"
        seed_base = (job.job_id + 1) * 100003
        eof = 0               # next write region starts here
        last_base = 0         # start of the most recent write region
        last_nbytes = 0       # its per-rank width
        last_seed = 0
        bytes_written = 0.0
        bytes_read = 0.0
        last_fh = None
        for idx, phase in enumerate(job.phases):
            if phase.kind == "compute":
                if phase.seconds > 0:
                    yield sim.engine.timeout(phase.seconds)
                continue
            if phase.kind == "write":
                n = int(phase.nbytes_per_rank)
                if n <= 0:
                    continue
                seed = seed_base + idx * 1009
                fh = yield from sim.open(comm, path, "w",
                                         fstype="univistor")
                yield from fh.write_at_all([
                    IORequest.contiguous_block(
                        r, n, PatternPayload(seed + r), base_offset=eof)
                    for r in range(comm.size)])
                yield from fh.close()
                last_fh = fh
                last_base, last_nbytes, last_seed = eof, n, seed
                eof += n * comm.size
                bytes_written += float(n) * comm.size
            else:  # read: fetch the most recently written region
                n = min(int(phase.nbytes_per_rank), last_nbytes)
                if n <= 0:
                    continue
                fh = yield from sim.open(comm, path, "r",
                                         fstype="univistor")
                results = yield from fh.read_at_all([
                    IORequest(r, last_base + r * last_nbytes, n)
                    for r in range(comm.size)])
                yield from fh.close()
                last_fh = fh
                bytes_read += float(n) * comm.size
                if self.spec.verify_reads:
                    self._verify(job, results, comm.size, last_seed)
        if last_fh is not None:
            yield from last_fh.sync()
        self.system.delete_file(path)
        sim.machine.unregister_program(job.name)
        finished = sim.now
        bw = sim.machine.spec.burst_buffer.aggregate_bandwidth
        ideal = ((bytes_written + bytes_read) / bw + job.compute_seconds
                 if bw > 0 else job.compute_seconds)
        self._results.append(JobResult(
            job_id=job.job_id, name=job.name, pattern=job.pattern,
            ranks=job.ranks, pool_id=pool_id, granted=granted,
            arrival=job.arrival, admitted=admitted, finished=finished,
            bytes_written=bytes_written, bytes_read=bytes_read,
            ideal_seconds=ideal))
        self._release(job, pool_id, granted)

    @staticmethod
    def _verify(job: Job, results, size: int, seed: int,
                sample_bytes: int = 4096) -> None:
        """Assert each rank's read-back starts with its write pattern."""
        for rank in range(size):
            got = b""
            for ext in results[rank]:
                if len(got) >= sample_bytes:
                    break
                take = int(min(ext.length, sample_bytes - len(got)))
                got += ext.payload.materialize(ext.payload_offset, take)
            expected = PatternPayload(seed + rank).materialize(0, len(got))
            if got != expected:
                raise AssertionError(
                    f"{job.name}: rank {rank} read-back mismatch")


# -- public entry points ------------------------------------------------------

def run_trace(trace: Union[JobTrace, str, os.PathLike], *,
              spec: Optional[WorkloadSpec] = None) -> TraceResult:
    """Replay a trace (object or JSON/CSV path) under one strategy."""
    if isinstance(trace, (str, os.PathLike)):
        trace = JobTrace.load(trace)
    return WorkloadEngine(trace, spec).run()


def compare_strategies(trace: Union[JobTrace, str, os.PathLike], *,
                       spec: Optional[WorkloadSpec] = None,
                       strategies: Sequence[str] = DEFAULT_STRATEGIES,
                       repeats: int = 1) -> Dict[str, TraceResult]:
    """Replay one trace under several strategies.

    With ``repeats > 1`` every strategy is rerun that many times and the
    run digests must be bit-identical — a cheap, always-on determinism
    check for the whole stack.
    """
    if isinstance(trace, (str, os.PathLike)):
        trace = JobTrace.load(trace)
    if not strategies:
        raise ValueError("no strategies to compare")
    base = spec or WorkloadSpec()
    out: Dict[str, TraceResult] = {}
    for name in strategies:
        sp = replace(base, strategy=name)
        first: Optional[TraceResult] = None
        for _ in range(max(1, repeats)):
            result = WorkloadEngine(trace, sp).run()
            if first is None:
                first = result
            elif result.digest != first.digest:
                raise RuntimeError(
                    f"strategy {name!r}: replay digests differ across "
                    "repeats (nondeterminism)")
        out[name] = first
    return out
