"""A minimal HDF5-like container layout.

Only the *shape* of HDF5 I/O matters to the experiments: a small metadata
region at the front of the file (superblock + object headers) that every
process reads/writes on open/close unless the collective optimisation is
on (§II-F), followed by contiguous dataset regions that ranks access in
disjoint blocks.  This module computes those offsets and generates the
corresponding :class:`~repro.simmpi.mpiio.IORequest` lists; it makes no
attempt to reproduce the real HDF5 bit format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simmpi.mpiio import IORequest
from repro.storage.datamodel import BytesPayload, PatternPayload, Payload

__all__ = ["DatasetSpec", "Hdf5Layout"]

#: Size of the simulated superblock + object-header region.
METADATA_REGION_BYTES = 64 * 1024


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset: ``nprocs`` blocks of ``bytes_per_proc`` each."""

    name: str
    bytes_per_proc: int
    nprocs: int

    def __post_init__(self):
        if self.bytes_per_proc <= 0 or self.nprocs <= 0:
            raise ValueError(f"invalid dataset spec {self}")

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_proc * self.nprocs


class Hdf5Layout:
    """Offset arithmetic for a container of contiguous datasets."""

    def __init__(self, datasets: List[DatasetSpec]):
        if not datasets:
            raise ValueError("need at least one dataset")
        names = [d.name for d in datasets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dataset names in {names}")
        self.datasets = list(datasets)
        self._offsets: Dict[str, int] = {}
        cursor = METADATA_REGION_BYTES
        for ds in datasets:
            self._offsets[ds.name] = cursor
            cursor += ds.total_bytes
        self.file_size = cursor

    def dataset(self, name: str) -> DatasetSpec:
        for ds in self.datasets:
            if ds.name == name:
                return ds
        raise KeyError(name)

    def dataset_offset(self, name: str) -> int:
        return self._offsets[name]

    def block_range(self, name: str, rank: int) -> Tuple[int, int]:
        """(offset, length) of ``rank``'s block of dataset ``name``."""
        ds = self.dataset(name)
        if not 0 <= rank < ds.nprocs:
            raise ValueError(f"rank {rank} outside dataset of {ds.nprocs}")
        return (self._offsets[name] + rank * ds.bytes_per_proc,
                ds.bytes_per_proc)

    # -- request builders ---------------------------------------------------
    def metadata_write(self) -> IORequest:
        """Root's superblock/object-header write."""
        return IORequest(0, 0, METADATA_REGION_BYTES,
                         BytesPayload(b"\x89HDF\r\n" +
                                      bytes(METADATA_REGION_BYTES - 6)))

    def write_requests(self, name: str,
                       payload_seed_base: int = 0) -> List[IORequest]:
        """One block write per rank; rank ``r`` carries pattern payload
        ``seed_base + r`` starting at its dataset-local offset (so the
        whole dataset reads back as one coherent per-rank stream)."""
        ds = self.dataset(name)
        out = []
        for rank in range(ds.nprocs):
            offset, length = self.block_range(name, rank)
            out.append(IORequest(rank, offset, length,
                                 PatternPayload(payload_seed_base + rank),
                                 payload_offset=0))
        return out

    def read_requests(self, name: str,
                      ranks: Optional[List[int]] = None,
                      reader_of_block=None) -> List[IORequest]:
        """Block reads; by default rank r reads block r (``reader_of_block``
        remaps, e.g. for a reader application with fewer ranks)."""
        ds = self.dataset(name)
        ranks = list(range(ds.nprocs)) if ranks is None else ranks
        out = []
        for block in ranks:
            reader = block if reader_of_block is None else reader_of_block(block)
            offset, length = self.block_range(name, block)
            out.append(IORequest(reader, offset, length))
        return out

    def expected_block_payload(self, name: str, rank: int,
                               payload_seed_base: int = 0) -> Payload:
        return PatternPayload(payload_seed_base + rank)
