"""I/O workloads of the evaluation (§III-A).

* :mod:`~repro.workloads.hdf5sim` — a minimal HDF5-like container layout
  (superblock + object headers + contiguous datasets) so workloads issue
  the same *access pattern* the real library would.
* :mod:`~repro.workloads.iobench` — the HDF5 micro-benchmark: every rank
  writes/reads an independent, overall-contiguous block of a shared file.
* :mod:`~repro.workloads.vpic` — the VPIC-IO kernel: 8 particle
  properties, 8 Mi particles/rank, 256 MiB/rank per time step, with
  compute (sleep) phases between checkpoints.
* :mod:`~repro.workloads.bdcats` — the BD-CATS-IO kernel: the parallel
  clustering reader that consumes all eight properties of all particles.

Multi-job workloads (docs/MODEL.md §10):

* :mod:`~repro.workloads.jobs` — the :class:`Job`/:class:`JobTrace`
  model, JSON/CSV loaders and the seeded synthetic trace generator.
* :mod:`~repro.workloads.strategies` — the pluggable
  :class:`StorageScheduler` registry (burst-buffer arbitration).
* :mod:`~repro.workloads.engine` — the multi-job orchestrator behind
  :func:`run_trace` / :func:`compare_strategies` and the kw-only
  :class:`WorkloadSpec`.
"""

# Single-app kernels first: the multi-job modules below may be imported
# while this package is still initialising.
from repro.workloads.hdf5sim import DatasetSpec, Hdf5Layout
from repro.workloads.iobench import MicroBench
from repro.workloads.vpic import VPIC_BYTES_PER_PROC_PER_STEP, VpicIO
from repro.workloads.bdcats import BdCatsIO
from repro.workloads.jobs import (Job, JobPhase, JobTrace, MIXES, PATTERNS,
                                  generate_trace)
from repro.workloads.strategies import (Allocation, BBPool, StorageScheduler,
                                        available_strategies, make_strategy,
                                        register_strategy)
from repro.workloads.engine import (JobResult, TraceResult, WorkloadEngine,
                                    WorkloadSpec, compare_strategies,
                                    run_trace)

__all__ = [
    "Allocation",
    "BBPool",
    "BdCatsIO",
    "DatasetSpec",
    "Hdf5Layout",
    "Job",
    "JobPhase",
    "JobResult",
    "JobTrace",
    "MicroBench",
    "MIXES",
    "PATTERNS",
    "StorageScheduler",
    "TraceResult",
    "VPIC_BYTES_PER_PROC_PER_STEP",
    "VpicIO",
    "WorkloadEngine",
    "WorkloadSpec",
    "available_strategies",
    "compare_strategies",
    "generate_trace",
    "make_strategy",
    "register_strategy",
    "run_trace",
]
