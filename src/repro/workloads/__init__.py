"""I/O workloads of the evaluation (§III-A).

* :mod:`~repro.workloads.hdf5sim` — a minimal HDF5-like container layout
  (superblock + object headers + contiguous datasets) so workloads issue
  the same *access pattern* the real library would.
* :mod:`~repro.workloads.iobench` — the HDF5 micro-benchmark: every rank
  writes/reads an independent, overall-contiguous block of a shared file.
* :mod:`~repro.workloads.vpic` — the VPIC-IO kernel: 8 particle
  properties, 8 Mi particles/rank, 256 MiB/rank per time step, with
  compute (sleep) phases between checkpoints.
* :mod:`~repro.workloads.bdcats` — the BD-CATS-IO kernel: the parallel
  clustering reader that consumes all eight properties of all particles.
"""

from repro.workloads.hdf5sim import DatasetSpec, Hdf5Layout
from repro.workloads.iobench import MicroBench
from repro.workloads.vpic import VPIC_BYTES_PER_PROC_PER_STEP, VpicIO
from repro.workloads.bdcats import BdCatsIO

__all__ = [
    "BdCatsIO",
    "DatasetSpec",
    "Hdf5Layout",
    "MicroBench",
    "VPIC_BYTES_PER_PROC_PER_STEP",
    "VpicIO",
]
