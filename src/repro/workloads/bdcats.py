"""BD-CATS-IO: the parallel clustering reader (§III-A/§III-D).

BD-CATS runs DBSCAN-style clustering over the particles VPIC produced;
its I/O kernel reads **all eight properties of all particles** from each
step file.  When the reader has fewer ranks than the writer (the workflow
experiments give each application half the processes), every reader rank
consumes multiple writer blocks.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.simmpi.comm import Communicator
from repro.simmpi.mpiio import IORequest
from repro.simulation import Simulation
from repro.workloads.vpic import VPIC_PROPERTIES, VpicIO

__all__ = ["BdCatsIO"]


class BdCatsIO:
    """The BD-CATS-IO reader application, paired with a VpicIO writer."""

    def __init__(self, sim: Simulation, comm: Communicator, vpic: VpicIO,
                 fstype: str):
        self.sim = sim
        self.comm = comm
        self.vpic = vpic
        self.fstype = fstype

    def _read_requests(self, step: int, prop: str) -> List[IORequest]:
        """All writer blocks of ``prop``, distributed over reader ranks.

        Contiguous writer blocks assigned to one reader rank coalesce
        into a single request (the real reader issues one hyperslab).
        """
        layout = self.vpic.layout(step)
        writers = self.vpic.comm.size
        readers = self.comm.size
        out: List[IORequest] = []
        for reader in range(readers):
            blocks = range(reader * writers // readers,
                           (reader + 1) * writers // readers)
            if not blocks:
                continue
            first_off, length = layout.block_range(prop, blocks[0])
            total = length * len(blocks)
            out.append(IORequest(reader, first_off, total))
        return out

    def read_step(self, step: int, verify_sample: bool = False) -> Generator:
        """Read all eight properties of one step file."""
        path = self.vpic.step_path(step)
        fh = yield from self.sim.open(self.comm, path, "r",
                                      fstype=self.fstype)
        results = None
        for i, prop in enumerate(VPIC_PROPERTIES):
            requests = self._read_requests(step, prop)
            results = yield from fh.read_at_all(requests)
            if verify_sample:
                self._verify(step, i, prop, results)
        yield from fh.close()
        return results

    def run(self, steps: Optional[int] = None,
            verify_sample: bool = False) -> Generator:
        """Read every step file in order (the analysis pass)."""
        steps = self.vpic.steps if steps is None else steps
        for step in range(steps):
            yield from self.read_step(step, verify_sample=verify_sample)

    def _verify(self, step: int, prop_index: int, prop: str,
                results) -> None:
        """Check the first bytes of reader rank 0's first block."""
        layout = self.vpic.layout(step)
        extents = results.get(0, [])
        if not extents:
            raise AssertionError(f"step {step} {prop}: reader got no data")
        ext = extents[0]
        sample = min(1024, ext.length)
        got = ext.payload.materialize(ext.payload_offset, sample)
        expected = layout.expected_block_payload(
            prop, 0, self.vpic.seed_base(step, prop_index)).materialize(
                0, sample)
        if got != expected:
            raise AssertionError(
                f"step {step} {prop}: stale or wrong data read back")

    # -- accounting ------------------------------------------------------------
    def measured_io_time(self) -> float:
        tel = self.sim.telemetry
        app = self.comm.name
        return (tel.total_time(app=app, op="open")
                + tel.total_time(app=app, op="read")
                + tel.total_time(app=app, op="close"))
