"""The HDF5 micro-benchmark (§III-A/§III-B).

"Each process creates a shared HDF5 file and writes/reads an independent
but overall contiguous block of data" — 256 MiB per process in the
figures.  The benchmark is a pair of application generators (write phase,
read phase) runnable against any registered ADIO driver.
"""

from __future__ import annotations

from typing import Generator

from repro.simmpi.comm import Communicator
from repro.simulation import Simulation
from repro.units import MiB
from repro.workloads.hdf5sim import DatasetSpec, Hdf5Layout

__all__ = ["MicroBench"]


class MicroBench:
    """Shared-file contiguous-block write/read benchmark."""

    def __init__(self, sim: Simulation, comm: Communicator, path: str,
                 fstype: str, bytes_per_proc: float = 256 * MiB,
                 payload_seed_base: int = 1000):
        self.sim = sim
        self.comm = comm
        self.path = path
        self.fstype = fstype
        self.bytes_per_proc = int(bytes_per_proc)
        self.layout = Hdf5Layout([DatasetSpec("data", self.bytes_per_proc,
                                              comm.size)])
        self.payload_seed_base = payload_seed_base

    # -- phases ------------------------------------------------------------
    def write_phase(self, sync: bool = False) -> Generator:
        """Open + collective write + close (+ optionally wait for flush)."""
        fh = yield from self.sim.open(self.comm, self.path, "w",
                                      fstype=self.fstype)
        requests = self.layout.write_requests(
            "data", payload_seed_base=self.payload_seed_base)
        yield from fh.write_at_all(requests)
        yield from fh.close()
        if sync:
            yield from fh.sync()
        return fh

    def read_phase(self, verify: bool = False,
                   sample_bytes: int = 4096) -> Generator:
        """Open + collective read + close; optionally verify a sample.

        Full byte verification of 256 MiB x p is wasteful; ``verify``
        materialises the first ``sample_bytes`` of each rank's block and
        checks them against the expected pattern stream.
        """
        fh = yield from self.sim.open(self.comm, self.path, "r",
                                      fstype=self.fstype)
        requests = self.layout.read_requests("data")
        results = yield from fh.read_at_all(requests)
        yield from fh.close()
        if verify:
            self.verify_sample(results, sample_bytes)
        return results

    # -- verification -----------------------------------------------------------
    def verify_sample(self, results, sample_bytes: int = 4096) -> None:
        """Assert each rank's block starts with its expected pattern."""
        for rank in range(self.comm.size):
            extents = results[rank]
            got = b""
            for ext in extents:
                if len(got) >= sample_bytes:
                    break
                take = min(ext.length, sample_bytes - len(got))
                got += ext.payload.materialize(ext.payload_offset, int(take))
            expected = self.layout.expected_block_payload(
                "data", rank, self.payload_seed_base).materialize(
                    0, len(got))
            if got != expected:
                raise AssertionError(
                    f"rank {rank}: read-back mismatch in {self.path}")
