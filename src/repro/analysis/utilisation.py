"""Machine utilisation reports.

Every storage device and network pipe in the model keeps cumulative
``busy_time`` and ``bytes_moved`` counters; this module rolls them up into
a per-resource report — which tier actually carried the bytes, and how
busy each pipe was over the run.  Useful for sanity-checking experiments
("was Lustre really the bottleneck?") and exposed through the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.topology import Machine
from repro.units import fmt_bytes, fmt_rate

__all__ = ["ResourceUsage", "UtilisationReport", "machine_utilisation"]


@dataclass(frozen=True)
class ResourceUsage:
    """One pipe's cumulative activity."""

    name: str
    busy_time: float
    bytes_moved: float
    utilisation: float  # busy fraction of elapsed simulated time
    bandwidth: float

    @property
    def mean_rate(self) -> float:
        return self.bytes_moved / self.busy_time if self.busy_time else 0.0


@dataclass
class UtilisationReport:
    """All resources, busiest first."""

    elapsed: float
    resources: List[ResourceUsage]

    def by_name(self, name: str) -> ResourceUsage:
        for r in self.resources:
            if r.name == name:
                return r
        raise KeyError(name)

    def busiest(self) -> Optional[ResourceUsage]:
        return self.resources[0] if self.resources else None

    def total_bytes(self) -> float:
        return sum(r.bytes_moved for r in self.resources)

    def to_markdown(self, top: Optional[int] = None) -> str:
        lines = ["| resource | moved | busy | util | mean rate |",
                 "|---|---|---|---|---|"]
        for r in self.resources[:top]:
            lines.append(
                f"| {r.name} | {fmt_bytes(r.bytes_moved)} | "
                f"{r.busy_time:.2f} s | {r.utilisation * 100:.0f}% | "
                f"{fmt_rate(r.mean_rate)} |")
        return "\n".join(lines)


def _usage(pipe, elapsed: float) -> ResourceUsage:
    return ResourceUsage(
        name=pipe.name,
        busy_time=pipe.busy_time,
        bytes_moved=pipe.bytes_moved,
        utilisation=(pipe.busy_time / elapsed) if elapsed > 0 else 0.0,
        bandwidth=pipe.bandwidth)


def machine_utilisation(machine: Machine, since: float = 0.0,
                        aggregate_nodes: bool = True) -> UtilisationReport:
    """Roll up every pipe's counters, busiest first.

    ``aggregate_nodes`` folds the per-node DRAM/SSD pipes into single
    "node-dram"/"node-ssd" rows (256 rows of per-node detail is rarely
    what you want).
    """
    elapsed = machine.engine.now - since
    resources: List[ResourceUsage] = []

    node_groups = {}
    for node in machine.nodes:
        pipes = [("node-dram", node.dram.pipe),
                 ("node-dram-read", node.dram.read_pipe)]
        if node.local_ssd is not None:
            pipes.append(("node-ssd", node.local_ssd.pipe))
        for label, pipe in pipes:
            if pipe.bytes_moved == 0 and pipe.busy_time == 0:
                continue
            if aggregate_nodes:
                busy, moved, bw = node_groups.get(label, (0.0, 0.0, 0.0))
                node_groups[label] = (busy + pipe.busy_time,
                                      moved + pipe.bytes_moved,
                                      bw + pipe.bandwidth)
            else:
                resources.append(_usage(pipe, elapsed))
    for label, (busy, moved, bw) in node_groups.items():
        # Node-aggregated utilisation: mean busy fraction across nodes.
        n = len(machine.nodes)
        resources.append(ResourceUsage(
            name=label, busy_time=busy / n, bytes_moved=moved,
            utilisation=(busy / n / elapsed) if elapsed > 0 else 0.0,
            bandwidth=bw))

    if machine.burst_buffer is not None:
        bb = machine.burst_buffer.device
        resources.append(_usage(bb.pipe, elapsed))
        if bb.read_pipe is not bb.pipe:
            resources.append(_usage(bb.read_pipe, elapsed))
    resources.append(_usage(machine.lustre.device.pipe, elapsed))
    resources.append(_usage(machine.network.backbone, elapsed))

    resources = [r for r in resources if r.bytes_moved > 0 or r.busy_time > 0]
    resources.sort(key=lambda r: r.bytes_moved, reverse=True)
    return UtilisationReport(elapsed=elapsed, resources=resources)
