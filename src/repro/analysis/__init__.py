"""Measurement and reporting utilities."""

from repro.analysis.metrics import OpRecord, Telemetry
from repro.analysis.report import Table, fmt_markdown_table
from repro.analysis.timeline import Lane, Timeline, build_timeline
from repro.analysis.utilisation import (
    ResourceUsage,
    UtilisationReport,
    machine_utilisation,
)
from repro.analysis.workload import strategy_table

__all__ = [
    "Lane",
    "OpRecord",
    "ResourceUsage",
    "Table",
    "Telemetry",
    "Timeline",
    "UtilisationReport",
    "build_timeline",
    "fmt_markdown_table",
    "machine_utilisation",
    "strategy_table",
]
