"""ASCII timeline (Gantt) rendering of telemetry records.

Turns a run's :class:`~repro.analysis.metrics.Telemetry` into a
per-lane text chart — one lane per (app, op) pair — so the overlap
behaviour the workflow experiments rely on (reads riding behind writes,
flushes hiding inside compute phases) is visible at a glance::

    vpic/write    |##  ##  ##  ##  ##                    |
    vpic/flush    |  ====  ====  ====                    |
    bdcats/read   |   ++   ++   ++   ++                  |

Used by the CLI (``repro vpic --timeline``-style flows) and by tests that
assert overlap structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import Telemetry

__all__ = ["Lane", "Timeline", "build_timeline"]

_GLYPHS = {
    "write": "#",
    "read": "+",
    "flush": "=",
    "flush-wait": "=",
    "replicate": "~",
    "open": "o",
    "close": "c",
}


@dataclass
class Lane:
    """One (app, op) stream of intervals."""

    app: str
    op: str
    intervals: List[Tuple[float, float]]

    @property
    def label(self) -> str:
        return f"{self.app}/{self.op}"

    @property
    def busy_time(self) -> float:
        return sum(t1 - t0 for t0, t1 in self.intervals)

    def overlaps(self, other: "Lane") -> float:
        """Total time this lane runs concurrently with ``other``."""
        total = 0.0
        for a0, a1 in self.intervals:
            for b0, b1 in other.intervals:
                total += max(0.0, min(a1, b1) - max(a0, b0))
        return total


@dataclass
class Timeline:
    """All lanes plus the run's horizon."""

    t_end: float
    lanes: List[Lane]

    def lane(self, app: str, op: str) -> Lane:
        for lane in self.lanes:
            if lane.app == app and lane.op == op:
                return lane
        raise KeyError(f"{app}/{op}")

    def render(self, width: int = 72) -> str:
        """The ASCII chart; one row per lane."""
        if self.t_end <= 0 or not self.lanes:
            return "(empty timeline)"
        label_width = max(len(lane.label) for lane in self.lanes) + 2
        scale = width / self.t_end
        rows = []
        for lane in self.lanes:
            cells = [" "] * width
            glyph = _GLYPHS.get(lane.op, "*")
            for t0, t1 in lane.intervals:
                lo = min(width - 1, int(t0 * scale))
                hi = min(width, max(lo + 1, int(t1 * scale + 0.5)))
                for i in range(lo, hi):
                    cells[i] = glyph
            rows.append(f"{lane.label:<{label_width}}|{''.join(cells)}|")
        axis = (f"{'':<{label_width}}0{'':{width - 10}}"
                f"{self.t_end:9.2f}s")
        rows.append(axis)
        return "\n".join(rows)


def build_timeline(telemetry: Telemetry,
                   ops: Optional[List[str]] = None,
                   apps: Optional[List[str]] = None,
                   min_duration: float = 0.0) -> Timeline:
    """Group records into per-(app, op) lanes in first-seen order."""
    lanes: Dict[Tuple[str, str], Lane] = {}
    t_end = 0.0
    for rec in telemetry.records:
        if ops is not None and rec.op not in ops:
            continue
        if apps is not None and rec.app not in apps:
            continue
        if rec.duration < min_duration:
            continue
        key = (rec.app, rec.op)
        lane = lanes.get(key)
        if lane is None:
            lane = Lane(rec.app, rec.op, [])
            lanes[key] = lane
        lane.intervals.append((rec.t_start, rec.t_end))
        t_end = max(t_end, rec.t_end)
    return Timeline(t_end=t_end, lanes=list(lanes.values()))
