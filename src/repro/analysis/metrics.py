"""Operation timing records and I/O-rate accounting.

The paper's metric (§III-A): *"We measured the time required to open,
write, read, and close a file.  We define I/O rate as the ratio of the
size of data read/written to the I/O time."*  :class:`Telemetry` collects
exactly those per-operation records from the drivers and computes the
aggregate rates the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine

__all__ = ["OpRecord", "Telemetry"]


@dataclass(frozen=True)
class OpRecord:
    """One timed file operation."""

    app: str
    op: str        # "open" | "write" | "read" | "close" | "flush"
    path: str
    t_start: float
    t_end: float
    nbytes: float = 0.0
    driver: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Telemetry:
    """Collects :class:`OpRecord` entries during a simulation run."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.records: List[OpRecord] = []

    def record(self, app: str, op: str, path: str, t_start: float,
               nbytes: float = 0.0, driver: str = "") -> OpRecord:
        """Close out an operation that started at ``t_start`` (ends now)."""
        rec = OpRecord(app=app, op=op, path=path, t_start=t_start,
                       t_end=self.engine.now, nbytes=nbytes, driver=driver)
        self.records.append(rec)
        return rec

    # -- selection ---------------------------------------------------------
    def select(self, app: Optional[str] = None, op: Optional[str] = None,
               path: Optional[str] = None,
               predicate: Optional[Callable[[OpRecord], bool]] = None
               ) -> List[OpRecord]:
        out = self.records
        if app is not None:
            out = [r for r in out if r.app == app]
        if op is not None:
            out = [r for r in out if r.op == op]
        if path is not None:
            out = [r for r in out if r.path == path]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    # -- aggregates -----------------------------------------------------------
    def total_time(self, **kw) -> float:
        return sum(r.duration for r in self.select(**kw))

    def total_bytes(self, **kw) -> float:
        return sum(r.nbytes for r in self.select(**kw))

    def io_rate(self, **kw) -> float:
        """Bytes moved / time spent, over the selected records (§III-A)."""
        time = self.total_time(**kw)
        if time <= 0:
            return 0.0
        return self.total_bytes(**kw) / time

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.records:
            counts[r.op] = counts.get(r.op, 0) + 1
        return counts

    def clear(self) -> None:
        self.records.clear()
