"""Operation timing records and I/O-rate accounting.

The paper's metric (§III-A): *"We measured the time required to open,
write, read, and close a file.  We define I/O rate as the ratio of the
size of data read/written to the I/O time."*  :class:`Telemetry` collects
exactly those per-operation records from the drivers and computes the
aggregate rates the figures plot.

Aggregates are maintained **incrementally**: :meth:`Telemetry.record`
folds each record into running ``(time, bytes, count)`` sums for every
combination of ``(app, op, driver)`` wildcards, so :meth:`io_rate`,
:meth:`total_time` and :meth:`total_bytes` are O(1) dict hits for those
filters — they used to rescan the whole record list per call, inside the
experiment sweep loops.  ``path=`` / ``predicate=`` filters still scan.
Accumulation happens in record-arrival order, exactly the order the old
scans summed in, so the reported floats are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine

__all__ = ["OpRecord", "Telemetry"]

#: (time, bytes, count) of an empty selection.  Integer zeros, matching
#: what ``sum()`` over no records used to return.
_ZERO = (0, 0, 0)


@dataclass(frozen=True)
class OpRecord:
    """One timed file operation."""

    app: str
    op: str        # "open" | "write" | "read" | "close" | "flush"
    path: str
    t_start: float
    t_end: float
    nbytes: float = 0.0
    driver: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Telemetry:
    """Collects :class:`OpRecord` entries during a simulation run."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.records: List[OpRecord] = []
        # (app | None, op | None, driver | None) -> [time, bytes, count];
        # None is a wildcard, so the key a query builds from its filters
        # addresses its aggregate directly.
        self._aggregates: Dict[tuple, list] = {}
        #: Named event counters (``meta-batch``, ``cache-hit``, ...) — a
        #: side channel deliberately separate from the :class:`OpRecord`
        #: stream: counters track host-side fast-path activity and must
        #: not perturb the pinned record sequences the golden-digest
        #: tests hash.
        self.counters: Dict[str, float] = {}

    def incr(self, name: str, value: float = 1.0) -> None:
        """Bump a named counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def record(self, app: str, op: str, path: str, t_start: float,
               nbytes: float = 0.0, driver: str = "") -> OpRecord:
        """Close out an operation that started at ``t_start`` (ends now)."""
        rec = OpRecord(app=app, op=op, path=path, t_start=t_start,
                       t_end=self.engine.now, nbytes=nbytes, driver=driver)
        self.records.append(rec)
        duration = rec.t_end - t_start
        aggregates = self._aggregates
        for key in ((None, None, None), (app, None, None),
                    (None, op, None), (None, None, driver),
                    (app, op, None), (app, None, driver),
                    (None, op, driver), (app, op, driver)):
            entry = aggregates.get(key)
            if entry is None:
                aggregates[key] = [duration, nbytes, 1]
            else:
                entry[0] += duration
                entry[1] += nbytes
                entry[2] += 1
        return rec

    # -- selection ---------------------------------------------------------
    def select(self, app: Optional[str] = None, op: Optional[str] = None,
               path: Optional[str] = None, driver: Optional[str] = None,
               predicate: Optional[Callable[[OpRecord], bool]] = None
               ) -> List[OpRecord]:
        out = self.records
        if app is not None:
            out = [r for r in out if r.app == app]
        if op is not None:
            out = [r for r in out if r.op == op]
        if path is not None:
            out = [r for r in out if r.path == path]
        if driver is not None:
            out = [r for r in out if r.driver == driver]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    # -- aggregates -----------------------------------------------------------
    def _aggregate(self, app=None, op=None, path=None, driver=None,
                   predicate=None) -> Optional[tuple]:
        """The (time, bytes, count) sums for a filter, or None if the
        filter needs a record scan (``path`` / ``predicate``)."""
        if path is not None or predicate is not None:
            return None
        return self._aggregates.get((app, op, driver), _ZERO)

    def total_time(self, **kw) -> float:
        agg = self._aggregate(**kw)
        if agg is not None:
            return agg[0]
        return sum(r.duration for r in self.select(**kw))

    def total_bytes(self, **kw) -> float:
        agg = self._aggregate(**kw)
        if agg is not None:
            return agg[1]
        return sum(r.nbytes for r in self.select(**kw))

    def io_rate(self, **kw) -> float:
        """Bytes moved / time spent, over the selected records (§III-A)."""
        time = self.total_time(**kw)
        if time <= 0:
            return 0.0
        return self.total_bytes(**kw) / time

    def op_counts(self) -> Dict[str, int]:
        return {key[1]: entry[2]
                for key, entry in self._aggregates.items()
                if key[0] is None and key[1] is not None and key[2] is None}

    def clear(self) -> None:
        self.records.clear()
        self._aggregates.clear()
        self.counters.clear()
