"""Reporting helpers for multi-job workload runs (docs/MODEL.md §10)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.analysis.report import Table

if TYPE_CHECKING:  # import would be cyclic at runtime
    from repro.workloads.engine import TraceResult

__all__ = ["strategy_table"]

#: summary() keys shown per strategy, in column order.
_COLUMNS = ("mean_queue_wait", "max_queue_wait", "mean_stretch",
            "max_stretch", "bb_occupancy", "interference", "queued",
            "makespan")


def strategy_table(results: Mapping[str, "TraceResult"]) -> Table:
    """One row per strategy, one column per comparison metric.

    ``results`` is the mapping :func:`repro.workloads.compare_strategies`
    returns; rows sort by strategy name, so the table is stable across
    runs of the same comparison.
    """
    if not results:
        raise ValueError("no strategy results to tabulate")
    table = Table(title="Storage-scheduler comparison",
                  xlabel="strategy", ylabel="metric value")
    for name in sorted(results):
        summary = results[name].summary()
        for column in _COLUMNS:
            table.add(name, column, summary[column])
    return table
