"""Paper-style result tables.

Each experiment runner produces a :class:`Table` whose rows are process
counts and whose columns are systems/variants — the exact series the
paper's figures plot.  The benchmark harness prints these with
:func:`fmt_markdown_table` so a run's output is directly comparable to the
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Table", "fmt_markdown_table"]


@dataclass
class Table:
    """A figure/table: row label (x-axis) -> {series -> value}."""

    title: str
    xlabel: str
    ylabel: str
    series: List[str] = field(default_factory=list)
    rows: Dict[object, Dict[str, float]] = field(default_factory=dict)

    def add(self, x: object, series: str, value: float) -> None:
        if series not in self.series:
            self.series.append(series)
        self.rows.setdefault(x, {})[series] = value

    def column(self, series: str) -> List[float]:
        return [self.rows[x].get(series, float("nan"))
                for x in sorted(self.rows)]

    def xs(self) -> List[object]:
        return sorted(self.rows)

    def ratio(self, numerator: str, denominator: str) -> Dict[object, float]:
        """Per-row speedup of one series over another (the paper's 'x')."""
        out = {}
        for x in self.xs():
            num = self.rows[x].get(numerator)
            den = self.rows[x].get(denominator)
            if num is not None and den not in (None, 0.0):
                out[x] = num / den
        return out

    def ratio_band(self, numerator: str, denominator: str):
        """(min, mean, max) speedup across rows — the paper's bands."""
        ratios = list(self.ratio(numerator, denominator).values())
        if not ratios:
            return (float("nan"),) * 3
        return (min(ratios), sum(ratios) / len(ratios), max(ratios))


def fmt_markdown_table(table: Table, value_fmt: str = "{:.3g}") -> str:
    """Render a :class:`Table` as GitHub-flavoured markdown."""
    header = [table.xlabel] + table.series
    lines = ["### " + table.title,
             f"(values: {table.ylabel})",
             "| " + " | ".join(header) + " |",
             "|" + "|".join(["---"] * len(header)) + "|"]
    for x in table.xs():
        cells = [str(x)]
        for s in table.series:
            v = table.rows[x].get(s)
            cells.append("" if v is None else value_fmt.format(v))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
