"""Fig. 10 — the 10-step workflow across storage layers.

Ten VPIC steps no longer fit in DRAM, so UniviStor/(DRAM+BB) spreads the
data over the distributed DRAM layer *and* the burst buffer while BD-CATS
consumes it — the unified-view payoff.  Compared against placing all data
on the BB or on Lustre, all in overlap mode.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.core.config import UniviStorConfig
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import sweep
from repro.experiments.fig9 import run_workflow

__all__ = ["run_fig10", "FIG10_VARIANTS"]

FIG10_VARIANTS = [
    ("UniviStor/(DRAM+BB)", lambda **kw: UniviStorConfig.dram_bb(**kw)),
    ("UniviStor/(BB)", lambda **kw: UniviStorConfig.bb_only(**kw)),
    ("UniviStor/(Disk)", lambda **kw: UniviStorConfig.pfs_only(**kw)),
]


def run_fig10(procs_list: Optional[List[int]] = None, steps: int = 10,
              particles_per_proc: Optional[int] = None,
              verify: bool = False) -> Table:
    """Elapsed workflow time (lower is better).  Paper bands: DRAM+BB is
    1.5-2x (avg 1.8x) faster than BB-only and 4-4.8x (avg 4.3x) faster
    than Lustre-only placement."""
    table = Table(title=f"Fig. 10 — elapsed time, {steps}-step workflow "
                        "across storage layers",
                  xlabel="processes", ylabel="elapsed time (s)")
    for procs in procs_list or sweep():
        for label, factory in FIG10_VARIANTS:
            config = factory(workflow_enabled=True)
            elapsed = run_workflow(procs, "UniviStor/DRAM", True, steps,
                                   config=config,
                                   particles_per_proc=particles_per_proc,
                                   verify=verify)
            table.add(procs, label, elapsed)
    return table


register_experiment("fig10", run_fig10)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig10"))
