"""Run every figure's experiment and emit the EXPERIMENTS.md evidence.

Usage::

    python -m repro.experiments.runall [--sweep paper|small|64,256] \
                                       [--out results/]

Writes one JSON file per figure (raw tables) plus ``summary.md`` with the
paper-vs-measured ratio bands.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.analysis.report import Table, fmt_markdown_table
from repro.experiments import run_experiment

#: (figure id, [(numerator, denominator, invert, paper band)]).  The id is
#: the experiment-registry name; ``invert`` marks time-valued tables where
#: the paper's "speedup" is slower-series / faster-series.
FIGURES = [
    ("fig5a", [
        ("IA+COC", "No-IA", False, "1.45-2.5x (avg 1.9x)"),
        ("IA+COC", "No-COC", False, "1.1-3.5x (avg 1.6x)")]),
    ("fig5b", [
        ("IA+COC", "No-IA", False, "1.13-1.5x (avg 1.25x)"),
        ("IA+COC", "No-COC", False, "1.15-1.8x (avg 1.3x)")]),
    ("fig5c", [
        ("IA+ADPT", "Disabled", False, "1.9-2.7x (avg 2.3x)")]),
    ("fig6a", [
        ("UniviStor/DRAM", "DE", False, "3.7-5.6x (avg 4.3x)"),
        ("UniviStor/BB", "DE", False, "1.2-1.7x (avg 1.3x)"),
        ("UniviStor/DRAM", "Lustre", False, "up to 46x"),
        ("UniviStor/BB", "Lustre", False, "up to 12x")]),
    ("fig6b", [
        ("UniviStor/DRAM", "DE", False, "2.7-4.5x (avg 3.6x)"),
        ("UniviStor/BB", "DE", False, "1.15-1.6x (avg 1.2x)"),
        ("UniviStor/DRAM", "Lustre", False, "up to 16.8x"),
        ("UniviStor/BB", "Lustre", False, "up to 5.4x")]),
    ("fig6c", [
        ("UniviStor/DRAM", "DE", False, "1.8-2.5x (avg 2x)"),
        ("UniviStor/BB", "DE", False, "1.6-2.5x (avg 1.8x)")]),
    ("fig7", [
        ("DE", "UniviStor/DRAM", True, "1.9-3.1x (avg 2.5x)"),
        ("DE", "UniviStor/BB", True, "1.1-1.6x (avg 1.3x)")]),
    ("fig8", [
        ("UniviStor/(BB+Disk)", "UniviStor/(DRAM+BB+Disk)", True,
         "1.2-1.6x (avg 1.4x)"),
        ("UniviStor/(Disk)", "UniviStor/(DRAM+BB+Disk)", True,
         "1.4-2x (avg 1.7x)")]),
    ("fig9", [
        ("UniviStor/DRAM Nonoverlap", "UniviStor/DRAM Overlap", True,
         "1.2-1.7x (avg 1.3x)"),
        ("UniviStor/BB Nonoverlap", "UniviStor/BB Overlap", True,
         "1.5-2x (avg 1.7x)"),
        ("DE", "UniviStor/DRAM Nonoverlap", True, "3.5-17x (avg 9x)"),
        ("DE", "UniviStor/BB Nonoverlap", True, "1.3-7.2x (avg 3.4x)")]),
    ("fig10", [
        ("UniviStor/(BB)", "UniviStor/(DRAM+BB)", True,
         "1.5-2x (avg 1.8x)"),
        ("UniviStor/(Disk)", "UniviStor/(DRAM+BB)", True,
         "4-4.8x (avg 4.3x)")]),
]


def band(table: Table, num: str, den: str):
    ratios = list(table.ratio(num, den).values())
    if not ratios:
        return None
    return (min(ratios), sum(ratios) / len(ratios), max(ratios))


def table_to_json(table: Table) -> dict:
    return {
        "title": table.title,
        "xlabel": table.xlabel,
        "ylabel": table.ylabel,
        "series": table.series,
        "rows": {str(x): table.rows[x] for x in table.xs()},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep", default=None,
                        help="paper | small | comma list (default: "
                             "REPRO_SWEEP or small)")
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", default=None,
                        help="comma list of figure ids to run")
    args = parser.parse_args(argv)
    if args.sweep:
        os.environ["REPRO_SWEEP"] = args.sweep
    only = set(args.only.split(",")) if args.only else None
    os.makedirs(args.out, exist_ok=True)

    summary = ["# Paper-vs-measured summary",
               "",
               f"sweep: `{os.environ.get('REPRO_SWEEP', 'small')}`", ""]
    for fig_id, checks in FIGURES:
        if only and fig_id not in only:
            continue
        t0 = time.time()
        table = run_experiment(fig_id)
        wall = time.time() - t0
        with open(os.path.join(args.out, f"{fig_id}.json"), "w") as fh:
            json.dump(table_to_json(table), fh, indent=1)
        print(f"== {fig_id} ({wall:.0f}s wall)", flush=True)
        print(fmt_markdown_table(table, "{:.4g}"))
        summary.append(f"## {fig_id} — {table.title}")
        summary.append("")
        summary.append("| ratio | paper | measured min..max (mean) |")
        summary.append("|---|---|---|")
        for num, den, _invert, paper in checks:
            # For rate tables the numerator is the faster series; for time
            # tables it is the slower one — either way ratio(num, den) is
            # the paper's quoted speedup.
            b = band(table, num, den)
            if b is None:
                row = f"| {num} vs {den} | {paper} | (missing) |"
            else:
                lo, mean, hi = b
                row = (f"| {num} vs {den} | {paper} | "
                       f"{lo:.2f}..{hi:.2f} (mean {mean:.2f}) |")
            summary.append(row)
            print(row, flush=True)
        summary.append("")
    with open(os.path.join(args.out, "summary.md"), "w") as fh:
        fh.write("\n".join(summary) + "\n")
    print(f"\nwrote {args.out}/summary.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
