"""Experiment runners: one module per figure of the evaluation (§III).

Every runner returns a :class:`repro.analysis.report.Table` whose rows are
process counts and whose columns are the figure's series, so the benchmark
harness can print the same rows the paper plots and assert the ratio bands
DESIGN.md records.

Entry point: the registry.  Importing this package registers every figure
runner (plus the multi-job ``"workload"`` comparison) by name, so
``run_experiment("fig7", {"steps": 3})`` replaces hunting for per-module
functions; the ``run_fig*`` names stay re-exported for compatibility.
"""

from repro.experiments.registry import (list_experiments,
                                        register_experiment, run_experiment)
from repro.experiments.common import PAPER_SWEEP, SMALL_SWEEP, build_simulation
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.fig6 import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10

__all__ = [
    "PAPER_SWEEP",
    "SMALL_SWEEP",
    "build_simulation",
    "list_experiments",
    "register_experiment",
    "run_experiment",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig6a",
    "run_fig6b",
    "run_fig6c",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
]
