"""Fig. 7 — total I/O time of 5-time-step VPIC-IO on a single layer.

VPIC-IO writes 256 MiB per process per step with a 60 s compute phase
between checkpoints; UniviStor and Data Elevator cache the checkpoints
(DRAM or BB) and flush asynchronously during compute, so the measured I/O
time is the per-step write time plus the *exposed* flush of the last step
("+Flush" in the paper's stacked bars).  Lustre writes synchronously.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import build_simulation, sweep
from repro.workloads.vpic import VpicIO

__all__ = ["run_fig7", "FIG7_SYSTEMS"]

FIG7_SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "DE", "Lustre"]


def run_fig7(procs_list: Optional[List[int]] = None, steps: int = 5,
             compute_seconds: float = 60.0,
             particles_per_proc: Optional[int] = None) -> Table:
    """Total I/O time (lower is better).  Paper bands: UniviStor/DRAM is
    1.9-3.1x (avg 2.5x) and UniviStor/BB 1.1-1.6x (avg 1.3x) faster than
    Data Elevator."""
    table = Table(title=f"Fig. 7 — total I/O time, {steps}-step VPIC-IO",
                  xlabel="processes", ylabel="I/O time (s)")
    kwargs = {}
    if particles_per_proc is not None:
        kwargs["particles_per_proc"] = particles_per_proc
    for procs in procs_list or sweep():
        for system in FIG7_SYSTEMS:
            sim, fstype = build_simulation(procs, system)
            comm = sim.comm("vpic", size=procs)
            vpic = VpicIO(sim, comm, fstype, steps=steps,
                          compute_seconds=compute_seconds, **kwargs)

            def app():
                yield from vpic.run(sync_last=True)

            sim.run_to_completion(app(), name=f"fig7-{system}")
            table.add(procs, system, vpic.measured_io_time())
            if system != "Lustre":
                # The exposed flush tail — the paper's "+Flush" segment.
                table.add(procs, f"{system} Flush",
                          sim.telemetry.total_time(app="vpic",
                                                   op="flush-wait"))
    return table


register_experiment("fig7", run_fig7)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig7"))
