"""Fig. 6 — UniviStor vs Data Elevator vs Lustre (micro-benchmarks).

(a) write rate, (b) read rate, (c) flush rate; 256 MiB per process,
64-8192 processes.  All UniviStor optimisations enabled.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import build_simulation, io_rate, sweep
from repro.units import MiB
from repro.workloads.iobench import MicroBench

__all__ = ["run_fig6a", "run_fig6b", "run_fig6c",
           "FIG6AB_SYSTEMS", "FIG6C_SYSTEMS"]

FIG6AB_SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "DE", "Lustre"]
#: Lustre has no caching layer, hence no flush series in Fig. 6c.
FIG6C_SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "DE"]


def _run(op: str, systems: List[str], title: str,
         procs_list: Optional[List[int]], bytes_per_proc: float,
         verify: bool = False) -> Table:
    table = Table(title=title, xlabel="processes", ylabel="I/O rate (B/s)")
    for procs in procs_list or sweep():
        for system in systems:
            sim, fstype = build_simulation(procs, system)
            comm = sim.comm("iobench", size=procs)
            bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                               bytes_per_proc=bytes_per_proc)

            def app():
                if op == "flush":
                    yield from bench.write_phase(sync=True)
                    return
                yield from bench.write_phase()
                if op == "read":
                    sim.telemetry.clear()
                    yield from bench.read_phase(verify=verify)

            sim.run_to_completion(app(), name=f"fig6-{system}")
            if op == "flush":
                table.add(procs, system, sim.telemetry.io_rate(op="flush"))
            else:
                ops = ("open", op, "close")
                table.add(procs, system,
                          io_rate(sim, "iobench", ops=ops, data_ops=(op,)))
    return table


def run_fig6a(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB) -> Table:
    """Write (paper: UV/DRAM 3.7-5.6x DE and up to 46x Lustre; UV/BB
    1.2-1.7x DE and up to 12x Lustre)."""
    return _run("write", FIG6AB_SYSTEMS,
                "Fig. 6a — micro-benchmark write, UniviStor vs DE vs Lustre",
                procs_list, bytes_per_proc)


def run_fig6b(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB,
              verify: bool = False) -> Table:
    """Read (paper: UV/DRAM 2.7-4.5x DE, <=16.8x Lustre; UV/BB 1.15-1.6x
    DE, <=5.4x Lustre)."""
    return _run("read", FIG6AB_SYSTEMS,
                "Fig. 6b — micro-benchmark read, UniviStor vs DE vs Lustre",
                procs_list, bytes_per_proc, verify=verify)


def run_fig6c(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB) -> Table:
    """Flush to Lustre (paper: UV/DRAM 1.8-2.5x DE, UV/BB 1.6-2.5x DE)."""
    return _run("flush", FIG6C_SYSTEMS,
                "Fig. 6c — flush rate to Lustre, UniviStor vs DE",
                procs_list, bytes_per_proc)


register_experiment("fig6a", run_fig6a)
register_experiment("fig6b", run_fig6b)
register_experiment("fig6c", run_fig6c)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig6a", "fig6b", "fig6c"))
