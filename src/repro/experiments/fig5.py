"""Fig. 5 — micro-benchmark ablations of UniviStor's optimisations.

(a) write and (b) read 256 MiB/process against UniviStor's distributed
DRAM with Interference-Aware scheduling (IA) and Collective Open/Close
(COC) toggled; (c) flush the cached data to Lustre with IA and ADaPTive
striping (ADPT) toggled.  Y axes are I/O rate (log scale in the paper).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.core.config import UniviStorConfig
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import build_simulation, io_rate, sweep
from repro.units import MiB
from repro.workloads.iobench import MicroBench

__all__ = ["run_fig5a", "run_fig5b", "run_fig5c",
           "FIG5AB_VARIANTS", "FIG5C_VARIANTS"]

#: (series label, flags to disable) — Fig. 5a/5b legend.
FIG5AB_VARIANTS = [
    ("IA+COC", ()),
    ("No-IA", ("interference_aware",)),
    ("No-COC", ("collective_open_close",)),
]

#: Fig. 5c legend ("Disabled" = both off, the paper's 1.9-2.7x baseline).
FIG5C_VARIANTS = [
    ("IA+ADPT", ()),
    ("No-IA", ("interference_aware",)),
    ("No-ADPT", ("adaptive_striping",)),
    ("Disabled", ("interference_aware", "adaptive_striping")),
]


def _variant_config(disabled, flush: bool) -> UniviStorConfig:
    config = UniviStorConfig.dram_only()
    flags = list(disabled)
    if not flush:
        flags.append("flush_enabled")
    return config.without(*flags) if flags else config


def _run_write_read(op: str, procs_list: Optional[List[int]],
                    bytes_per_proc: float, verify: bool) -> Table:
    table = Table(
        title=f"Fig. 5{'a' if op == 'write' else 'b'} — micro-benchmark "
              f"{op} to distributed DRAM (IA / COC ablation)",
        xlabel="processes", ylabel="I/O rate (B/s)")
    for procs in procs_list or sweep():
        for label, disabled in FIG5AB_VARIANTS:
            sim, fstype = build_simulation(
                procs, "UniviStor/DRAM",
                config=_variant_config(disabled, flush=False))
            comm = sim.comm("iobench", size=procs)
            bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                               bytes_per_proc=bytes_per_proc)

            def app():
                yield from bench.write_phase()
                if op == "read":
                    sim.telemetry.clear()  # rate covers the read phase only
                    yield from bench.read_phase(verify=verify)

            sim.run_to_completion(app(), name=f"fig5-{label}")
            ops = ("open", op, "close")
            table.add(procs, label,
                      io_rate(sim, "iobench", ops=ops, data_ops=(op,)))
    return table


def run_fig5a(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB, verify: bool = False
              ) -> Table:
    """Write rate with IA/COC ablation (paper: IA+COC is 1.45-2.5x the
    No-IA variant and 1.1-3.5x the No-COC variant)."""
    return _run_write_read("write", procs_list, bytes_per_proc, verify)


def run_fig5b(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB, verify: bool = False
              ) -> Table:
    """Read rate with IA/COC ablation (paper: 1.13-1.5x / 1.15-1.8x)."""
    return _run_write_read("read", procs_list, bytes_per_proc, verify)


def run_fig5c(procs_list: Optional[List[int]] = None,
              bytes_per_proc: float = 256 * MiB) -> Table:
    """Flush rate DRAM -> Lustre with IA/ADPT ablation (paper: enabling
    both improves 1.9-2.7x, 2.3x on average)."""
    table = Table(title="Fig. 5c — server-side flush DRAM->Lustre "
                        "(IA / ADPT ablation)",
                  xlabel="processes", ylabel="flush I/O rate (B/s)")
    for procs in procs_list or sweep():
        for label, disabled in FIG5C_VARIANTS:
            sim, fstype = build_simulation(
                procs, "UniviStor/DRAM",
                config=_variant_config(disabled, flush=True))
            comm = sim.comm("iobench", size=procs)
            bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                               bytes_per_proc=bytes_per_proc)

            def app():
                yield from bench.write_phase(sync=True)

            sim.run_to_completion(app(), name=f"fig5c-{label}")
            table.add(procs, label, sim.telemetry.io_rate(op="flush"))
    return table


register_experiment("fig5a", run_fig5a)
register_experiment("fig5b", run_fig5b)
register_experiment("fig5c", run_fig5c)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig5a", "fig5b", "fig5c"))
