"""Shared plumbing for the figure runners.

System labels follow the paper's legends:

* ``UniviStor/DRAM`` — cache tier = distributed DRAM only,
* ``UniviStor/BB`` — cache tier = shared burst buffer only,
* ``UniviStor/(DRAM+BB)`` — the full hierarchy,
* ``UniviStor/(Disk)`` — no cache tier (write-through to the PFS),
* ``DE`` — Data Elevator,
* ``Lustre`` — plain Lustre.

All experiments use the evaluation's deployment: 32 client processes per
node, 2 UniviStor (and Data Elevator) servers per node (§III-A).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.cluster.spec import MachineSpec
from repro.core.config import UniviStorConfig
from repro.simulation import Simulation

__all__ = [
    "PAPER_SWEEP", "SMALL_SWEEP", "sweep", "PROCS_PER_NODE",
    "UNIVISTOR_LABELS", "build_simulation", "univistor_config_for",
]

#: The evaluation sweep: 64 to 8192 processes with 2x increments.
PAPER_SWEEP = [64, 128, 256, 512, 1024, 2048, 4096, 8192]
#: A quicker sweep for CI-ish runs (4x increments, same endpoints shape).
SMALL_SWEEP = [64, 256, 1024]
PROCS_PER_NODE = 32

UNIVISTOR_LABELS = {
    "UniviStor/DRAM": UniviStorConfig.dram_only,
    "UniviStor/BB": UniviStorConfig.bb_only,
    "UniviStor/(DRAM+BB)": UniviStorConfig.dram_bb,
    "UniviStor/(Disk)": UniviStorConfig.pfs_only,
}


def sweep() -> list:
    """The process-count sweep, honouring ``REPRO_SWEEP``.

    ``REPRO_SWEEP=paper`` runs the full 64..8192 sweep; ``small`` (the
    default) the 3-point one; a comma-separated list gives full control.
    """
    value = os.environ.get("REPRO_SWEEP", "small")
    if value == "paper":
        return list(PAPER_SWEEP)
    if value == "small":
        return list(SMALL_SWEEP)
    return [int(x) for x in value.split(",")]


def univistor_config_for(label: str, **overrides) -> UniviStorConfig:
    try:
        factory = UNIVISTOR_LABELS[label]
    except KeyError:
        raise ValueError(f"unknown UniviStor label {label!r}; one of "
                         f"{sorted(UNIVISTOR_LABELS)}") from None
    return factory(**overrides)


def build_simulation(procs: int, system: str,
                     config: Optional[UniviStorConfig] = None,
                     spec: Optional[MachineSpec] = None
                     ) -> Tuple[Simulation, str]:
    """A ready-to-run simulation for one (scale, system) cell.

    Returns ``(sim, fstype)`` where ``fstype`` is the ADIO driver name the
    workload should open files with.
    """
    if procs % PROCS_PER_NODE != 0:
        raise ValueError(f"procs ({procs}) must be a multiple of "
                         f"{PROCS_PER_NODE} (the per-node client count)")
    nodes = procs // PROCS_PER_NODE
    engine_kw = {}
    if config is not None:
        engine_kw = {"engine_shards": config.engine_shards,
                     "engine_bucket_width": config.engine_bucket_width}
    sim = Simulation(spec or MachineSpec.cori_haswell(nodes=nodes),
                     **engine_kw)
    if system.startswith("UniviStor"):
        sim.install_univistor(config or univistor_config_for(system))
        return sim, "univistor"
    if system == "DE":
        sim.install_data_elevator()
        return sim, "data_elevator"
    if system == "Lustre":
        sim.install_lustre()
        return sim, "lustre"
    raise ValueError(f"unknown system {system!r}")


def io_rate(sim: Simulation, app: str, ops=("open", "write", "close"),
            data_ops=("write",)) -> float:
    """The paper's I/O rate: bytes moved over open+op+close time."""
    tel = sim.telemetry
    total_time = sum(tel.total_time(app=app, op=op) for op in ops)
    total_bytes = sum(tel.total_bytes(app=app, op=op) for op in data_ops)
    if total_time <= 0:
        return 0.0
    return total_bytes / total_time
