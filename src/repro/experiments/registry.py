"""The experiment registry: one named entry point per figure runner.

Every ``experiments/fig*.py`` runner self-registers here at import time
(importing :mod:`repro.experiments` populates the registry), so callers
ask for experiments by name instead of hunting per-module functions::

    from repro import run_experiment
    table = run_experiment("fig7", {"steps": 3})

``config`` is a plain mapping of keyword arguments for the runner — the
same keywords the ``run_fig*`` functions always took.  The multi-job
workload comparison registers as ``"workload"`` (config keys are
:class:`~repro.workloads.WorkloadSpec` fields).

The per-module ``python -m repro.experiments.figN`` entry points still
work but are deprecated shims over :func:`run_experiment`; new code and
tooling should go through the registry (or ``repro figures``).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Mapping, Optional

__all__ = [
    "list_experiments",
    "register_experiment",
    "run_experiment",
]

_REGISTRY: Dict[str, Callable] = {}


def register_experiment(name: str, runner: Optional[Callable] = None):
    """Register ``runner`` under ``name`` (usable as a decorator)."""
    if runner is None:
        return lambda fn: register_experiment(name, fn)
    if not name or not isinstance(name, str):
        raise TypeError("experiment name must be a non-empty string")
    current = _REGISTRY.get(name)
    if current is not None and current is not runner:
        raise ValueError(f"experiment {name!r} already registered")
    _REGISTRY[name] = runner
    return runner


def run_experiment(name: str, config: Optional[Mapping] = None):
    """Run a registered experiment; returns whatever the runner returns
    (a :class:`~repro.analysis.report.Table` for the figure runners)."""
    try:
        runner = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}; "
                         f"available: {list_experiments()}") from None
    return runner(**dict(config or {}))


def list_experiments() -> List[str]:
    return sorted(_REGISTRY)


def module_main(*names: str, argv=None) -> int:
    """Deprecated per-module entry point (``python -m
    repro.experiments.figN``): warns, then routes every runner the module
    registers through :func:`run_experiment` and prints the tables."""
    from repro.analysis.report import fmt_markdown_table
    warnings.warn(
        f"running experiment modules directly is deprecated; use "
        f"repro.experiments.run_experiment({'/'.join(map(repr, names))}) "
        f"or the 'repro figures' CLI",
        DeprecationWarning, stacklevel=2)
    for name in names:
        table = run_experiment(name)
        print(f"== {name}")
        print(fmt_markdown_table(table, "{:.4g}"))
    return 0


# -- the multi-job workload comparison ----------------------------------------

@register_experiment("workload")
def _run_workload(**config):
    """Compare every registered storage scheduler on one generated trace
    (config keys: WorkloadSpec fields)."""
    from repro.analysis.workload import strategy_table
    from repro.workloads import WorkloadSpec, compare_strategies
    from repro.workloads.strategies import available_strategies

    spec = WorkloadSpec(**config)
    results = compare_strategies(spec.generate(), spec=spec,
                                 strategies=available_strategies())
    return strategy_table(results)
