"""Fig. 8 — 10-time-step VPIC-IO across multiple storage layers.

Ten steps (2.5 GiB per process) exceed the per-node DRAM cache, so
UniviStor/(DRAM+BB+Disk) spills roughly half of the data to the shared
burst buffer (§III-C) — the experiment that shows DHP actually exploiting
the *hierarchy* rather than a single tier.  Compared against caching
everything on the BB and writing straight to disk.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.core.config import UniviStorConfig
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import build_simulation, sweep
from repro.workloads.vpic import VpicIO

__all__ = ["run_fig8", "FIG8_VARIANTS"]

FIG8_VARIANTS = [
    ("UniviStor/(DRAM+BB+Disk)", UniviStorConfig.dram_bb),
    ("UniviStor/(BB+Disk)", UniviStorConfig.bb_only),
    ("UniviStor/(Disk)", UniviStorConfig.pfs_only),
]


def run_fig8(procs_list: Optional[List[int]] = None, steps: int = 10,
             compute_seconds: float = 60.0,
             particles_per_proc: Optional[int] = None) -> Table:
    """Total I/O time (lower is better).  Paper bands: DRAM+BB+Disk is
    1.2-1.6x (avg 1.4x) faster than BB+Disk and 1.4-2x (avg 1.7x) faster
    than Disk."""
    table = Table(title=f"Fig. 8 — total I/O time, {steps}-step VPIC-IO "
                        "across storage layers",
                  xlabel="processes", ylabel="I/O time (s)")
    kwargs = {}
    if particles_per_proc is not None:
        kwargs["particles_per_proc"] = particles_per_proc
    for procs in procs_list or sweep():
        for label, factory in FIG8_VARIANTS:
            sim, fstype = build_simulation(procs, "UniviStor/DRAM",
                                           config=factory())
            comm = sim.comm("vpic", size=procs)
            vpic = VpicIO(sim, comm, fstype, steps=steps,
                          compute_seconds=compute_seconds, **kwargs)

            def app():
                yield from vpic.run(sync_last=True)

            sim.run_to_completion(app(), name=f"fig8-{label}")
            table.add(procs, label, vpic.measured_io_time())
    return table


register_experiment("fig8", run_fig8)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig8"))
