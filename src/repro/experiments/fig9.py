"""Fig. 9 — the 5-step VPIC-IO + BD-CATS-IO workflow.

Producer and consumer each get half the processes (§III-D).  Two UniviStor
modes: **Overlap** (both applications run concurrently, coordinated by the
workflow manager's state-file locks — BD-CATS's open blocks until VPIC's
close releases the write lock on each step file) and **Nonoverlap**
(BD-CATS starts only after VPIC finishes everything).  Data Elevator and
Lustre only support the nonoverlap sequence.  The metric is elapsed time
from VPIC's start to BD-CATS's end.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import Table
from repro.core.config import UniviStorConfig
from repro.experiments.registry import (module_main,
                                        register_experiment)
from repro.experiments.common import build_simulation, sweep
from repro.workloads.bdcats import BdCatsIO
from repro.workloads.vpic import VpicIO

__all__ = ["run_fig9", "FIG9_SERIES", "run_workflow"]

FIG9_SERIES = [
    "UniviStor/DRAM Overlap",
    "UniviStor/BB Overlap",
    "UniviStor/DRAM Nonoverlap",
    "UniviStor/BB Nonoverlap",
    "DE",
    "Lustre",
]


def run_workflow(procs: int, system: str, overlap: bool, steps: int,
                 config: Optional[UniviStorConfig] = None,
                 compute_seconds: float = 0.0,
                 particles_per_proc: Optional[int] = None,
                 verify: bool = False) -> float:
    """One workflow cell; returns the elapsed time.

    ``procs`` is the total process count: VPIC and BD-CATS get half each
    (§III-D).
    """
    if config is None and system.startswith("UniviStor"):
        base = {"UniviStor/DRAM": UniviStorConfig.dram_only,
                "UniviStor/BB": UniviStorConfig.bb_only,
                "UniviStor/(DRAM+BB)": UniviStorConfig.dram_bb}[system]
        config = base(workflow_enabled=overlap)
    sim, fstype = build_simulation(procs, system, config=config)
    half = procs // 2
    writer_comm = sim.comm("vpic", size=half, procs_per_node=16)
    reader_comm = sim.comm("bdcats", size=half, procs_per_node=16)
    kwargs = {}
    if particles_per_proc is not None:
        kwargs["particles_per_proc"] = particles_per_proc
    vpic = VpicIO(sim, writer_comm, fstype, steps=steps,
                  compute_seconds=compute_seconds, **kwargs)
    bdcats = BdCatsIO(sim, reader_comm, vpic, fstype)

    start = sim.now
    if overlap:
        writer = sim.spawn(vpic.run(sync_last=False), name="vpic")
        reader = sim.spawn(bdcats.run(verify_sample=verify), name="bdcats")
        sim.run()
        assert writer.ok and reader.ok
    else:
        def sequence():
            yield from vpic.run(sync_last=False)
            yield from bdcats.run(verify_sample=verify)

        sim.run_to_completion(sequence(), name="workflow")
    return sim.now - start


def run_fig9(procs_list: Optional[List[int]] = None, steps: int = 5,
             particles_per_proc: Optional[int] = None,
             verify: bool = False) -> Table:
    """Elapsed workflow time (lower is better).  Paper bands: Overlap
    beats Nonoverlap by 1.2-1.7x (DRAM) / 1.5-2x (BB); UniviStor
    Nonoverlap beats DE by 3.5-17x (DRAM) / 1.3-7.2x (BB)."""
    table = Table(title=f"Fig. 9 — elapsed time, {steps}-step "
                        "VPIC-IO + BD-CATS-IO workflow",
                  xlabel="processes", ylabel="elapsed time (s)")
    cells = [
        ("UniviStor/DRAM Overlap", "UniviStor/DRAM", True),
        ("UniviStor/BB Overlap", "UniviStor/BB", True),
        ("UniviStor/DRAM Nonoverlap", "UniviStor/DRAM", False),
        ("UniviStor/BB Nonoverlap", "UniviStor/BB", False),
        ("DE", "DE", False),
        ("Lustre", "Lustre", False),
    ]
    for procs in procs_list or sweep():
        for label, system, overlap in cells:
            elapsed = run_workflow(procs, system, overlap, steps,
                                   particles_per_proc=particles_per_proc,
                                   verify=verify)
            table.add(procs, label, elapsed)
    return table


register_experiment("fig9", run_fig9)

if __name__ == "__main__":  # pragma: no cover — deprecated shim
    import sys

    sys.exit(module_main("fig9"))
