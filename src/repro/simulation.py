"""The top-level facade: one simulated job on one simulated machine.

Typical use (see ``examples/quickstart.py``)::

    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only())
    comm = sim.comm("app", size=64)

    def app():
        fh = yield from sim.open(comm, "/out/data.h5", "w")
        yield from fh.write_at_all([...])
        yield from fh.close()

    sim.spawn(app())
    sim.run()
    print(sim.telemetry.io_rate(op="write"))
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Generator, Optional

from repro.analysis.metrics import Telemetry
from repro.baselines.data_elevator import (
    DataElevatorConfig,
    DataElevatorDriver,
    DataElevatorServers,
)
from repro.baselines.lustre_direct import LustreDirectDriver
from repro.cluster.spec import MachineSpec
from repro.cluster.topology import Machine
from repro.core.client import UniviStorDriver
from repro.core.config import UniviStorConfig
from repro.core.server import UniviStorServers
from repro.sim.engine import Engine, Process
from repro.sim.faults import FaultInjector, FaultSpec
from repro.simmpi.adio import DriverRegistry
from repro.simmpi.comm import Communicator
from repro.simmpi.mpiio import File

__all__ = ["Simulation"]


class Simulation:
    """One job: engine + machine + ADIO registry + telemetry."""

    def __init__(self, spec: Optional[MachineSpec] = None,
                 pfs_files=None, engine_shards: int = 1,
                 engine_bucket_width: float = 0.0):
        """``pfs_files``: pass a previous job's ``sim.machine.pfs_files``
        to model a follow-up job — cached tiers start empty (they are
        job-scoped, §I) but everything flushed to Lustre persists.

        ``engine_shards`` / ``engine_bucket_width`` select the event-engine
        kernel layout (docs/MODEL.md §13).  Both are pure performance
        knobs: any value is bit-identical to the defaults.  They usually
        arrive via :class:`UniviStorConfig` (``build_simulation`` and the
        chaos harness forward them)."""
        self.engine = Engine(shards=engine_shards,
                             bucket_width=engine_bucket_width)
        self.machine = Machine(self.engine, spec, pfs_files=pfs_files)
        self.registry = DriverRegistry()
        self.telemetry = Telemetry(self.engine)
        self.univistor: Optional[UniviStorServers] = None
        self.data_elevator: Optional[DataElevatorServers] = None
        self.fault_injector: Optional[FaultInjector] = None

    # -- system installation ------------------------------------------------
    def install_univistor(self, config: Optional[UniviStorConfig] = None
                          ) -> UniviStorServers:
        """Launch the UniviStor server program and register its driver."""
        if self.univistor is not None:
            raise RuntimeError("UniviStor already installed")
        self.univistor = UniviStorServers(self.machine,
                                          config or UniviStorConfig())
        self.univistor.telemetry = self.telemetry
        self.registry.register(UniviStorDriver(self.univistor,
                                               self.telemetry))
        return self.univistor

    def install_data_elevator(self,
                              config: Optional[DataElevatorConfig] = None,
                              servers_per_node: Optional[int] = None
                              ) -> DataElevatorServers:
        """Launch the Data Elevator baseline and register its driver.

        Takes a :class:`~repro.baselines.data_elevator.DataElevatorConfig`,
        mirroring :meth:`install_univistor`.  The pre-2.0 call forms
        ``install_data_elevator(2)`` and
        ``install_data_elevator(servers_per_node=2)`` still work but emit
        a :class:`DeprecationWarning` (see docs/API.md, "API stability").
        """
        if self.data_elevator is not None:
            raise RuntimeError("Data Elevator already installed")
        if isinstance(config, int):
            warnings.warn(
                "install_data_elevator(servers_per_node) is deprecated; "
                "pass DataElevatorConfig(servers_per_node=...) instead",
                DeprecationWarning, stacklevel=2)
            config = DataElevatorConfig(servers_per_node=config)
        elif servers_per_node is not None:
            if config is not None:
                raise TypeError("pass either a DataElevatorConfig or "
                                "servers_per_node=, not both")
            warnings.warn(
                "install_data_elevator(servers_per_node=...) is deprecated; "
                "pass DataElevatorConfig(servers_per_node=...) instead",
                DeprecationWarning, stacklevel=2)
            config = DataElevatorConfig(servers_per_node=servers_per_node)
        self.data_elevator = DataElevatorServers(
            self.machine, config or DataElevatorConfig())
        self.registry.register(DataElevatorDriver(self.data_elevator,
                                                  self.telemetry))
        return self.data_elevator

    def install_lustre(self) -> LustreDirectDriver:
        driver = LustreDirectDriver(self.machine, self.telemetry)
        self.registry.register(driver)
        return driver

    def install_faults(self, spec: FaultSpec, seed: int = 0) -> FaultInjector:
        """Arm a fault-injection campaign against the UniviStor system.

        Requires :meth:`install_univistor` first (faults target its
        crash/degrade hooks).  The resolved timeline is deterministic
        under ``seed`` and every fault flows through ``telemetry_hook``.
        """
        if self.univistor is None:
            raise RuntimeError("install_univistor before install_faults")
        if self.fault_injector is not None:
            raise RuntimeError("faults already installed")
        self.fault_injector = FaultInjector(self.univistor, spec,
                                            seed=seed).install()
        return self.fault_injector

    def force_fstype(self, name: Optional[str]) -> None:
        """The ``ROMIO_FSTYPE_FORCE`` environment flag (§II-A)."""
        self.registry.fstype_force = name

    # -- applications -----------------------------------------------------------
    def comm(self, name: str, size: int,
             procs_per_node: Optional[int] = None,
             node_offset: int = 0) -> Communicator:
        """Create (and place) a client application's communicator.

        ``node_offset`` places the program on a later block of nodes
        (disjoint producer/consumer placement — in-transit analysis)."""
        return Communicator(self.machine, name, size,
                            procs_per_node=procs_per_node,
                            node_offset=node_offset)

    def open(self, comm: Communicator, path: str, mode: str,
             fstype: Optional[str] = None,
             hints: Optional[Dict[str, Any]] = None) -> Generator:
        """Collective MPI_File_open against the registered drivers."""
        result = yield from File.open(self.registry, comm, path, mode,
                                      fstype=fstype, hints=hints)
        return result

    def spawn(self, generator: Generator, name: str = "",
              shard: Optional[int] = None) -> Process:
        """Spawn a process.  ``shard`` pins it (any integer key, reduced
        modulo ``engine.shards``) to an engine event queue; the default
        inherits the spawner's shard.  Inert on a single-shard engine."""
        return self.engine.process(generator, name=name, shard=shard)

    def run(self, until: Optional[float] = None) -> None:
        self.engine.run(until=until)

    def run_to_completion(self, generator: Generator, name: str = "") -> Any:
        """Spawn one process and run the engine until it finishes."""
        return self.engine.run_process(generator, name=name)

    @property
    def now(self) -> float:
        return self.engine.now
