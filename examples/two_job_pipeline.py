#!/usr/bin/env python
"""A two-job campaign: checkpoint job, then a later analysis job.

The §I transiency story end-to-end: node-local DRAM and the burst buffer
are allocated per job — their contents die with it — so UniviStor's
close-time flush to Lustre is what makes the data outlive the job.  A
second job (fresh machine allocation, empty caches) opens the same path
and reads the flushed copy from the PFS, through the same MPI-IO API.

Run:  python examples/two_job_pipeline.py
"""

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.units import MiB, fmt_rate, fmt_time

RANKS = 64
BLOCK = int(128 * MiB)
PATH = "/pfs/campaign/particles.h5"


def job1_checkpoint():
    """Simulation job: write, flush, exit (caches evaporate)."""
    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only())
    comm = sim.comm("simulation", RANKS)

    def app():
        fh = yield from sim.open(comm, PATH, "w", fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, BLOCK, PatternPayload(r))
            for r in range(RANKS)])
        yield from fh.close()
        yield from fh.sync()  # make sure the flush lands before job end

    sim.run_to_completion(app())
    write = sim.telemetry.io_rate(op="write")
    flush = sim.telemetry.io_rate(op="flush")
    print(f"job 1 (simulation): wrote {RANKS * BLOCK // int(MiB)} MiB to "
          f"DRAM at {fmt_rate(write)}, flushed to Lustre at "
          f"{fmt_rate(flush)}")
    return sim.machine.pfs_files  # the only thing that survives the job


def job2_analysis(pfs_files):
    """Analysis job days later: fresh allocation, reads the PFS copy."""
    sim = Simulation(MachineSpec.cori_haswell(nodes=1), pfs_files=pfs_files)
    sim.install_univistor(UniviStorConfig.dram_only())
    comm = sim.comm("analysis", 32)

    def app():
        fh = yield from sim.open(comm, PATH, "r", fstype="univistor")
        # 32 analysis ranks each consume two simulation blocks.
        data = yield from fh.read_at_all([
            IORequest(r, 2 * r * BLOCK, 2 * BLOCK) for r in range(32)])
        yield from fh.close()
        return data

    data = sim.run_to_completion(app())
    for r in (0, 31):
        ext = data[r][0]
        got = ext.payload.materialize(ext.payload_offset, 4096)
        assert got == PatternPayload(2 * r).materialize(0, 4096)
    read = sim.telemetry.io_rate(op="read")
    print(f"job 2 (analysis):   read it back from Lustre at "
          f"{fmt_rate(read)} (verified byte-exact)")
    # Caches really did start empty:
    assert all(n.dram.used == 0 for n in sim.machine.nodes[:1])


def main() -> None:
    pfs = job1_checkpoint()
    print(f"  -> job ends; DRAM/BB contents are gone, "
          f"{len(pfs)} file(s) persist on the PFS")
    job2_analysis(pfs)


if __name__ == "__main__":
    main()
