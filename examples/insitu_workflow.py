#!/usr/bin/env python
"""In-situ analysis workflow: VPIC-IO producing, BD-CATS-IO consuming.

The motivating scenario of §II-E/§III-D: a plasma simulation checkpoints
particle data every time step while a clustering analysis wants to read
each step as soon as it is complete — without ever touching the disk
file system, and without reading half-written (stale) data.

This example runs the same 5-step workflow twice:

* **overlap** — both applications run concurrently; UniviStor's workflow
  manager (state-file locks piggybacked on MPI_File_open/close) makes the
  reader's open block until the writer's close releases each step file;
* **nonoverlap** — the analysis only starts after the simulation ends
  (what you are forced to do without workflow management).

Run:  python examples/insitu_workflow.py
"""

from repro import MachineSpec, Simulation, UniviStorConfig
from repro.core.workflow import FileState
from repro.units import fmt_time
from repro.workloads import BdCatsIO, VpicIO

NODES = 4
STEPS = 5
# Scaled-down particle counts keep the example snappy; the benchmark
# suite runs the full 8 Mi-particles-per-rank configuration.
PARTICLES_PER_PROC = 2 * 2 ** 20


def run_workflow(overlap: bool) -> float:
    sim = Simulation(MachineSpec.cori_haswell(nodes=NODES))
    sim.install_univistor(
        UniviStorConfig.dram_only(workflow_enabled=overlap))
    # Producer and consumer each get half the processes (§III-D).
    vpic_comm = sim.comm("vpic", size=NODES * 16, procs_per_node=16)
    bdcats_comm = sim.comm("bdcats", size=NODES * 16, procs_per_node=16)
    vpic = VpicIO(sim, vpic_comm, "univistor", steps=STEPS,
                  compute_seconds=0.0,
                  particles_per_proc=PARTICLES_PER_PROC)
    bdcats = BdCatsIO(sim, bdcats_comm, vpic, "univistor")

    if overlap:
        writer = sim.spawn(vpic.run(sync_last=False), name="vpic")
        # verify_sample asserts the reader never sees stale bytes — the
        # workflow locks are what make this safe.
        reader = sim.spawn(bdcats.run(verify_sample=True), name="bdcats")
        sim.run()
        assert writer.ok and reader.ok
        # Show the lock history of the first step file.
        wf = sim.univistor.workflow
        history = [(state.value, f"{t:.2f}s")
                   for state, t in wf.history_of(vpic.step_path(0))]
        print(f"  step-0 lock history: {history}")
    else:
        def sequence():
            yield from vpic.run(sync_last=False)
            yield from bdcats.run(verify_sample=True)

        sim.run_to_completion(sequence(), name="workflow")
    return sim.now


def main() -> None:
    print(f"{STEPS}-step VPIC-IO + BD-CATS-IO on {NODES} nodes "
          f"({NODES * 16}+{NODES * 16} ranks)\n")
    t_overlap = run_workflow(overlap=True)
    t_sequential = run_workflow(overlap=False)
    print(f"\noverlap (workflow-managed) elapsed:  {fmt_time(t_overlap)}")
    print(f"nonoverlap (sequential) elapsed:     {fmt_time(t_sequential)}")
    print(f"overlap speedup: {t_sequential / t_overlap:.2f}x "
          "(paper: 1.2-1.7x on DRAM)")


if __name__ == "__main__":
    main()
