#!/usr/bin/env python
"""Watching DHP spill data across the storage hierarchy (§II-B1, Fig. 2).

A checkpointing application keeps writing step files until the DRAM
cache fills; UniviStor's Distributed and Hierarchical Placement then
spills the overflow to the shared burst buffer — per process, per log,
chunk by chunk — while the unified address space keeps every byte
readable.  This example prints where each step's bytes physically landed
and then reads a spilled block back through the virtual-address path.

Run:  python examples/tiered_spill.py
"""

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.core import StorageTier
from repro.cluster.spec import NodeSpec
from repro.units import GB, GiB, MiB

RANKS = 32  # one node's worth
BYTES_PER_RANK_PER_STEP = int(256 * MiB)
STEPS = 8


def main() -> None:
    # Shrink the DRAM cache so the spill happens quickly: 5 steps fit,
    # the rest overflow to the shared burst buffer.
    node = NodeSpec(dram_cache_capacity=40 * GiB)
    spec = MachineSpec.cori_haswell(nodes=1, node=node)
    sim = Simulation(spec)
    sim.install_univistor(UniviStorConfig.dram_bb(flush_enabled=False))
    comm = sim.comm("checkpointer", size=RANKS)

    def application():
        placements = []
        for step in range(STEPS):
            path = f"/pfs/step{step}.ckpt"
            fh = yield from sim.open(comm, path, "w", fstype="univistor")
            writes = [IORequest.contiguous_block(
                rank, BYTES_PER_RANK_PER_STEP,
                PatternPayload(seed=step * 1000 + rank))
                for rank in range(RANKS)]
            yield from fh.write_at_all(writes)
            yield from fh.close()
            session = sim.univistor.session(path)
            placements.append((path, session.cached_bytes_per_tier()))
        return placements

    placements = sim.run_to_completion(application(), name="checkpointer")

    print(f"{RANKS} ranks x {BYTES_PER_RANK_PER_STEP // int(MiB)} MiB "
          f"per step, DRAM cache {40} GiB/node:\n")
    print(f"{'step file':<18}{'DRAM (GiB)':>12}{'shared BB (GiB)':>17}")
    for path, tiers in placements:
        dram = tiers.get(StorageTier.DRAM, 0.0) / GiB
        bb = tiers.get(StorageTier.SHARED_BB, 0.0) / GiB
        print(f"{path:<18}{dram:>12.2f}{bb:>17.2f}")

    dram_dev = sim.machine.nodes[0].dram
    print(f"\nnode DRAM cache: {dram_dev.used / GiB:.1f} / "
          f"{dram_dev.capacity / GiB:.0f} GiB used")

    # ---- read a block that straddles the DRAM -> BB spill boundary -----
    spilled_path = placements[-3][0]  # a partially spilled step
    session = sim.univistor.session(spilled_path)

    def reader():
        fh = yield from sim.open(comm, spilled_path, "r",
                                 fstype="univistor")
        reads = [IORequest(rank, rank * BYTES_PER_RANK_PER_STEP,
                           BYTES_PER_RANK_PER_STEP)
                 for rank in range(RANKS)]
        data = yield from fh.read_at_all(reads)
        yield from fh.close()
        return data

    data = sim.run_to_completion(reader(), name="reader")
    step = int(spilled_path[len("/pfs/step"):-len(".ckpt")])
    for rank in (0, RANKS - 1):
        blob = b"".join(e.payload.materialize(e.payload_offset,
                                              min(e.length, 1 * int(MiB)))
                        for e in data[rank][:2])
        expected = PatternPayload(step * 1000 + rank).materialize(
            0, len(blob))
        assert blob == expected
    print(f"\nread-back across the spill boundary of {spilled_path}: OK")
    print("(segments resolved via VA -> (layer, physical address) and "
          "reassembled)")


if __name__ == "__main__":
    main()
