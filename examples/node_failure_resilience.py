#!/usr/bin/env python
"""Surviving a compute-node failure with the resilience extension (§V).

The paper's conclusions list "adding resilience to data in volatile
storage layers" as future work: data cached in node-local DRAM dies with
its node, and until the asynchronous flush reaches Lustre that cached
copy may be the only one.  The reproduction implements the planned
mechanism — asynchronous replication of volatile segments to the shared
burst buffer at close time — and this example kills a node to show the
difference.

A second scenario drives the same failure through the deterministic
:class:`~repro.sim.faults.FaultInjector`: a *scheduled* full node crash
(storage loss plus both server processes) together with a straggling
Lustre OST pool, against a configuration hardened with metadata
replication and bounded I/O retries.  The recovery telemetry — metadata
failovers, re-replication, retries — is printed at the end.

Run:  python examples/node_failure_resilience.py
"""

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.core.resilience import DataLossError
from repro.sim.faults import Fault, FaultSpec
from repro.units import MiB

RANKS = 64
BLOCK = int(64 * MiB)


def run(resilient: bool) -> str:
    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only(
        resilience_enabled=resilient, flush_enabled=False))
    comm = sim.comm("app", RANKS)

    def scenario():
        fh = yield from sim.open(comm, "/pfs/ckpt.h5", "w",
                                 fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, BLOCK, PatternPayload(r))
            for r in range(RANKS)])
        yield from fh.close()
        yield from fh.sync()  # wait for the async replication (if any)

        # --- node 0 dies: ranks 0..31's DRAM-cached data is gone -------
        sim.univistor.fail_node(0)

        fh2 = yield from sim.open(comm, "/pfs/ckpt.h5", "r",
                                  fstype="univistor")
        data = yield from fh2.read_at_all([
            IORequest(r, r * BLOCK, BLOCK) for r in range(RANKS)])
        yield from fh2.close()
        # verify a victim rank's data byte-for-byte
        ext = data[0][0]
        got = ext.payload.materialize(ext.payload_offset, 4096)
        assert got == PatternPayload(0).materialize(0, 4096)
        return "recovered all data from burst-buffer replicas"

    try:
        outcome = sim.run_to_completion(scenario())
    except DataLossError as err:
        outcome = f"DataLossError: {err}"
    reps = sim.telemetry.select(op="replicate")
    if reps:
        outcome += (f"  [replicated {reps[0].nbytes / MiB:.0f} MiB in "
                    f"{reps[0].duration:.2f}s, async]")
    return outcome


def run_injected() -> None:
    """The same failure driven by the seeded FaultInjector: a scheduled
    full node crash plus a slow-OST straggler, survived by metadata
    replication + BB replicas + bounded retries."""
    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only(
        resilience_enabled=True, flush_enabled=False,
        metadata_replication=2, io_retry_limit=3))
    comm = sim.comm("app", RANKS)

    def scenario():
        fh = yield from sim.open(comm, "/pfs/ckpt.h5", "w",
                                 fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, BLOCK, PatternPayload(r))
            for r in range(RANKS)])
        yield from fh.close()
        yield from fh.sync()
        # Schedule the faults now that replication has landed: node 0
        # crashes outright (storage + its two metadata servers) while
        # the PFS limps along at a quarter of its bandwidth.
        sim.install_faults(FaultSpec(events=(
            Fault(at=sim.now, kind="node-crash", target=0),
            Fault(at=sim.now, kind="device-degrade", tier="pfs",
                  factor=0.25, duration=120.0),
        )))
        yield sim.engine.timeout(1e-6)  # let them fire

        fh2 = yield from sim.open(comm, "/pfs/ckpt.h5", "r",
                                  fstype="univistor")
        data = yield from fh2.read_at_all([
            IORequest(r, r * BLOCK, BLOCK) for r in range(RANKS)])
        yield from fh2.close()
        ext = data[0][0]
        got = ext.payload.materialize(ext.payload_offset, 4096)
        assert got == PatternPayload(0).materialize(0, 4096)
        return "all reads correct despite node crash + degraded PFS"

    outcome = sim.run_to_completion(scenario())
    print(f"fault injection: {outcome}")
    interesting = ("fault-node-crash", "fault-server-crash",
                   "fault-node-storage-lost", "fault-device-degrade",
                   "metadata-failover", "re-replicate", "io-retry",
                   "replicate")
    rows = [r for r in sim.telemetry.records if r.op in interesting]
    print(f"recovery telemetry ({len(rows)} events):")
    failovers = 0
    for r in rows:
        if r.op == "metadata-failover":
            failovers += 1
            continue
        print(f"  t={r.t_end:8.3f}s {r.op:<24s} {r.path}")
    if failovers:
        print(f"  t={rows[-1].t_end:8.3f}s metadata-failover        "
              f"{failovers} lookups served by replicas of the dead "
              "servers")


def main() -> None:
    print(f"{RANKS} ranks cache {RANKS * BLOCK // int(MiB)} MiB in "
          "node-local DRAM, then node 0 fails:\n")
    print(f"resilience OFF: {run(resilient=False)}\n")
    print(f"resilience ON:  {run(resilient=True)}\n")
    run_injected()


if __name__ == "__main__":
    main()
