#!/usr/bin/env python
"""Surviving a compute-node failure with the resilience extension (§V).

The paper's conclusions list "adding resilience to data in volatile
storage layers" as future work: data cached in node-local DRAM dies with
its node, and until the asynchronous flush reaches Lustre that cached
copy may be the only one.  The reproduction implements the planned
mechanism — asynchronous replication of volatile segments to the shared
burst buffer at close time — and this example kills a node to show the
difference.

Run:  python examples/node_failure_resilience.py
"""

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.core.resilience import DataLossError
from repro.units import MiB

RANKS = 64
BLOCK = int(64 * MiB)


def run(resilient: bool) -> str:
    sim = Simulation(MachineSpec.cori_haswell(nodes=2))
    sim.install_univistor(UniviStorConfig.dram_only(
        resilience_enabled=resilient, flush_enabled=False))
    comm = sim.comm("app", RANKS)

    def scenario():
        fh = yield from sim.open(comm, "/pfs/ckpt.h5", "w",
                                 fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, BLOCK, PatternPayload(r))
            for r in range(RANKS)])
        yield from fh.close()
        yield from fh.sync()  # wait for the async replication (if any)

        # --- node 0 dies: ranks 0..31's DRAM-cached data is gone -------
        sim.univistor.fail_node(0)

        fh2 = yield from sim.open(comm, "/pfs/ckpt.h5", "r",
                                  fstype="univistor")
        data = yield from fh2.read_at_all([
            IORequest(r, r * BLOCK, BLOCK) for r in range(RANKS)])
        yield from fh2.close()
        # verify a victim rank's data byte-for-byte
        ext = data[0][0]
        got = ext.payload.materialize(ext.payload_offset, 4096)
        assert got == PatternPayload(0).materialize(0, 4096)
        return "recovered all data from burst-buffer replicas"

    try:
        outcome = sim.run_to_completion(scenario())
    except DataLossError as err:
        outcome = f"DataLossError: {err}"
    reps = sim.telemetry.select(op="replicate")
    if reps:
        outcome += (f"  [replicated {reps[0].nbytes / MiB:.0f} MiB in "
                    f"{reps[0].duration:.2f}s, async]")
    return outcome


def main() -> None:
    print(f"{RANKS} ranks cache {RANKS * BLOCK // int(MiB)} MiB in "
          "node-local DRAM, then node 0 fails:\n")
    print(f"resilience OFF: {run(resilient=False)}\n")
    print(f"resilience ON:  {run(resilient=True)}")


if __name__ == "__main__":
    main()
