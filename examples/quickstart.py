#!/usr/bin/env python
"""Quickstart: write, flush, and read a shared file through UniviStor.

Builds a 2-node Cori-like machine, launches the UniviStor servers (2 per
node), runs a 64-rank application that writes a 256 MiB-per-rank shared
file via the MPI-IO interface, waits for the asynchronous flush, reads
the data back, and verifies a sample byte-for-byte.

Run:  python examples/quickstart.py
"""

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.units import MiB, fmt_rate, fmt_time

BYTES_PER_RANK = int(256 * MiB)
RANKS = 64


def main() -> None:
    # A 2-node slice of the Cori-Haswell-like machine (32 cores, 2 NUMA
    # sockets, 128 GiB DRAM per node; shared burst buffer; 248-OST Lustre).
    sim = Simulation(MachineSpec.cori_haswell(nodes=RANKS // 32))

    # Launch UniviStor caching on distributed DRAM, spilling to the shared
    # burst buffer, flushing to Lustre at close (all optimisations on).
    sim.install_univistor(UniviStorConfig.dram_bb())

    # Equivalent of ROMIO_FSTYPE_FORCE=univistor: every MPI_File_open in
    # this job resolves to the UniviStor driver.
    sim.force_fstype("univistor")

    comm = sim.comm("quickstart", size=RANKS)

    def application():
        # ---- write phase: rank r owns the r-th contiguous block --------
        fh = yield from sim.open(comm, "/pfs/quickstart.dat", "w")
        writes = [
            IORequest.contiguous_block(rank, BYTES_PER_RANK,
                                       PatternPayload(seed=rank))
            for rank in range(RANKS)
        ]
        yield from fh.write_at_all(writes)
        yield from fh.close()          # triggers the asynchronous flush
        yield from fh.sync()           # wait for it (for demonstration)

        # ---- read phase: every rank reads its block back ---------------
        fh = yield from sim.open(comm, "/pfs/quickstart.dat", "r")
        reads = [IORequest(rank, rank * BYTES_PER_RANK, BYTES_PER_RANK)
                 for rank in range(RANKS)]
        data = yield from fh.read_at_all(reads)
        yield from fh.close()
        return data

    data = sim.run_to_completion(application(), name="quickstart")

    # ---- verify a sample of every rank's block byte-for-byte ----------
    for rank in range(RANKS):
        extent = data[rank][0]
        got = extent.payload.materialize(extent.payload_offset, 4096)
        expected = PatternPayload(seed=rank).materialize(0, 4096)
        assert got == expected, f"rank {rank}: data corruption!"
    print(f"verified {RANKS} ranks x {BYTES_PER_RANK // int(MiB)} MiB "
          "(sampled)")

    # ---- report the paper's metrics ------------------------------------
    tel = sim.telemetry
    for op in ("open", "write", "close", "flush", "read"):
        time = tel.total_time(op=op)
        nbytes = tel.total_bytes(op=op)
        line = f"{op:6s} total {fmt_time(time)}"
        if nbytes:
            line += f"  ({fmt_rate(nbytes / time)})"
        print(line)
    print(f"simulated wall time: {fmt_time(sim.now)}")

    # Where did the bytes land?
    session = sim.univistor.session("/pfs/quickstart.dat")
    for tier, nbytes in session.cached_bytes_per_tier().items():
        print(f"cached on {tier.value}: {nbytes / MiB:.0f} MiB")
    print(f"flushed to PFS: {session.flushed_bytes / MiB:.0f} MiB")


if __name__ == "__main__":
    main()
