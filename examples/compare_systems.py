#!/usr/bin/env python
"""Side-by-side comparison: UniviStor vs Data Elevator vs Lustre.

Runs the §III-B micro-benchmark (each rank writes/reads one contiguous
256 MiB block of a shared file) against all four configurations the
paper compares, on the same simulated machine, and prints a Fig. 6-style
table plus the headline speedups.

Run:  python examples/compare_systems.py [procs]
"""

import sys

from repro import Table
from repro.analysis import fmt_markdown_table
from repro.experiments.common import build_simulation, io_rate
from repro.units import MiB, fmt_rate
from repro.workloads import MicroBench

SYSTEMS = ["UniviStor/DRAM", "UniviStor/BB", "DE", "Lustre"]


def run_one(procs: int, system: str) -> dict:
    sim, fstype = build_simulation(procs, system)
    comm = sim.comm("iobench", size=procs)
    bench = MicroBench(sim, comm, "/pfs/micro.h5", fstype,
                       bytes_per_proc=256 * MiB)

    def app():
        yield from bench.write_phase(sync=True)
        write_rate = io_rate(sim, "iobench", ops=("open", "write", "close"),
                             data_ops=("write",))
        flush_rate = sim.telemetry.io_rate(op="flush")
        sim.telemetry.clear()
        yield from bench.read_phase(verify=True)
        read_rate = io_rate(sim, "iobench", ops=("open", "read", "close"),
                            data_ops=("read",))
        return {"write": write_rate, "read": read_rate, "flush": flush_rate}

    return sim.run_to_completion(app(), name=system)


def main() -> None:
    procs = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    table = Table(title=f"Micro-benchmark at {procs} processes "
                        f"({procs // 32} nodes, 256 MiB/proc)",
                  xlabel="operation", ylabel="I/O rate (GB/s)")
    results = {}
    for system in SYSTEMS:
        print(f"running {system} ...")
        results[system] = run_one(procs, system)
        for op in ("write", "read", "flush"):
            rate = results[system][op]
            if rate > 0:
                table.add(op, system, rate / 1e9)
    print()
    print(fmt_markdown_table(table, "{:.2f}"))
    print()
    for op in ("write", "read"):
        de = results["DE"][op]
        lustre = results["Lustre"][op]
        dram = results["UniviStor/DRAM"][op]
        bb = results["UniviStor/BB"][op]
        print(f"{op}: UniviStor/DRAM = {dram / de:.1f}x DE, "
              f"{dram / lustre:.1f}x Lustre; "
              f"UniviStor/BB = {bb / de:.1f}x DE, "
              f"{bb / lustre:.1f}x Lustre")
    print("\npaper (Fig. 6): UV/DRAM 3.7-5.6x DE and up to 46x Lustre "
          "(write); UV/BB 1.2-1.7x DE (write)")


if __name__ == "__main__":
    main()
