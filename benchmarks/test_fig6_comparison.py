"""Fig. 6 — UniviStor vs Data Elevator vs Lustre (micro-benchmarks).

Regenerates the three panels and checks the headline claims:

* 6a write: UV/DRAM 3.7-5.6x DE (avg 4.3x), up to 46x Lustre; UV/BB
  1.2-1.7x DE, up to 12x Lustre;
* 6b read: UV/DRAM 2.7-4.5x DE (avg 3.6x), up to 16.8x Lustre; UV/BB
  1.15-1.6x DE, up to 5.4x Lustre;
* 6c flush: UV/DRAM 1.8-2.5x DE (avg 2x), UV/BB 1.6-2.5x DE (avg 1.8x).
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig6a, run_fig6b, run_fig6c
from repro.experiments.common import sweep


def _print(table, *ratio_pairs):
    print("\n" + fmt_markdown_table(table))
    for num, den, band in ratio_pairs:
        lo, mean, hi = table.ratio_band(num, den)
        print(f"{num} / {den}: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper {band}")


class TestFig6a:
    def test_fig6a_write(self, once):
        table = once(run_fig6a, procs_list=sweep())
        _print(table,
               ("UniviStor/DRAM", "DE", "3.7-5.6 (avg 4.3)"),
               ("UniviStor/BB", "DE", "1.2-1.7 (avg 1.3)"),
               ("UniviStor/DRAM", "Lustre", "up to 46"),
               ("UniviStor/BB", "Lustre", "up to 12"))
        # Ordering at every scale: DRAM > BB > DE > Lustre.
        for x in table.xs():
            row = table.rows[x]
            assert (row["UniviStor/DRAM"] > row["UniviStor/BB"]
                    > row["DE"] > row["Lustre"]), f"ordering broken at {x}"
        lo, mean, hi = table.ratio_band("UniviStor/DRAM", "DE")
        assert 2.5 <= mean <= 6.0
        lo, mean, hi = table.ratio_band("UniviStor/BB", "DE")
        assert 1.1 <= mean <= 2.0
        # The Lustre gap widens with scale (contention).
        ratios = table.ratio("UniviStor/DRAM", "Lustre")
        xs = sorted(ratios)
        assert ratios[xs[-1]] > ratios[xs[0]]


class TestFig6b:
    def test_fig6b_read(self, once):
        table = once(run_fig6b, procs_list=sweep(), verify=True)
        _print(table,
               ("UniviStor/DRAM", "DE", "2.7-4.5 (avg 3.6)"),
               ("UniviStor/BB", "DE", "1.15-1.6 (avg 1.2)"),
               ("UniviStor/DRAM", "Lustre", "up to 16.8"),
               ("UniviStor/BB", "Lustre", "up to 5.4"))
        for x in table.xs():
            row = table.rows[x]
            assert row["UniviStor/DRAM"] > row["UniviStor/BB"] > row["DE"], \
                f"ordering broken at {x}"
        lo, mean, hi = table.ratio_band("UniviStor/DRAM", "DE")
        assert 2.0 <= mean <= 5.0
        lo, mean, hi = table.ratio_band("UniviStor/BB", "DE")
        assert 1.05 <= mean <= 1.7


class TestFig6c:
    def test_fig6c_flush(self, once):
        table = once(run_fig6c, procs_list=sweep())
        _print(table,
               ("UniviStor/DRAM", "DE", "1.8-2.5 (avg 2)"),
               ("UniviStor/BB", "DE", "1.6-2.5 (avg 1.8)"))
        for x in table.xs():
            row = table.rows[x]
            # DRAM flush >= BB flush (faster source tier), both beat DE.
            assert row["UniviStor/DRAM"] >= row["UniviStor/BB"] * 0.99
            assert row["UniviStor/BB"] > row["DE"]
        lo, mean, hi = table.ratio_band("UniviStor/DRAM", "DE")
        assert 1.5 <= mean <= 3.0
        lo, mean, hi = table.ratio_band("UniviStor/BB", "DE")
        assert 1.4 <= mean <= 2.8
