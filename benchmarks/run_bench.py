#!/usr/bin/env python
"""Record the simulator's performance trajectory.

Runs the simulator self-benchmarks (``benchmarks/test_simulator_throughput.py``
— host wall-clock cost of the reproduction itself, *not* simulated I/O rates)
under ``pytest-benchmark`` and appends one run entry to ``BENCH_simulator.json``
at the repo root.  Every PR that touches a hot path runs this; the accumulated
entries are the evidence that the ROADMAP's "as fast as the hardware allows"
line actually moves.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--label TEXT]
        [--output PATH] [--dry-run]

``--quick`` runs the two trajectory-gating benches only (the event-kernel
throughput and the 1024-proc full-stack micro) — what CI runs.  The default
runs every bench in the suite except the 8192-proc one (opt in with
``--full``).

Output schema (``BENCH_simulator.json``)::

    {"schema": 1,
     "runs": [{"label": ..., "timestamp": ..., "git_sha": ...,
               "host": {"python": ..., "platform": ..., "cpus": ...},
               "benchmarks": {"<bench name>": {"min": s, "mean": s,
                                               "stddev": s, "rounds": n}}},
              ...]}

Entries are append-only; the newest entry is compared against the previous
one on stdout so a regression is visible in the CI log without downloading
the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(REPO_ROOT, "benchmarks",
                          "test_simulator_throughput.py")
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_simulator.json")

#: The benches whose trajectory gates hot-path PRs: the two original
#: trajectory points (ISSUE 2), the metadata fast-path pair (ISSUE 5),
#: the multi-job admission path (ISSUE 7, non-gating) and the hot-range
#: mitigation payoff (ISSUE 8; asserts the >= 2x simulated speedup).
QUICK_BENCHES = [
    "test_event_loop_throughput",
    "test_micro_1024_procs_wall_time",
    "test_metadata_insert_throughput",
    "test_cached_read_latency",
    "test_multi_job_throughput",
    "test_hot_range_throughput",
    "test_write_quorum_overhead",
]

#: Excluded from the default run: the paper's largest scale is minutes of
#: wall time and adds nothing the 1024-proc point doesn't show.
FULL_ONLY_BENCHES = ["test_micro_8192_procs_wall_time"]


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def host_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_pytest_benchmark(selection: str, json_path: str,
                         fastpath_off: bool = False,
                         hotspot_off: bool = False) -> int:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    if fastpath_off:
        env["REPRO_META_FASTPATH"] = "0"
    if hotspot_off:
        env["REPRO_HOTSPOT"] = "0"
    cmd = [
        sys.executable, "-m", "pytest", BENCH_FILE, "-q",
        "--benchmark-json", json_path,
        "--benchmark-warmup", "off",
    ]
    if selection:
        cmd += ["-k", selection]
    print("$", " ".join(cmd), flush=True)
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


def collect(json_path: str) -> dict:
    with open(json_path) as fh:
        raw = json.load(fh)
    benches = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benches[bench["name"]] = {
            "min": stats["min"],
            "mean": stats["mean"],
            "stddev": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return benches


def load_trajectory(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as fh:
            data = json.load(fh)
        if data.get("schema") != 1:
            raise SystemExit(f"{path}: unknown schema {data.get('schema')!r}")
        return data
    return {"schema": 1, "runs": []}


def compare(prev: dict, curr: dict) -> list:
    """Print current-vs-previous per-bench speedups (min wall time),
    flagging >10 % regressions; returns the flagged bench names.

    Non-gating: the return value feeds the CI log line, not the exit
    code (bench hosts are noisy; a human reads the table)."""
    regressions = []
    print(f"\n{'benchmark':44s} {'prev min':>10s} {'curr min':>10s} "
          f"{'speedup':>8s}")
    for name, stats in sorted(curr.items()):
        before = prev.get(name)
        if before and stats["min"] > 0:
            ratio = before["min"] / stats["min"]
            flag = ""
            if ratio < 0.9:
                flag = "  !! >10% regression"
                regressions.append(name)
            print(f"{name:44s} {before['min']:10.4f} {stats['min']:10.4f} "
                  f"{ratio:7.2f}x{flag}")
        else:
            print(f"{name:44s} {'-':>10s} {stats['min']:10.4f} {'-':>8s}")
    if regressions:
        print(f"\n{len(regressions)} bench(es) regressed >10% vs the "
              f"previous run (non-gating)")
    return regressions


def profile_bench(bench: str) -> int:
    """Run one bench selection under cProfile.

    Writes ``results/profile_<bench>.txt`` (top 30 by cumulative time)
    so a kernel PR can show exactly where the wall time went.  Runs
    pytest in-process — cProfile cannot see across a subprocess."""
    import cProfile
    import io
    import pstats

    import pytest

    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    profiler = cProfile.Profile()
    profiler.enable()
    # --benchmark-disable: the fixture calls the function exactly once
    # (no calibration loop), which is both what a profile should show
    # and the only mode that nests cleanly inside an active profiler.
    rc = pytest.main([BENCH_FILE, "-q", "-k", bench,
                      "--benchmark-disable",
                      "-p", "no:cacheprovider"])
    profiler.disable()
    out_dir = os.path.join(REPO_ROOT, "results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, f"profile_{bench}.txt")
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats(
        "cumulative").print_stats(30)
    with open(out_path, "w") as fh:
        fh.write(buf.getvalue())
    print(f"profile written to {out_path}")
    return int(rc)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the trajectory-gating benches "
                             "(kernel + 1024-proc micro); what CI runs")
    parser.add_argument("--full", action="store_true",
                        help="include the 8192-proc micro (slow)")
    parser.add_argument("--label", default="",
                        help="free-form tag stored with the run entry")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="trajectory file (default: BENCH_simulator.json)")
    parser.add_argument("--dry-run", action="store_true",
                        help="run and compare but do not write the file")
    parser.add_argument("--fastpath-off", action="store_true",
                        help="run with REPRO_META_FASTPATH=0 (legacy "
                             "metadata plane) — records the 'before' "
                             "point of a fast-path comparison pair")
    parser.add_argument("--hotspot-off", action="store_true",
                        help="run with REPRO_HOTSPOT=0 (static range "
                             "layout) — records the 'before' point of "
                             "the hot-range mitigation pair")
    parser.add_argument("--profile", default=None, metavar="BENCH",
                        help="run BENCH (a pytest -k selection) under "
                             "cProfile and write "
                             "results/profile_<BENCH>.txt (top 30 "
                             "cumulative); skips the trajectory")
    parser.add_argument("--github-warnings", action="store_true",
                        help="emit a ::warning:: annotation per bench "
                             "that regressed >10%% vs the previous "
                             "trajectory entry (non-gating; for CI)")
    args = parser.parse_args(argv)

    if args.profile:
        return profile_bench(args.profile)

    if args.quick:
        selection = " or ".join(QUICK_BENCHES)
    elif args.full:
        selection = ""
    else:
        selection = " and ".join(f"not {b}" for b in FULL_ONLY_BENCHES)

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        rc = run_pytest_benchmark(selection, json_path,
                                  fastpath_off=args.fastpath_off,
                                  hotspot_off=args.hotspot_off)
        if rc != 0:
            print(f"benchmark suite failed (exit {rc})", file=sys.stderr)
            return rc
        benches = collect(json_path)
    finally:
        os.unlink(json_path)
    if not benches:
        print("no benchmarks matched the selection", file=sys.stderr)
        return 2

    trajectory = load_trajectory(args.output)
    entry = {
        "label": args.label,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "git_sha": git_sha(),
        "host": host_info(),
        "benchmarks": benches,
    }
    if trajectory["runs"]:
        regressions = compare(trajectory["runs"][-1]["benchmarks"], benches)
    else:
        regressions = compare({}, benches)
    if args.github_warnings:
        for name in regressions:
            print(f"::warning title=bench regression::{name} regressed "
                  f">10% vs the previous BENCH_simulator.json entry "
                  f"(non-gating; shared runners are noisy)")
    if args.dry_run:
        print("\n--dry-run: trajectory not updated")
        return 0
    trajectory["runs"].append(entry)
    with open(args.output, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"\nappended run #{len(trajectory['runs'])} to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
