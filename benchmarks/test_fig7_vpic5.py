"""Fig. 7 — total I/O time of 5-time-step VPIC-IO on a single layer.

Paper bands: UniviStor/DRAM is 1.9-3.1x (avg 2.5x) faster than Data
Elevator and UniviStor/BB 1.1-1.6x (avg 1.3x); Lustre is slowest.
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig7
from repro.experiments.common import sweep


class TestFig7:
    def test_fig7_vpic_5steps(self, once):
        table = once(run_fig7, procs_list=sweep())
        print("\n" + fmt_markdown_table(table, "{:.4g}"))
        # Lower is better: invert ratios for the speedup bands.
        de_over_dram = table.ratio("DE", "UniviStor/DRAM")
        de_over_bb = table.ratio("DE", "UniviStor/BB")
        lo = min(de_over_dram.values())
        hi = max(de_over_dram.values())
        mean = sum(de_over_dram.values()) / len(de_over_dram)
        print(f"DE / UV-DRAM time: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.9..3.1 (avg 2.5)")
        assert 1.5 <= mean <= 3.5, "UV/DRAM advantage off the paper band"
        mean_bb = sum(de_over_bb.values()) / len(de_over_bb)
        print(f"DE / UV-BB time: mean {mean_bb:.2f}; paper 1.1..1.6 "
              f"(avg 1.3)")
        assert 1.02 <= mean_bb <= 2.0, "UV/BB advantage off the paper band"
        for x in table.xs():
            row = table.rows[x]
            # Ordering (smaller time wins): DRAM < BB < DE < Lustre.
            assert (row["UniviStor/DRAM"] < row["UniviStor/BB"]
                    < row["DE"] < row["Lustre"]), f"ordering broken at {x}"
            # UniviStor/BB's exposed flush is no worse than DE's (ADPT).
            assert (row["UniviStor/BB Flush"]
                    <= row["DE Flush"] * 1.05), f"flush tail at {x}"
