"""Fig. 8 — 10-step VPIC-IO across multiple storage layers.

Ten steps exceed the DRAM cache, so UniviStor/(DRAM+BB+Disk) spills part
of the data to the burst buffer.  Paper bands: the hierarchy is 1.2-1.6x
(avg 1.4x) faster than BB-only and 1.4-2x (avg 1.7x) faster than
write-through-to-disk.
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig8
from repro.experiments.common import sweep


class TestFig8:
    def test_fig8_vpic_10steps(self, once):
        table = once(run_fig8, procs_list=sweep())
        print("\n" + fmt_markdown_table(table, "{:.4g}"))
        vs_bb = table.ratio("UniviStor/(BB+Disk)", "UniviStor/(DRAM+BB+Disk)")
        vs_disk = table.ratio("UniviStor/(Disk)", "UniviStor/(DRAM+BB+Disk)")
        mean_bb = sum(vs_bb.values()) / len(vs_bb)
        mean_disk = sum(vs_disk.values()) / len(vs_disk)
        print(f"BB+Disk / DRAM+BB+Disk time: mean {mean_bb:.2f}; "
              f"paper 1.2..1.6 (avg 1.4)")
        print(f"Disk / DRAM+BB+Disk time: mean {mean_disk:.2f}; "
              f"paper 1.4..2 (avg 1.7)")
        for x in table.xs():
            row = table.rows[x]
            assert (row["UniviStor/(DRAM+BB+Disk)"]
                    < row["UniviStor/(BB+Disk)"]), \
                f"hierarchy must beat BB-only at {x}"
            assert (row["UniviStor/(DRAM+BB+Disk)"]
                    < row["UniviStor/(Disk)"]), \
                f"hierarchy must beat disk-only at {x}"
        assert 1.1 <= mean_bb <= 2.2, "DRAM+BB advantage off the paper band"
        assert 1.2 <= mean_disk <= 2.6, "vs-disk advantage off the paper band"
