"""Benchmark harness configuration.

Each benchmark regenerates one figure of the paper's evaluation: it runs
the corresponding experiment sweep inside ``pytest-benchmark`` (one round
— the simulation is deterministic), prints the paper-style table, and
asserts the qualitative shape (who wins, roughly by how much).

Scale control: ``REPRO_SWEEP=small`` (default, 64/256/1024 processes),
``REPRO_SWEEP=paper`` (the full 64..8192 sweep of §III-A), or an explicit
comma list, e.g. ``REPRO_SWEEP=64,512``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (simulations are deterministic: repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return _run
