"""Simulator self-benchmarks: wall-clock cost of the reproduction itself.

Unlike the figure benches (which report *simulated* I/O rates), these
measure how fast the simulator runs on the host — the numbers that decide
whether the full paper sweep is practical.  They exercise the hot paths:
the event kernel, fair-share rescheduling, extent-map writes and the
full-stack micro-benchmark at two scales.
"""

import numpy as np

from repro.experiments.common import build_simulation
from repro.sim import BandwidthResource, Engine
from repro.storage.datamodel import ExtentMap, PatternPayload
from repro.units import MiB
from repro.workloads import MicroBench


class TestKernelThroughput:
    def test_event_loop_throughput(self, benchmark):
        """Chained timeouts: pure scheduler overhead per event."""
        def run():
            engine = Engine()

            def ticker():
                for _ in range(20_000):
                    yield engine.timeout(1.0)

            engine.run_process(ticker())
            return engine.now

        assert benchmark(run) == 20_000.0

    def test_fair_share_rescheduling(self, benchmark):
        """Staggered flows force O(flows) rescheduling churn."""
        def run():
            engine = Engine()
            pipe = BandwidthResource(engine, 1000.0)

            def submit(i):
                yield engine.timeout(i * 0.1)
                yield pipe.transfer(100.0 + i, streams=1 + i % 7)

            for i in range(300):
                engine.process(submit(i))
            engine.run()
            return pipe.bytes_moved

        assert benchmark(run) > 0

    def test_extent_map_random_writes(self, benchmark):
        """Interval-map maintenance under overwrite churn."""
        rng = np.random.default_rng(7)
        ops = [(int(o), int(l), int(s)) for o, l, s in
               zip(rng.integers(0, 1 << 20, 3000),
                   rng.integers(1, 1 << 12, 3000),
                   rng.integers(0, 50, 3000))]

        def run():
            m = ExtentMap()
            for offset, length, seed in ops:
                m.write(offset, length, PatternPayload(seed))
            return len(m)

        assert benchmark(run) > 0


class TestFullStackThroughput:
    def _run_micro(self, procs):
        sim, fstype = build_simulation(procs, "UniviStor/DRAM")
        comm = sim.comm("iobench", size=procs)
        bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                           bytes_per_proc=256 * MiB)

        def app():
            yield from bench.write_phase()
            yield from bench.read_phase()

        sim.run_to_completion(app())
        return sim.telemetry.total_bytes(op="write")

    def test_micro_1024_procs_wall_time(self, benchmark):
        """Full write+read at 1024 ranks (32 nodes)."""
        total = benchmark.pedantic(self._run_micro, args=(1024,),
                                   rounds=3, iterations=1)
        assert total == 1024 * 256 * MiB

    def test_micro_8192_procs_wall_time(self, benchmark):
        """Full write+read at the paper's largest scale (256 nodes)."""
        total = benchmark.pedantic(self._run_micro, args=(8192,),
                                   rounds=1, iterations=1)
        assert total == 8192 * 256 * MiB
