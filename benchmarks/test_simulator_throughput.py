"""Simulator self-benchmarks: wall-clock cost of the reproduction itself.

Unlike the figure benches (which report *simulated* I/O rates), these
measure how fast the simulator runs on the host — the numbers that decide
whether the full paper sweep is practical.  They exercise the hot paths:
the event kernel, fair-share rescheduling, extent-map writes and the
full-stack micro-benchmark at two scales.
"""

import os

import numpy as np

from repro.cluster.spec import MachineSpec
from repro.core.config import StorageTier, UniviStorConfig
from repro.core.location_cache import LocationCache
from repro.core.metadata import MetadataRecord, MetadataService
from repro.experiments.common import build_simulation
from repro.sim import BandwidthResource, Engine
from repro.simmpi.mpiio import IORequest
from repro.simulation import Simulation
from repro.storage.datamodel import ExtentMap, PatternPayload
from repro.units import KiB, MiB
from repro.workloads import MicroBench


def _fastpath_on() -> bool:
    """The metadata fast-path benches honor ``REPRO_META_FASTPATH=0`` to
    emulate the pre-fast-path code (per-record inserts, no compaction,
    no location cache), so a trajectory file can hold a directly
    comparable before/after pair recorded from the same tree."""
    return os.environ.get("REPRO_META_FASTPATH", "1") != "0"


def _hotspot_on() -> bool:
    """The hot-range bench honors ``REPRO_HOTSPOT=0`` to emulate the
    static range layout (no split/merge, no elastic pool), so the
    trajectory file holds a before/after pair for the mitigation."""
    return os.environ.get("REPRO_HOTSPOT", "1") != "0"


class TestKernelThroughput:
    def test_event_loop_throughput(self, benchmark):
        """Chained timeouts: pure scheduler overhead per event."""
        def run():
            engine = Engine()

            def ticker():
                for _ in range(20_000):
                    yield engine.timeout(1.0)

            engine.run_process(ticker())
            return engine.now

        assert benchmark(run) == 20_000.0

    def test_fair_share_rescheduling(self, benchmark):
        """Staggered flows force O(flows) rescheduling churn."""
        def run():
            engine = Engine()
            pipe = BandwidthResource(engine, 1000.0)

            def submit(i):
                yield engine.timeout(i * 0.1)
                yield pipe.transfer(100.0 + i, streams=1 + i % 7)

            for i in range(300):
                engine.process(submit(i))
            engine.run()
            return pipe.bytes_moved

        assert benchmark(run) > 0

    def test_extent_map_random_writes(self, benchmark):
        """Interval-map maintenance under overwrite churn."""
        rng = np.random.default_rng(7)
        ops = [(int(o), int(l), int(s)) for o, l, s in
               zip(rng.integers(0, 1 << 20, 3000),
                   rng.integers(1, 1 << 12, 3000),
                   rng.integers(0, 50, 3000))]

        def run():
            m = ExtentMap()
            for offset, length, seed in ops:
                m.write(offset, length, PatternPayload(seed))
            return len(m)

        assert benchmark(run) > 0


class TestMetadataFastPath:
    """Host cost of the metadata plane (docs/MODEL.md §9)."""

    PROCS = 4
    WAVES = 24
    CHUNKS = 64
    CHUNK = int(4 * KiB)

    def _wave_records(self, wave):
        """One collective write's record stream: per-proc contiguous runs
        of chunk records, appended wave after wave (offsets *and* VAs
        continue across waves, so compaction can collapse each proc's
        region while per-record insertion accumulates them all)."""
        records = []
        run_bytes = self.CHUNKS * self.CHUNK
        for proc in range(self.PROCS):
            base = proc * (64 << 20) + wave * run_bytes
            va = float(wave * run_bytes)
            for i in range(self.CHUNKS):
                records.append(MetadataRecord(
                    1, base + i * self.CHUNK, self.CHUNK, proc,
                    va + i * self.CHUNK, StorageTier.DRAM, proc % 2))
        return records

    def test_metadata_insert_throughput(self, benchmark):
        """Collective-write insert stream: batched + coalesced + merged
        vs the legacy per-record loop."""
        fast = _fastpath_on()
        waves = [self._wave_records(w) for w in range(self.WAVES)]

        def run():
            md = MetadataService(n_servers=8, range_size=float(1 * MiB),
                                 replication=2, compaction=fast)
            for records in waves:
                if fast:
                    md.insert_many(records, coalesce=True)
                else:
                    for record in records:
                        md.insert(record)
            return md.record_count

        assert benchmark(run) > 0

    def test_cached_read_latency(self, benchmark):
        """Strided multi-range lookups: location-cache hits (plus the
        unchanged per-range cost accounting) vs authoritative store
        searches."""
        fast = _fastpath_on()
        chunk = int(4 * KiB)
        n_records = 16384  # 64 MiB of 4 KiB pieces, writers alternating
        md = MetadataService(n_servers=4, range_size=float(64 * KiB),
                             replication=1)
        cache = LocationCache(md.range_size)
        cache.begin_file(1)
        records = [MetadataRecord(1, i * chunk, chunk, i % 4,
                                  float(i * chunk), StorageTier.DRAM,
                                  i % 2)
                   for i in range(n_records)]
        md.insert_many(records)
        cache.insert_records(records)
        span = int(1 * MiB)
        limit = n_records * chunk - span
        offsets = [(j * 997 * chunk) % limit // chunk * chunk
                   for j in range(64)]

        def run():
            total = 0
            if fast:
                for off in offsets:
                    found = cache.lookup(1, off, span)
                    md.read_servers_for(1, off, span)
                    total += len(found)
            else:
                for off in offsets:
                    found, _servers = md.lookup(1, off, span)
                    total += len(found)
            return total

        assert benchmark(run) > 0


class TestHotRangeThroughput:
    """Simulated payoff of the adaptive hotspot mitigation
    (docs/MODEL.md §11): every rank hammers a small slot inside ONE
    64 KiB metadata range, so the static layout serializes each
    collective on the range's replica set while the mitigation splits
    the range across the (elastically grown) server pool."""

    RANKS = 6
    WAVES = 60
    SLOTS_PER_RANK = 8
    SLOT = 512

    def _run_skewed(self, adaptive):
        """Returns the simulated hot-phase throughput (bytes/s)."""
        config = UniviStorConfig.hardened(
            metadata_range_size=float(64 * KiB),
            journal_checkpoint=2,
            hotspot_enabled=adaptive,
            range_split_threshold=8,
            range_merge_threshold=0,
            hotspot_interval=0.002,
            pool_max_servers=8)
        sim = Simulation(MachineSpec.small_test(nodes=3))
        sim.install_univistor(config)
        comm = sim.comm("hot", self.RANKS, procs_per_node=2)
        n_slots = self.RANKS * self.SLOTS_PER_RANK
        stride = int(64 * KiB) // n_slots
        elapsed = {}

        def app():
            fh = yield from sim.open(comm, "/hot", "w",
                                     fstype="univistor")
            start = sim.now
            for wave in range(self.WAVES):
                yield from fh.write_at_all([
                    IORequest(r, (r * self.SLOTS_PER_RANK + k) * stride,
                              self.SLOT,
                              PatternPayload(wave * n_slots + r + k))
                    for r in range(comm.size)
                    for k in range(self.SLOTS_PER_RANK)])
            elapsed["hot"] = sim.now - start
            yield from fh.close()
            yield from fh.sync()

        sim.run_to_completion(app())
        sim.run()
        return self.WAVES * n_slots * self.SLOT / elapsed["hot"]

    def test_hot_range_throughput(self, benchmark):
        """Skewed overwrite waves into one range; with the mitigation on
        the simulated hot-range throughput must be at least 2x the
        static layout's."""
        adaptive = benchmark.pedantic(self._run_skewed,
                                      args=(_hotspot_on(),),
                                      rounds=3, iterations=1)
        benchmark.extra_info["simulated_bytes_per_sec"] = adaptive
        if _hotspot_on():
            static = self._run_skewed(False)
            assert adaptive >= 2.0 * static, (
                f"hot-range mitigation payoff below 2x: "
                f"{adaptive / static:.2f}x")


class TestWriteQuorumOverhead:
    """Simulated write-ack cost of the synchronous data-plane quorum
    (docs/MODEL.md §12): at ``data_quorum=2`` the shared-BB mirror
    joins the collective's completion, so the ack waits for the slowest
    of the primary placement and the mirror.  Non-gating on the ratio —
    the bench records the dq=2 vs dq=1 simulated write-phase times in
    the trajectory so the durability-vs-latency trade-off stays
    visible across PRs."""

    RANKS = 6
    WAVES = 20
    BLOCK = int(256 * KiB)

    def _run_waves(self, data_quorum):
        """Returns the simulated write-phase duration (seconds)."""
        config = UniviStorConfig.hardened(
            metadata_range_size=float(64 * KiB),
            journal_checkpoint=2,
            data_quorum=data_quorum)
        sim = Simulation(MachineSpec.small_test(nodes=3))
        sim.install_univistor(config)
        comm = sim.comm("quorum", self.RANKS, procs_per_node=2)
        elapsed = {}

        def app():
            fh = yield from sim.open(comm, "/quorum", "w",
                                     fstype="univistor")
            start = sim.now
            for wave in range(self.WAVES):
                yield from fh.write_at_all([
                    IORequest.contiguous_block(
                        r, self.BLOCK,
                        PatternPayload(wave * self.RANKS + r))
                    for r in range(comm.size)])
            elapsed["write"] = sim.now - start
            yield from fh.close()
            yield from fh.sync()

        sim.run_to_completion(app())
        sim.run()
        return elapsed["write"]

    def test_write_quorum_overhead(self, benchmark):
        dq2 = benchmark.pedantic(self._run_waves, args=(2,),
                                 rounds=3, iterations=1)
        dq1 = self._run_waves(1)
        benchmark.extra_info["simulated_write_seconds_dq2"] = dq2
        benchmark.extra_info["simulated_write_seconds_dq1"] = dq1
        benchmark.extra_info["quorum_overhead_ratio"] = dq2 / dq1
        # The mirror rides the ack path, so dq=2 can never be cheaper
        # than the async-replication baseline; the magnitude is
        # trajectory data, not a gate.
        assert dq2 >= dq1


class TestFullStackThroughput:
    def _run_micro(self, procs, bytes_per_proc=256 * MiB, config=None):
        sim, fstype = build_simulation(procs, "UniviStor/DRAM",
                                       config=config)
        comm = sim.comm("iobench", size=procs)
        bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                           bytes_per_proc=bytes_per_proc)

        def app():
            yield from bench.write_phase()
            yield from bench.read_phase()

        sim.run_to_completion(app())
        return sim.telemetry.total_bytes(op="write")

    def test_micro_1024_procs_wall_time(self, benchmark):
        """Full write+read at 1024 ranks (32 nodes)."""
        total = benchmark.pedantic(self._run_micro, args=(1024,),
                                   rounds=3, iterations=1)
        assert total == 1024 * 256 * MiB

    def test_micro_8192_procs_wall_time(self, benchmark):
        """Full write+read at the paper's largest scale (256 nodes)."""
        total = benchmark.pedantic(self._run_micro, args=(8192,),
                                   rounds=1, iterations=1)
        assert total == 8192 * 256 * MiB

    def test_micro_100k_procs_wall_time(self, benchmark):
        """Full write+read at 100 000 ranks (3125 nodes) on a sharded
        engine — the ROADMAP's whole-machine-rank-count scale gate.

        Per-rank payload is small (1 MiB): the point is rank-count
        scaling of the kernel, collective, and metadata paths, not
        bytes.  Uses one engine shard per ~256 nodes so the epoch merge
        is exercised at scale; digests are engine-layout-invariant, so
        the workload is identical to a single-queue run."""
        from repro.experiments.common import univistor_config_for
        config = univistor_config_for("UniviStor/DRAM", engine_shards=13)
        total = benchmark.pedantic(self._run_micro,
                                   args=(100_000, 1 * MiB, config),
                                   rounds=1, iterations=1)
        assert total == 100_000 * 1 * MiB


class TestMultiJobThroughput:
    def _run_trace(self):
        from repro.workloads.engine import WorkloadSpec, run_trace
        spec = WorkloadSpec(jobs=25, seed=0)
        return run_trace(spec.generate(), spec=spec)

    def test_multi_job_throughput(self, benchmark):
        """25-job heavy-tail trace through admission + DHP: the wall cost
        of one strategy point in a compare-strategies sweep."""
        result = benchmark.pedantic(self._run_trace, rounds=3, iterations=1)
        assert len(result.jobs) == 25
        assert result.counters["wl-complete"] == 25
