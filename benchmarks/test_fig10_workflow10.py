"""Fig. 10 — the 10-step workflow across storage layers.

Paper bands: UniviStor/(DRAM+BB) is 1.5-2x (avg 1.8x) faster than
BB-only and 4-4.8x (avg 4.3x) faster than Lustre-only placement.
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig10
from repro.experiments.common import sweep


class TestFig10:
    def test_fig10_workflow_10steps(self, once):
        table = once(run_fig10, procs_list=sweep())
        print("\n" + fmt_markdown_table(table, "{:.4g}"))
        vs_bb = table.ratio("UniviStor/(BB)", "UniviStor/(DRAM+BB)")
        vs_disk = table.ratio("UniviStor/(Disk)", "UniviStor/(DRAM+BB)")
        mean_bb = sum(vs_bb.values()) / len(vs_bb)
        mean_disk = sum(vs_disk.values()) / len(vs_disk)
        print(f"BB / DRAM+BB time: mean {mean_bb:.2f}; paper 1.5..2 "
              f"(avg 1.8)")
        print(f"Disk / DRAM+BB time: mean {mean_disk:.2f}; paper 4..4.8 "
              f"(avg 4.3)")
        for x in table.xs():
            row = table.rows[x]
            assert (row["UniviStor/(DRAM+BB)"] < row["UniviStor/(BB)"]
                    < row["UniviStor/(Disk)"]), f"ordering broken at {x}"
        assert 1.2 <= mean_bb <= 2.5, "DRAM+BB vs BB off the paper band"
        assert 2.0 <= mean_disk <= 7.0, "DRAM+BB vs Disk off the paper band"
