"""Fig. 9 — the 5-step VPIC-IO + BD-CATS-IO workflow.

Paper bands: Overlap mode (workflow locks, concurrent producer/consumer)
beats Nonoverlap by 1.2-1.7x (DRAM) and 1.5-2x (BB); UniviStor Nonoverlap
beats Data Elevator by 3.5-17x (DRAM, avg 9x) and 1.3-7.2x (BB, avg
3.4x); Lustre is slowest.
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig9
from repro.experiments.common import sweep


def band(table, slow, fast):
    inv = table.ratio(slow, fast)
    vals = list(inv.values())
    return min(vals), sum(vals) / len(vals), max(vals)


class TestFig9:
    def test_fig9_workflow_5steps(self, once):
        table = once(run_fig9, procs_list=sweep(), verify=True)
        print("\n" + fmt_markdown_table(table, "{:.4g}"))
        lo, mean, hi = band(table, "UniviStor/DRAM Nonoverlap",
                            "UniviStor/DRAM Overlap")
        print(f"DRAM overlap speedup: {lo:.2f}..{hi:.2f} (mean {mean:.2f});"
              f" paper 1.2..1.7 (avg 1.3)")
        assert lo >= 1.05, "overlap must help on DRAM"
        assert mean <= 2.0
        lo, mean, hi = band(table, "UniviStor/BB Nonoverlap",
                            "UniviStor/BB Overlap")
        print(f"BB overlap speedup: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.5..2 (avg 1.7)")
        assert lo >= 1.05, "overlap must help on BB"
        assert mean <= 2.2
        lo, mean, hi = band(table, "DE", "UniviStor/DRAM Nonoverlap")
        print(f"UV-DRAM nonoverlap over DE: {lo:.2f}..{hi:.2f} "
              f"(mean {mean:.2f}); paper 3.5..17 (avg 9)")
        assert lo >= 1.7, "UV/DRAM must clearly beat DE"
        lo, mean, hi = band(table, "DE", "UniviStor/BB Nonoverlap")
        print(f"UV-BB nonoverlap over DE: {lo:.2f}..{hi:.2f} "
              f"(mean {mean:.2f}); paper 1.3..7.2 (avg 3.4)")
        assert lo >= 1.1, "UV/BB must beat DE"
        for x in table.xs():
            row = table.rows[x]
            assert row["Lustre"] >= row["DE"] * 0.95, \
                f"Lustre must not beat DE at {x}"
            assert (row["UniviStor/DRAM Overlap"]
                    <= row["UniviStor/BB Overlap"] * 1.05), \
                f"DRAM overlap should lead at {x}"
