"""Ablation — a *tuned* Lustre baseline (two-phase collective buffering).

The paper compares UniviStor against untuned N-to-1 Lustre writes.  A
fair question: how much of the 46x gap survives if the baseline enables
ROMIO's collective buffering (data shuffled to a few aggregators that
write contiguous ranges)?  This bench answers it: collective buffering
helps Lustre substantially at scale, but UniviStor/DRAM still wins by a
wide margin — the gap is architectural (memory-speed caching + async
flush), not just a tuning artefact.
"""

from repro.experiments.common import build_simulation, io_rate, sweep
from repro.units import MiB
from repro.workloads import MicroBench


def write_rate(procs: int, system: str, cb_nodes: int = 0) -> float:
    sim, fstype = build_simulation(procs, system)
    comm = sim.comm("iobench", size=procs)
    bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                       bytes_per_proc=256 * MiB)
    hints = {"cb_nodes": cb_nodes} if cb_nodes else None

    def app():
        fh = yield from sim.open(comm, bench.path, "w", fstype=fstype,
                                 hints=hints)
        yield from fh.write_at_all(bench.layout.write_requests(
            "data", payload_seed_base=bench.payload_seed_base))
        yield from fh.close()

    sim.run_to_completion(app())
    return io_rate(sim, "iobench", ops=("open", "write", "close"),
                   data_ops=("write",))


class TestCollectiveBufferingAblation:
    def test_tuned_baseline_narrows_but_keeps_the_gap(self, benchmark):
        def run():
            out = {}
            for procs in sweep():
                nodes = procs // 32
                out[procs] = {
                    "lustre": write_rate(procs, "Lustre"),
                    "lustre+cb": write_rate(procs, "Lustre",
                                            cb_nodes=2 * nodes),
                    "uv-dram": write_rate(procs, "UniviStor/DRAM"),
                }
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nprocs  lustre(GB/s)  +cb(GB/s)  uv-dram(GB/s)  "
              "cb-gain  remaining-gap")
        for procs, row in results.items():
            cb_gain = row["lustre+cb"] / row["lustre"]
            gap = row["uv-dram"] / row["lustre+cb"]
            print(f"{procs:5d}  {row['lustre']/1e9:11.2f}  "
                  f"{row['lustre+cb']/1e9:9.2f}  "
                  f"{row['uv-dram']/1e9:12.2f}  {cb_gain:7.2f}  {gap:8.2f}")
            if procs >= 256:
                assert cb_gain > 1.2, \
                    f"collective buffering should help at {procs}"
                assert gap > 1.5, \
                    f"UniviStor must clearly win at scale ({procs})"
            assert gap > 0.9, \
                f"the tuned baseline must not dominate at {procs}"

    def test_cb_aggregator_count_tradeoff(self, benchmark):
        """Too few aggregators starve bandwidth; too many re-create the
        contention collective buffering was meant to avoid."""
        procs = 1024

        def run():
            return {cb: write_rate(procs, "Lustre", cb_nodes=cb)
                    for cb in (2, 16, 64, 512, 1024)}

        rates = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\ncb_nodes -> GB/s:",
              {cb: f"{r/1e9:.2f}" for cb, r in rates.items()})
        best = max(rates, key=rates.get)
        assert 16 <= best <= 512, "the sweet spot should be moderate"
        assert rates[best] > rates[2]
