"""Ablation — location-aware read service on/off (§II-B4).

With the service disabled every read funnels through the co-located
server (extra memory copy on local hits, doubled metadata hops, and a
second network crossing for shared-BB segments).  The paper presents the
service as a design feature without an isolated figure; this bench
quantifies it on both a DRAM-resident and a BB-resident dataset.
"""

from repro.core.config import UniviStorConfig
from repro.experiments.common import build_simulation, io_rate, sweep
from repro.units import MiB
from repro.workloads import MicroBench


def read_rate(procs: int, label: str, location_aware: bool) -> float:
    config = {"UniviStor/DRAM": UniviStorConfig.dram_only,
              "UniviStor/BB": UniviStorConfig.bb_only}[label]()
    if not location_aware:
        config = config.without("location_aware_reads")
    sim, fstype = build_simulation(procs, label, config=config)
    comm = sim.comm("iobench", size=procs)
    bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                       bytes_per_proc=256 * MiB)

    def app():
        yield from bench.write_phase()
        sim.telemetry.clear()
        yield from bench.read_phase()

    sim.run_to_completion(app())
    return io_rate(sim, "iobench", ops=("open", "read", "close"),
                   data_ops=("read",))


class TestReadServiceAblation:
    def test_location_aware_speeds_local_reads(self, benchmark):
        def run():
            out = {}
            for procs in sweep():
                out[procs] = (read_rate(procs, "UniviStor/DRAM", True),
                              read_rate(procs, "UniviStor/DRAM", False))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nprocs  LA-on(GB/s)  LA-off(GB/s)  speedup")
        for procs, (on, off) in results.items():
            print(f"{procs:5d}  {on/1e9:11.2f}  {off/1e9:11.2f}  "
                  f"{on/off:6.2f}x")
            assert on > off, f"location-aware must help at {procs}"
            # Local hits skip one server-side memory copy (~1/0.65).
            assert 1.2 <= on / off <= 2.2

    def test_location_aware_speeds_bb_reads(self, benchmark):
        def run():
            out = {}
            for procs in sweep():
                out[procs] = (read_rate(procs, "UniviStor/BB", True),
                              read_rate(procs, "UniviStor/BB", False))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nprocs  LA-on(GB/s)  LA-off(GB/s)  speedup")
        for procs, (on, off) in results.items():
            print(f"{procs:5d}  {on/1e9:11.2f}  {off/1e9:11.2f}  "
                  f"{on/off:6.2f}x")
            # BB segments are globally visible: direct reads avoid the
            # server forwarding hop entirely.
            assert on >= off, f"location-aware must not hurt at {procs}"
