"""Ablation — adaptive striping internals (DESIGN.md §4).

Separates the two mechanisms inside ADPT that Fig. 5c only shows
combined:

* **Eq. 2 vs default wide striping** (few servers): capping the
  per-server stripe count at alpha removes the per-OST synchronisation
  overhead of touching all 248 OSTs;
* **Eq. 6 vs Eq. 5** (many servers): rounding the server count up to a
  multiple of the OST count removes the §II-D straggler OSTs
  (512 % 248 = 16 OSTs carrying an extra flusher).
"""

import pytest

from repro.cluster.spec import LustreSpec
from repro.core.striping import adaptive_plan, default_plan, eq5_plan
from repro.sim import Engine
from repro.storage.lustre import LustreFS
from repro.units import GiB


def flush_time(plan, lustre_spec):
    """Simulated time for one flush with the given plan."""
    engine = Engine()
    fs = LustreFS(engine, lustre_spec)

    def proc():
        yield fs.write_with_layout(plan.bytes_per_server, plan.layout,
                                   per_stream_cap=5e9)
        return engine.now

    return engine.run_process(proc())


class TestStripingAblation:
    lustre = LustreSpec()

    def test_eq2_beats_wide_striping_few_servers(self, benchmark):
        file_size = 256 * GiB

        def run():
            out = {}
            for servers in (4, 16, 64):
                adaptive = adaptive_plan(file_size, servers, self.lustre)
                default = default_plan(file_size, servers, self.lustre)
                out[servers] = (flush_time(adaptive, self.lustre),
                                flush_time(default, self.lustre))
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nservers  adaptive(s)  default(s)  speedup")
        for servers, (t_a, t_d) in results.items():
            print(f"{servers:7d}  {t_a:10.2f}  {t_d:9.2f}  {t_d/t_a:6.2f}x")
            assert t_a < t_d, f"ADPT must beat wide striping at {servers}"
            assert t_d / t_a > 1.2

    def test_eq6_beats_eq5_many_servers(self, benchmark):
        file_size = 256 * GiB

        def run():
            out = {}
            for servers in (300, 512, 1000):
                eq6 = adaptive_plan(file_size, servers, self.lustre)
                eq5 = eq5_plan(file_size, servers, self.lustre)
                out[servers] = (flush_time(eq6, self.lustre),
                                flush_time(eq5, self.lustre),
                                eq5.layout.imbalance())
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nservers  eq6(s)   eq5(s)   eq5-imbalance  speedup")
        for servers, (t_6, t_5, imb) in results.items():
            print(f"{servers:7d}  {t_6:7.2f}  {t_5:7.2f}  {imb:13.2f}  "
                  f"{t_5/t_6:5.2f}x")
            assert t_6 <= t_5, f"Eq. 6 must not lose to Eq. 5 at {servers}"
        # The paper's worked example: 512 % 248 = 16 straggler OSTs.
        t_6, t_5, imb = results[512]
        assert imb == pytest.approx(1.453, abs=0.01)
        assert t_5 / t_6 > 1.2

    def test_alpha_sweep_finds_knee(self, benchmark):
        """Eq. 2's alpha: beyond the saturation point, more OSTs per
        server only add synchronisation overhead."""
        file_size = 64 * GiB
        servers = 8

        def run():
            times = {}
            for alpha in (1, 2, 4, 8, 16, 64, 248):
                spec = LustreSpec(saturation_stripe_count=alpha)
                plan = adaptive_plan(file_size, servers, spec)
                times[alpha] = flush_time(plan, spec)
            return times

        times = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nalpha -> flush time:",
              {a: f"{t:.2f}s" for a, t in times.items()})
        best = min(times, key=times.get)
        assert 2 <= best <= 64, "the knee should sit at a moderate alpha"
        assert times[248] > times[best], "touching every OST must hurt"
        assert times[1] > times[best], "a single OST per server starves"
