"""Fig. 5 — micro-benchmark ablations (IA / COC / ADPT).

Regenerates the three panels of Fig. 5 and checks the paper's ratio
bands:

* 5a write: IA+COC over No-IA 1.45-2.5x (avg 1.9x), over No-COC
  1.1-3.5x (avg 1.6x);
* 5b read: 1.13-1.5x (avg 1.25x) and 1.15-1.8x (avg 1.3x);
* 5c flush: IA+ADPT over both-disabled 1.9-2.7x (avg 2.3x).

Assertions are qualitative-shape checks with tolerance around the paper's
bands — the substrate is a simulator, not Cori.
"""

from repro.analysis import fmt_markdown_table
from repro.experiments import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.common import sweep


class TestFig5a:
    def test_fig5a_write(self, once):
        table = once(run_fig5a, procs_list=sweep())
        print("\n" + fmt_markdown_table(table))
        lo, mean, hi = table.ratio_band("IA+COC", "No-IA")
        print(f"IA+COC / No-IA: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.45..2.5 (avg 1.9)")
        assert lo >= 1.2, "IA must help writes at every scale"
        assert 1.4 <= mean <= 2.6, "IA write benefit off the paper band"
        lo, mean, hi = table.ratio_band("IA+COC", "No-COC")
        print(f"IA+COC / No-COC: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.1..3.5 (avg 1.6)")
        assert lo >= 1.0, "COC must never hurt"
        assert hi >= 1.1, "COC must visibly help at scale"
        # The COC benefit grows with process count (all-to-one serialises).
        ratios = table.ratio("IA+COC", "No-COC")
        xs = sorted(ratios)
        assert ratios[xs[-1]] >= ratios[xs[0]], \
            "COC benefit should grow with scale"


class TestFig5b:
    def test_fig5b_read(self, once):
        table = once(run_fig5b, procs_list=sweep())
        print("\n" + fmt_markdown_table(table))
        lo, mean, hi = table.ratio_band("IA+COC", "No-IA")
        print(f"IA+COC / No-IA: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.13..1.5 (avg 1.25)")
        assert lo >= 1.02
        assert 1.05 <= mean <= 1.7, "IA read benefit off the paper band"
        # Reads are less scheduling-sensitive than writes (paper: 1.25x
        # average vs 1.9x for writes).
        write_table = run_fig5a(procs_list=sweep()[:1])
        _, write_mean, _ = write_table.ratio_band("IA+COC", "No-IA")
        assert mean <= write_mean + 0.1
        lo, mean, hi = table.ratio_band("IA+COC", "No-COC")
        print(f"IA+COC / No-COC: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.15..1.8 (avg 1.3)")
        assert lo >= 1.0


class TestFig5c:
    def test_fig5c_flush(self, once):
        table = once(run_fig5c, procs_list=sweep())
        print("\n" + fmt_markdown_table(table))
        lo, mean, hi = table.ratio_band("IA+ADPT", "Disabled")
        print(f"IA+ADPT / Disabled: {lo:.2f}..{hi:.2f} (mean {mean:.2f}); "
              f"paper 1.9..2.7 (avg 2.3)")
        assert lo >= 1.3, "combined IA+ADPT must clearly beat disabled"
        assert 1.6 <= mean <= 3.0, "flush ablation off the paper band"
        # Each single optimisation alone helps but less than both.
        for variant in ("No-IA", "No-ADPT"):
            v_lo, v_mean, _ = table.ratio_band("IA+ADPT", variant)
            assert v_lo >= 0.95, f"{variant} should not beat IA+ADPT"
            assert v_mean <= mean + 0.1
