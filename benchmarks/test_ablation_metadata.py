"""Ablation — distributed vs centralised metadata (§II-B3).

The paper rejects the "naive solution" of one global map on a single
server because that server becomes a bottleneck.  This bench quantifies
the claim with the reproduction's cost model: the same collective read's
metadata phase is priced against 1 server vs the full distributed KV.
"""

from repro.cluster.spec import MachineSpec
from repro.core.config import UniviStorConfig
from repro.experiments.common import build_simulation
from repro.units import MiB
from repro.workloads import MicroBench


def read_metadata_cost(procs: int, n_metadata_servers: int) -> float:
    """Serialised look-up time at the busiest server for one collective
    read of 256 MiB/proc, with the KV spread over ``n`` servers."""
    from repro.core.metadata import MetadataService

    sim, fstype = build_simulation(procs, "UniviStor/DRAM")
    comm = sim.comm("iobench", size=procs)
    bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                       bytes_per_proc=64 * MiB)

    def app():
        yield from bench.write_phase()

    sim.run_to_completion(app())
    system = sim.univistor
    # Re-partition the same records over n servers and count the busiest
    # server's look-up queue for the read's requests.
    svc = MetadataService(n_metadata_servers,
                          system.config.metadata_range_size)
    for record in system.metadata.records_of(
            system.session("/pfs/m.h5").fid):
        svc.insert(record)
    lookups = {}
    for req in bench.layout.read_requests("data"):
        for server in svc.servers_for_range(req.offset, req.length):
            lookups[server] = lookups.get(server, 0) + 1
    busiest = max(lookups.values())
    return sim.machine.network.rpc_cost(busiest, serialized=True)


class TestMetadataAblation:
    def test_distributed_kv_beats_centralised(self, benchmark):
        def run():
            out = {}
            for procs in (64, 256, 1024):
                centralised = read_metadata_cost(procs, 1)
                distributed = read_metadata_cost(
                    procs, procs // 32 * 2)  # 2 servers/node
                out[procs] = (centralised, distributed)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nprocs  centralised(s)  distributed(s)  speedup")
        for procs, (c, d) in results.items():
            print(f"{procs:5d}  {c:14.4f}  {d:14.4f}  {c/d:6.1f}x")
            assert d < c, f"distributed KV must win at {procs} procs"
        # The centralised bottleneck worsens linearly with scale while the
        # distributed cost stays near-flat.
        c64, d64 = results[64]
        c1k, d1k = results[1024]
        assert c1k / c64 > 8, "centralised cost should grow ~linearly"
        assert d1k / d64 < 4, "distributed cost should stay near-flat"

    def test_range_partitioning_balances_servers(self, benchmark):
        def run():
            sim, fstype = build_simulation(256, "UniviStor/DRAM")
            comm = sim.comm("iobench", size=256)
            bench = MicroBench(sim, comm, "/pfs/m.h5", fstype,
                               bytes_per_proc=64 * MiB)

            def app():
                yield from bench.write_phase()

            sim.run_to_completion(app())
            return sim.univistor.metadata.server_record_counts()

        counts = benchmark.pedantic(run, rounds=1, iterations=1)
        loaded = [c for c in counts if c > 0]
        print(f"\nrecords/server: min={min(loaded)} max={max(loaded)} "
              f"servers-with-records={len(loaded)}/{len(counts)}")
        assert len(loaded) > len(counts) * 0.5, \
            "most servers should hold metadata"
        assert max(loaded) <= 4 * (sum(loaded) / len(loaded)), \
            "no server should be a hotspot"
