"""Unit tests for the simulated MPI substrate."""

import pytest

from repro.cluster.spec import MachineSpec
from repro.cluster.topology import Machine
from repro.sim import Engine
from repro.simmpi import (
    BYTE,
    Communicator,
    DOUBLE,
    Datatype,
    DriverRegistry,
    File,
    INT,
    IORequest,
    OpenContext,
)
from repro.simmpi.adio import ADIODriver
from repro.storage.datamodel import BytesPayload


@pytest.fixture
def machine():
    return Machine(Engine(), MachineSpec.small_test(nodes=2))


class TestDatatypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_extent(self):
        assert DOUBLE.extent(10) == 80
        with pytest.raises(ValueError):
            DOUBLE.extent(-1)

    def test_contiguous(self):
        vec = DOUBLE.contiguous(3)
        assert vec.size == 24
        assert vec.extent(2) == 48

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Datatype("bad", 0)


class TestCommunicator:
    def test_registers_program_on_nodes(self, machine):
        Communicator(machine, "app", 8, procs_per_node=4)
        assert machine.nodes[0].procs_of("app") == 4
        assert machine.nodes[1].procs_of("app") == 4

    def test_default_procs_per_node_fills_evenly(self, machine):
        comm = Communicator(machine, "app", 6)
        assert comm.procs_per_node == 3

    def test_node_of_rank(self, machine):
        comm = Communicator(machine, "app", 8, procs_per_node=4)
        assert comm.node_of_rank(0).node_id == 0
        assert comm.node_of_rank(3).node_id == 0
        assert comm.node_of_rank(4).node_id == 1
        with pytest.raises(ValueError):
            comm.node_of_rank(8)

    def test_ranks_on_node(self, machine):
        comm = Communicator(machine, "app", 6, procs_per_node=4)
        assert comm.ranks_on_node(0) == [0, 1, 2, 3]
        assert comm.ranks_on_node(1) == [4, 5]

    def test_barrier_costs_log_hops(self, machine):
        comm = Communicator(machine, "app", 8, procs_per_node=4)
        engine = machine.engine

        def proc():
            yield comm.barrier()
            return engine.now

        t = engine.run_process(proc())
        assert t == pytest.approx(3 * 2 * machine.spec.network.latency)

    def test_size_one_barrier_free(self, machine):
        comm = Communicator(machine, "solo", 1)
        engine = machine.engine

        def proc():
            yield comm.barrier()
            return engine.now

        assert engine.run_process(proc()) == 0.0

    def test_free_unregisters(self, machine):
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        comm.free()
        assert machine.nodes[0].procs_of("app") == 0

    def test_invalid_size(self, machine):
        with pytest.raises(ValueError):
            Communicator(machine, "app", 0)


class TestIORequest:
    def test_contiguous_block(self):
        req = IORequest.contiguous_block(3, 100, BytesPayload(b"x" * 100))
        assert req.offset == 300
        assert req.length == 100

    def test_contiguous_block_with_base(self):
        req = IORequest.contiguous_block(2, 10, BytesPayload(b"x" * 10),
                                         base_offset=1000)
        assert req.offset == 1020

    def test_validation(self):
        with pytest.raises(ValueError):
            IORequest(-1, 0, 10)
        with pytest.raises(ValueError):
            IORequest(0, -5, 10)
        with pytest.raises(ValueError):
            IORequest(0, 0, -1)

    def test_end(self):
        assert IORequest(0, 100, 50).end == 150


class _RecordingDriver(ADIODriver):
    """Test double that records calls and returns canned values."""

    name = "recorder"

    def __init__(self):
        self.calls = []

    def open(self, ctx):
        self.calls.append(("open", ctx.path, ctx.mode))
        return {"path": ctx.path}
        yield  # pragma: no cover

    def write_at_all(self, state, requests):
        self.calls.append(("write", len(requests)))
        return
        yield  # pragma: no cover

    def read_at_all(self, state, requests):
        self.calls.append(("read", len(requests)))
        return {r.rank: [] for r in requests}
        yield  # pragma: no cover

    def close(self, state):
        self.calls.append(("close", state["path"]))
        return
        yield  # pragma: no cover


class TestDriverRegistry:
    def test_register_and_resolve(self):
        reg = DriverRegistry()
        drv = _RecordingDriver()
        reg.register(drv)
        assert reg.resolve("recorder") is drv

    def test_duplicate_rejected(self):
        reg = DriverRegistry()
        reg.register(_RecordingDriver())
        with pytest.raises(ValueError):
            reg.register(_RecordingDriver())

    def test_abstract_name_rejected(self):
        reg = DriverRegistry()
        with pytest.raises(ValueError):
            reg.register(ADIODriver())

    def test_unknown_name(self):
        reg = DriverRegistry()
        with pytest.raises(KeyError):
            reg.resolve("nope")

    def test_no_driver_requested(self):
        reg = DriverRegistry()
        with pytest.raises(KeyError):
            reg.resolve(None)

    def test_fstype_force_overrides(self):
        reg = DriverRegistry()
        drv = _RecordingDriver()
        reg.register(drv)
        reg.fstype_force = "recorder"
        assert reg.resolve("anything-else") is drv

    def test_names(self):
        reg = DriverRegistry()
        reg.register(_RecordingDriver())
        assert reg.names() == ["recorder"]


class TestFile:
    def make(self, machine, mode="w"):
        reg = DriverRegistry()
        drv = _RecordingDriver()
        reg.register(drv)
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        engine = machine.engine

        def opener():
            fh = yield from File.open(reg, comm, "/x", mode,
                                      fstype="recorder")
            return fh

        fh = engine.run_process(opener())
        return fh, drv, engine

    def test_open_dispatches_to_driver(self, machine):
        fh, drv, _ = self.make(machine)
        assert drv.calls == [("open", "/x", "w")]

    def test_write_read_mode_enforcement(self, machine):
        fh, drv, engine = self.make(machine, mode="w")

        def reader():
            yield from fh.read_at_all([IORequest(0, 0, 10)])

        with pytest.raises(PermissionError):
            engine.run_process(reader())

    def test_read_only_rejects_write(self, machine):
        fh, drv, engine = self.make(machine, mode="r")

        def writer():
            yield from fh.write_at_all(
                [IORequest(0, 0, 3, BytesPayload(b"abc"))])

        with pytest.raises(PermissionError):
            engine.run_process(writer())

    def test_write_requires_payload(self, machine):
        fh, drv, engine = self.make(machine)

        def writer():
            yield from fh.write_at_all([IORequest(0, 0, 3)])

        with pytest.raises(ValueError, match="payload"):
            engine.run_process(writer())

    def test_rank_outside_comm_rejected(self, machine):
        fh, drv, engine = self.make(machine)

        def writer():
            yield from fh.write_at_all(
                [IORequest(99, 0, 3, BytesPayload(b"abc"))])

        with pytest.raises(ValueError, match="rank"):
            engine.run_process(writer())

    def test_empty_collective_rejected(self, machine):
        fh, drv, engine = self.make(machine)

        def writer():
            yield from fh.write_at_all([])

        with pytest.raises(ValueError):
            engine.run_process(writer())

    def test_use_after_close_rejected(self, machine):
        fh, drv, engine = self.make(machine)

        def closer():
            yield from fh.close()

        engine.run_process(closer())

        def writer():
            yield from fh.write_at_all(
                [IORequest(0, 0, 3, BytesPayload(b"abc"))])

        with pytest.raises(ValueError, match="closed"):
            engine.run_process(writer())

    def test_invalid_mode(self, machine):
        with pytest.raises(ValueError):
            OpenContext("/x", "a", None)


class TestDataCollectives:
    def test_allgather_scales_with_ranks_and_bytes(self, machine):
        comm = Communicator(machine, "app", 8, procs_per_node=4)
        engine = machine.engine

        def proc():
            t0 = engine.now
            yield comm.allgather(1 << 20)
            small = engine.now - t0
            t0 = engine.now
            yield comm.allgather(4 << 20)
            big = engine.now - t0
            return small, big

        small, big = engine.run_process(proc())
        assert big > small * 3.5

    def test_alltoall_costs_more_than_allgather(self, machine):
        comm = Communicator(machine, "app", 8, procs_per_node=4)
        engine = machine.engine

        def proc():
            t0 = engine.now
            yield comm.allgather(1 << 20)
            ag = engine.now - t0
            t0 = engine.now
            yield comm.alltoall(1 << 20)
            a2a = engine.now - t0
            return ag, a2a

        ag, a2a = engine.run_process(proc())
        # Same wire bytes, more rounds of latency.
        assert a2a >= ag

    def test_reduce_cheaper_than_allgather(self, machine):
        comm = Communicator(machine, "app", 8, procs_per_node=4)
        engine = machine.engine

        def proc():
            t0 = engine.now
            yield comm.reduce_data(1 << 20)
            red = engine.now - t0
            t0 = engine.now
            yield comm.allgather(1 << 20)
            ag = engine.now - t0
            return red, ag

        red, ag = engine.run_process(proc())
        assert red < ag

    def test_negative_payloads_rejected(self, machine):
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        with pytest.raises(ValueError):
            comm.allgather(-1)
        with pytest.raises(ValueError):
            comm.alltoall(-1)
        with pytest.raises(ValueError):
            comm.reduce_data(-1)
