"""Tests for the Simulation facade."""

import pytest

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)


class TestInstallation:
    def test_double_univistor_rejected(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        sim.install_univistor(UniviStorConfig.dram_only())
        with pytest.raises(RuntimeError):
            sim.install_univistor(UniviStorConfig.dram_only())

    def test_double_data_elevator_rejected(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        sim.install_data_elevator()
        with pytest.raises(RuntimeError):
            sim.install_data_elevator()

    def test_all_three_coexist(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        sim.install_univistor(UniviStorConfig.dram_only())
        sim.install_data_elevator()
        sim.install_lustre()
        assert sim.registry.names() == ["data_elevator", "lustre",
                                        "univistor"]

    def test_telemetry_attached_to_univistor(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        system = sim.install_univistor(UniviStorConfig.dram_only())
        assert system.telemetry is sim.telemetry


class TestFstypeForce:
    def test_force_redirects_all_opens(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        sim.install_univistor(UniviStorConfig.dram_only(
            flush_enabled=False))
        sim.install_lustre()
        sim.force_fstype("univistor")
        comm = sim.comm("app", 2, procs_per_node=2)

        def app():
            # Asks for lustre, gets univistor (ROMIO_FSTYPE_FORCE).
            fh = yield from sim.open(comm, "/f", "w", fstype="lustre")
            yield from fh.write_at_all([
                IORequest(0, 0, 1024, PatternPayload(1))])
            yield from fh.close()
            return fh.driver.name

        assert sim.run_to_completion(app()) == "univistor"
        assert not sim.machine.pfs_files.exists("/f")

    def test_force_reset(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        sim.install_lustre()
        sim.force_fstype("lustre")
        sim.force_fstype(None)
        with pytest.raises(KeyError):
            sim.registry.resolve(None)


class TestRunHelpers:
    def test_now_tracks_engine(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        assert sim.now == 0.0
        sim.run(until=3.5)
        assert sim.now == 3.5

    def test_spawn_returns_joinable_process(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))

        def work():
            yield sim.engine.timeout(1.0)
            return "done"

        proc = sim.spawn(work(), name="w")
        sim.run()
        assert proc.value == "done"

    def test_open_without_driver_raises(self):
        sim = Simulation(MachineSpec.small_test(nodes=1))
        comm = sim.comm("app", 2, procs_per_node=2)

        def app():
            yield from sim.open(comm, "/f", "w", fstype="univistor")

        with pytest.raises(KeyError):
            sim.run_to_completion(app())
