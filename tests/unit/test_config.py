"""Unit tests for UniviStorConfig."""

import pytest

from repro.core.config import StorageTier, UniviStorConfig


class TestStorageTier:
    def test_node_local_classification(self):
        assert StorageTier.DRAM.is_node_local
        assert StorageTier.LOCAL_SSD.is_node_local
        assert not StorageTier.SHARED_BB.is_node_local
        assert not StorageTier.PFS.is_node_local

    def test_shared_is_complement(self):
        for tier in StorageTier:
            assert tier.is_shared != tier.is_node_local


class TestUniviStorConfig:
    def test_defaults(self):
        config = UniviStorConfig()
        assert config.interference_aware
        assert config.collective_open_close
        assert config.adaptive_striping
        assert config.location_aware_reads
        assert not config.workflow_enabled
        assert config.flush_enabled
        assert config.servers_per_node == 2  # §III-A

    def test_canned_variants(self):
        assert UniviStorConfig.dram_only().cache_tiers == (StorageTier.DRAM,)
        assert UniviStorConfig.bb_only().cache_tiers == (StorageTier.SHARED_BB,)
        assert UniviStorConfig.dram_bb().cache_tiers == (
            StorageTier.DRAM, StorageTier.SHARED_BB)
        assert UniviStorConfig.pfs_only().cache_tiers == ()

    def test_without_disables_flags(self):
        config = UniviStorConfig().without("interference_aware",
                                           "adaptive_striping")
        assert not config.interference_aware
        assert not config.adaptive_striping
        assert config.collective_open_close  # untouched

    def test_without_unknown_flag(self):
        with pytest.raises(ValueError):
            UniviStorConfig().without("warp_drive")

    def test_pfs_in_cache_tiers_rejected(self):
        with pytest.raises(ValueError):
            UniviStorConfig(cache_tiers=(StorageTier.PFS,))

    def test_duplicate_tiers_rejected(self):
        with pytest.raises(ValueError):
            UniviStorConfig(cache_tiers=(StorageTier.DRAM,
                                         StorageTier.DRAM))

    def test_invalid_servers_per_node(self):
        with pytest.raises(ValueError):
            UniviStorConfig(servers_per_node=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            UniviStorConfig(chunk_size=0)

    def test_workflow_enabled_kwarg_on_variants(self):
        assert UniviStorConfig.dram_only(workflow_enabled=True).workflow_enabled

    def test_frozen(self):
        with pytest.raises(Exception):
            UniviStorConfig().chunk_size = 1
