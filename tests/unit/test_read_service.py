"""Unit tests for the location-aware read service (§II-B4)."""

import pytest

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.units import KiB, MiB


def setup(config=None, nodes=2):
    sim = Simulation(MachineSpec.small_test(nodes=nodes))
    sim.install_univistor(config or UniviStorConfig.dram_bb(
        flush_enabled=False))
    comm = sim.comm("app", 4, procs_per_node=2)
    return sim, comm


def write_blocks(sim, comm, path, block, nranks=4):
    def app():
        fh = yield from sim.open(comm, path, "w", fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, block, PatternPayload(r))
            for r in range(nranks)])
        yield from fh.close()

    sim.run_to_completion(app())


def read_with_breakdown(sim, comm, path, requests):
    system = sim.univistor
    session = system.session(path)

    def app():
        out = yield from system.read_service.read_collective(
            session, comm, requests, comm.name)
        return out

    return sim.run_to_completion(app())


class TestBreakdownClassification:
    def test_local_read_classified_local(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        # Rank 0 (node 0) reads its own block (written on node 0).
        _, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, 0, block)])
        assert breakdown.local_bytes == block
        assert breakdown.remote_bytes == 0
        assert breakdown.bb_bytes == 0

    def test_remote_read_classified_remote(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        # Rank 0 (node 0) reads rank 3's block (written on node 1).
        _, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, 3 * block, block)])
        assert breakdown.remote_bytes == block
        assert breakdown.local_bytes == 0

    def test_bb_read_classified_bb(self):
        sim, comm = setup(UniviStorConfig.bb_only(flush_enabled=False))
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        _, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, 0, block)])
        assert breakdown.bb_bytes == block
        assert breakdown.local_bytes == 0

    def test_mixed_read_splits_categories(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        # One request spanning rank 1's (node 0) and rank 2's (node 1)
        # blocks, issued by rank 0 on node 0.
        _, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, block, 2 * block)])
        assert breakdown.local_bytes == block   # rank 1's block: node 0
        assert breakdown.remote_bytes == block  # rank 2's block: node 1

    def test_lookup_costs_counted_per_server(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        _, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(r, r * block, block)
                              for r in range(4)])
        assert sum(breakdown.lookups_per_server.values()) >= 4

    def test_zero_length_request_ok(self):
        sim, comm = setup()
        write_blocks(sim, comm, "/f", int(64 * KiB))
        results, breakdown = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, 0, 0)])
        assert results[0] == []
        assert breakdown.total_bytes == 0


class TestLocationAwareTiming:
    def run_read(self, location_aware, config_factory=None, nodes=2):
        factory = config_factory or UniviStorConfig.dram_only
        config = factory(flush_enabled=False)
        if not location_aware:
            config = config.without("location_aware_reads")
        sim = Simulation(MachineSpec.cori_haswell(nodes=nodes))
        sim.install_univistor(config)
        comm = sim.comm("app", nodes * 32)
        block = int(16 * MiB)
        write_blocks(sim, comm, "/f", block, nranks=comm.size)
        t0 = sim.now

        def app():
            fh = yield from sim.open(comm, "/f", "r", fstype="univistor")
            data = yield from fh.read_at_all([
                IORequest(r, r * block, block) for r in range(comm.size)])
            yield from fh.close()
            return data

        sim.run_to_completion(app())
        return sim.now - t0

    def test_location_aware_faster_on_local_data(self):
        assert (self.run_read(True)
                < self.run_read(False))

    def test_location_aware_faster_on_bb_data(self):
        assert (self.run_read(True, UniviStorConfig.bb_only)
                < self.run_read(False, UniviStorConfig.bb_only))


class TestFunctionalResolution:
    def test_extents_rebased_to_logical_offsets(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        results, _ = read_with_breakdown(
            sim, comm, "/f", [IORequest(1, block, block)])
        extents = results[1]
        assert extents[0].offset == block
        assert extents[-1].offset + extents[-1].length == 2 * block

    def test_cross_rank_read_reassembles_bytes(self):
        sim, comm = setup()
        block = int(64 * KiB)
        write_blocks(sim, comm, "/f", block)
        results, _ = read_with_breakdown(
            sim, comm, "/f", [IORequest(0, 0, 4 * block)])
        blob = b"".join(e.materialize() for e in results[0])
        expected = b"".join(PatternPayload(r).materialize(0, block)
                            for r in range(4))
        assert blob == expected

    def test_unwritten_range_raises(self):
        sim, comm = setup()
        write_blocks(sim, comm, "/f", int(64 * KiB))
        with pytest.raises(ValueError, match="unwritten"):
            read_with_breakdown(sim, comm, "/f",
                                [IORequest(0, 10 * int(MiB), 1024)])
