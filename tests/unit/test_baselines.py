"""Unit tests for the Data Elevator and Lustre baseline drivers."""

import pytest

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
)
from repro.baselines.data_elevator import DE_PROGRAM
from repro.units import KiB, MiB


def make_sim(nodes=2):
    sim = Simulation(MachineSpec.small_test(nodes=nodes))
    sim.install_lustre()
    sim.install_data_elevator()
    return sim


def roundtrip(sim, comm, fstype, path, block, nranks):
    def app():
        fh = yield from sim.open(comm, path, "w", fstype=fstype)
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, block, PatternPayload(r))
            for r in range(nranks)])
        yield from fh.close()
        yield from fh.sync()
        fh2 = yield from sim.open(comm, path, "r", fstype=fstype)
        data = yield from fh2.read_at_all(
            [IORequest(r, r * block, block) for r in range(nranks)])
        yield from fh2.close()
        return data

    data = sim.run_to_completion(app())
    for r in range(nranks):
        blob = b"".join(e.materialize() for e in data[r])
        assert blob == PatternPayload(r).materialize(0, block)
    return data


class TestLustreDirect:
    def test_roundtrip(self):
        sim = make_sim()
        comm = sim.comm("app", 4, procs_per_node=2)
        roundtrip(sim, comm, "lustre", "/out/x", int(256 * KiB), 4)

    def test_data_lands_on_pfs_immediately(self):
        sim = make_sim()
        comm = sim.comm("app", 2, procs_per_node=1)

        def app():
            fh = yield from sim.open(comm, "/out/x", "w", fstype="lustre")
            yield from fh.write_at_all([
                IORequest(0, 0, 1024, PatternPayload(0))])
            yield from fh.close()

        sim.run_to_completion(app())
        assert sim.machine.pfs_files.open("/out/x").size == 1024

    def test_no_flush_records(self):
        sim = make_sim()
        comm = sim.comm("app", 2, procs_per_node=1)
        roundtrip(sim, comm, "lustre", "/out/x", int(64 * KiB), 2)
        assert sim.telemetry.select(op="flush") == []

    def test_shared_write_slower_than_univistor_dram(self):
        from repro.core.config import UniviStorConfig
        times = {}
        for fstype in ("lustre", "univistor"):
            sim = Simulation(MachineSpec.cori_haswell(nodes=2))
            sim.install_lustre()
            sim.install_univistor(UniviStorConfig.dram_only())
            comm = sim.comm("app", 64)

            def app(fstype=fstype, sim=sim, comm=comm):
                fh = yield from sim.open(comm, "/out/x", "w", fstype=fstype)
                yield from fh.write_at_all([
                    IORequest.contiguous_block(r, int(16 * MiB),
                                               PatternPayload(r))
                    for r in range(64)])
                yield from fh.close()

            sim.run_to_completion(app())
            times[fstype] = sim.telemetry.total_time(op="write")
        assert times["lustre"] > times["univistor"] * 1.5


class TestDataElevator:
    def test_roundtrip_same_app_from_bb(self):
        sim = make_sim()
        comm = sim.comm("app", 4, procs_per_node=2)
        roundtrip(sim, comm, "data_elevator", "/out/x", int(256 * KiB), 4)

    def test_servers_registered(self):
        sim = make_sim()
        assert sim.machine.nodes[0].procs_of(DE_PROGRAM) == 2

    def test_requires_burst_buffer(self):
        spec = MachineSpec.small_test(nodes=1)
        spec = spec.__class__(**{**spec.__dict__, "burst_buffer": None})
        sim = Simulation(spec)
        with pytest.raises(ValueError, match="burst buffer"):
            sim.install_data_elevator()

    def test_cache_lands_on_bb_then_flushes_to_pfs(self):
        sim = make_sim()
        comm = sim.comm("app", 2, procs_per_node=1)

        def app():
            fh = yield from sim.open(comm, "/out/x", "w",
                                     fstype="data_elevator")
            yield from fh.write_at_all([
                IORequest(0, 0, 4096, PatternPayload(5))])
            yield from fh.close()
            on_pfs_at_close = sim.machine.pfs_files.exists("/out/x")
            yield from fh.sync()
            return on_pfs_at_close

        on_pfs_at_close = sim.run_to_completion(app())
        assert sim.machine.bb_files.open("/out/x").size == 4096
        pfs = sim.machine.pfs_files.open("/out/x")
        assert pfs.read_bytes(0, 4096) == PatternPayload(5).materialize(
            0, 4096)

    def test_cross_app_read_waits_for_flush_and_uses_pfs(self):
        """A consumer application gets the PFS copy, not the BB cache."""
        sim = make_sim()
        writer_comm = sim.comm("producer", 2, procs_per_node=1)
        reader_comm = sim.comm("consumer", 2, procs_per_node=1)
        block = int(128 * KiB)

        def workflow():
            fh = yield from sim.open(writer_comm, "/out/x", "w",
                                     fstype="data_elevator")
            yield from fh.write_at_all([
                IORequest.contiguous_block(r, block, PatternPayload(r))
                for r in range(2)])
            yield from fh.close()
            t_close = sim.now
            fh2 = yield from sim.open(reader_comm, "/out/x", "r",
                                      fstype="data_elevator")
            data = yield from fh2.read_at_all(
                [IORequest(r, r * block, block) for r in range(2)])
            yield from fh2.close()
            return t_close, data

        t_close, data = sim.run_to_completion(workflow())
        # The read waited (inside read_at_all) for the flush to land on
        # the PFS before any data moved.
        flush = sim.telemetry.select(op="flush")[0]
        reads = sim.telemetry.select(op="read", app="consumer")
        assert reads[0].t_end >= flush.t_end - 1e-9
        assert reads[0].duration > flush.t_end - reads[0].t_start
        blob = b"".join(e.materialize() for e in data[1])
        assert blob == PatternPayload(1).materialize(0, block)

    def test_same_app_read_does_not_wait_for_flush(self):
        sim = make_sim()
        comm = sim.comm("app", 2, procs_per_node=1)
        block = int(4 * MiB)

        def app():
            fh = yield from sim.open(comm, "/out/x", "w",
                                     fstype="data_elevator")
            yield from fh.write_at_all([
                IORequest.contiguous_block(r, block, PatternPayload(r))
                for r in range(2)])
            yield from fh.close()
            fh2 = yield from sim.open(comm, "/out/x", "r",
                                      fstype="data_elevator")
            data = yield from fh2.read_at_all(
                [IORequest(r, r * block, block) for r in range(2)])
            yield from fh2.close()
            yield from fh.sync()
            return data

        sim.run_to_completion(app())
        flush = sim.telemetry.select(op="flush")[0]
        read = sim.telemetry.select(op="read")[0]
        assert read.t_start < flush.t_end, \
            "same-app read should overlap the flush, not wait for it"

    def test_repeated_close_flushes_incrementally(self):
        sim = make_sim()
        comm = sim.comm("app", 2, procs_per_node=1)
        block = int(64 * KiB)

        def app():
            for round_ in range(2):
                fh = yield from sim.open(comm, "/out/x", "w",
                                         fstype="data_elevator")
                yield from fh.write_at_all([
                    IORequest(r, (2 * round_ + r) * block, block,
                              PatternPayload(round_ * 10 + r))
                    for r in range(2)])
                yield from fh.close()
                yield from fh.sync()

        sim.run_to_completion(app())
        flushes = sim.telemetry.select(op="flush")
        assert len(flushes) == 2
        assert flushes[1].nbytes == pytest.approx(2 * block)

    def test_shared_file_write_slower_than_fpp_univistor_bb(self):
        from repro.core.config import UniviStorConfig
        times = {}
        for fstype in ("data_elevator", "univistor"):
            sim = Simulation(MachineSpec.cori_haswell(nodes=2))
            sim.install_data_elevator()
            sim.install_univistor(UniviStorConfig.bb_only())
            comm = sim.comm("app", 64)

            def app(fstype=fstype, sim=sim, comm=comm):
                fh = yield from sim.open(comm, "/out/x", "w", fstype=fstype)
                yield from fh.write_at_all([
                    IORequest.contiguous_block(r, int(64 * MiB),
                                               PatternPayload(r))
                    for r in range(64)])
                yield from fh.close()

            sim.run_to_completion(app())
            times[fstype] = sim.telemetry.total_time(op="write",
                                                     app="app")
        # DHP's file-per-process layout avoids the N-to-1 penalty.
        assert times["data_elevator"] > times["univistor"] * 1.1
