"""Unit + property tests for DHP logs, chunks, free-chunk stack, spill."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StorageTier
from repro.core.dhp import DHPWriter, LogFile
from repro.core.va import VirtualAddressSpace
from repro.sim import Engine
from repro.storage.datamodel import PatternPayload
from repro.storage.device import StorageDevice
from repro.storage.posix import FileStore


def make_log(tier=StorageTier.DRAM, capacity=100, chunk=10, device=None,
             store=None, name="/log"):
    store = store or FileStore()
    return LogFile(tier, capacity, chunk, store.create(name), device=device)


class TestLogFileAppend:
    def test_simple_append_single_run(self):
        log = make_log()
        runs = log.append(25, PatternPayload(1))
        assert runs == [(0.0, 25)]
        assert log.bytes_written == 25
        assert log.allocated_chunks == 3

    def test_appends_are_sequential(self):
        log = make_log()
        log.append(7, PatternPayload(1))
        runs = log.append(7, PatternPayload(2))
        assert runs == [(7.0, 7)]

    def test_append_stores_real_bytes(self):
        log = make_log()
        log.append(5, PatternPayload(1), payload_offset=10)
        assert (log.sim_file.read_bytes(0, 5)
                == PatternPayload(1).materialize(10, 5))

    def test_partial_append_at_log_capacity(self):
        log = make_log(capacity=30, chunk=10)
        runs = log.append(50, PatternPayload(1))
        assert sum(r[1] for r in runs) == 30

    def test_full_log_returns_empty(self):
        log = make_log(capacity=10, chunk=10)
        log.append(10, PatternPayload(1))
        assert log.append(5, PatternPayload(2)) == []

    def test_remaining_in_log(self):
        log = make_log(capacity=40, chunk=10)
        assert log.remaining_in_log() == 40
        log.append(15, PatternPayload(1))
        assert log.remaining_in_log() == 25

    def test_device_pressure_stops_append(self):
        engine = Engine()
        device = StorageDevice(engine, "d", capacity=25, bandwidth=1.0)
        log = make_log(capacity=1000, chunk=10, device=device)
        runs = log.append(100, PatternPayload(1))
        # Only 2 whole chunks fit on the device.
        assert sum(r[1] for r in runs) == 20
        assert device.used == 20

    def test_two_logs_share_device(self):
        engine = Engine()
        device = StorageDevice(engine, "d", capacity=30, bandwidth=1.0)
        store = FileStore()
        a = make_log(capacity=1000, chunk=10, device=device, store=store,
                     name="/a")
        b = make_log(capacity=1000, chunk=10, device=device, store=store,
                     name="/b")
        a.append(20, PatternPayload(1))
        runs = b.append(20, PatternPayload(2))
        assert sum(r[1] for r in runs) == 10  # only one chunk left

    def test_unbounded_log(self):
        log = make_log(capacity=math.inf, chunk=10)
        runs = log.append(10 ** 6, PatternPayload(1))
        assert sum(r[1] for r in runs) == 10 ** 6
        assert log.remaining_in_log() == math.inf

    def test_invalid_append_length(self):
        log = make_log()
        with pytest.raises(ValueError):
            log.append(0, PatternPayload(1))


class TestFreeChunkStack:
    def test_free_full_chunk_returns_to_stack(self):
        log = make_log(capacity=30, chunk=10)
        log.append(30, PatternPayload(1))
        assert log.free_stack == []
        log.free_segment(0, 10)  # kill chunk 0 entirely
        assert log.free_stack == [0]

    def test_partial_free_keeps_chunk(self):
        log = make_log(capacity=30, chunk=10)
        log.append(30, PatternPayload(1))
        log.free_segment(0, 5)
        assert log.free_stack == []

    def test_freed_chunk_is_reused_lifo(self):
        log = make_log(capacity=30, chunk=10)
        log.append(30, PatternPayload(1))
        log.free_segment(10, 10)
        log.free_segment(0, 10)
        # Stack is LIFO: chunk 0 (pushed last) is reused first.
        runs = log.append(10, PatternPayload(2))
        assert runs == [(0.0, 10)]

    def test_no_double_allocation_after_reuse(self):
        log = make_log(capacity=20, chunk=10)
        log.append(20, PatternPayload(1))
        log.free_segment(0, 10)
        log.append(10, PatternPayload(2))
        # Everything allocated exactly once per live byte.
        assert log.bytes_live == 20
        assert log.allocated_chunks == 2

    def test_active_chunk_not_pushed_while_open(self):
        log = make_log(capacity=30, chunk=10)
        log.append(5, PatternPayload(1))  # chunk 0 active, half-full
        log.free_segment(0, 5)
        assert log.free_stack == []  # not fully written: not reusable yet

    def test_free_spanning_chunks(self):
        log = make_log(capacity=30, chunk=10)
        log.append(30, PatternPayload(1))
        log.free_segment(5, 20)  # kills nothing fully... chunk 1 fully dead
        assert log.free_stack == [1]

    def test_over_free_raises(self):
        log = make_log(capacity=30, chunk=10)
        log.append(10, PatternPayload(1))
        log.free_segment(0, 10)
        with pytest.raises(ValueError):
            log.free_segment(0, 10)

    def test_free_unallocated_chunk_raises(self):
        log = make_log(capacity=30, chunk=10)
        log.append(10, PatternPayload(1))
        with pytest.raises(ValueError):
            log.free_segment(25, 5)


def make_writer(caps=(20, 30), chunk=10, rank=0, device_caps=None):
    """A 2-cache-tier + PFS writer on in-memory stores."""
    engine = Engine()
    store = FileStore()
    tiers = [StorageTier.DRAM, StorageTier.SHARED_BB, StorageTier.PFS]
    capacities = list(caps) + [math.inf]
    logs = []
    for i, (tier, cap) in enumerate(zip(tiers, capacities)):
        device = None
        if device_caps and i < len(device_caps) and device_caps[i] is not None:
            device = StorageDevice(engine, f"d{i}", device_caps[i], 1.0)
        logs.append(LogFile(tier, cap, chunk,
                            store.create(f"/{rank}/{tier.value}"),
                            device=device))
    vas = VirtualAddressSpace(tiers, capacities)
    return DHPWriter(rank, vas, logs)


class TestDHPWriter:
    def test_fits_in_first_layer(self):
        w = make_writer()
        segs = w.write(0, 15, PatternPayload(1))
        assert len(segs) == 1
        assert segs[0].tier is StorageTier.DRAM
        assert segs[0].va == 0

    def test_spill_across_layers_matches_fig2(self):
        """The Fig. 2 scenario: 8 unit segments, layer caps 2 and 3 -> 2
        in node-local, 3 in shared BB, 3 on the PFS."""
        w = make_writer(caps=(2, 3), chunk=1)
        placed = []
        for i in range(8):
            placed.extend(w.write(i, 1, PatternPayload(i)))
        tiers = [s.tier for s in placed]
        assert tiers == ([StorageTier.DRAM] * 2
                         + [StorageTier.SHARED_BB] * 3
                         + [StorageTier.PFS] * 3)
        # D4 (index 3): physical address 1 in the BB log, VA 3 (Eq. 1).
        assert placed[3].physical_address == 1
        assert placed[3].va == 3

    def test_single_write_spans_layers(self):
        w = make_writer(caps=(20, 30))
        segs = w.write(0, 60, PatternPayload(1))
        by_tier = {}
        for s in segs:
            by_tier[s.tier] = by_tier.get(s.tier, 0) + s.length
        assert by_tier[StorageTier.DRAM] == 20
        assert by_tier[StorageTier.SHARED_BB] == 30
        assert by_tier[StorageTier.PFS] == 10

    def test_conservation(self):
        w = make_writer()
        segs = w.write(0, 45, PatternPayload(1))
        assert sum(s.length for s in segs) == 45
        assert sum(w.bytes_per_layer()) == 45

    def test_segments_cover_logical_range_in_order(self):
        w = make_writer(caps=(7, 11), chunk=5)
        segs = w.write(100, 30, PatternPayload(1))
        cursor = 100
        for s in segs:
            assert s.logical_offset == cursor
            cursor += s.length
        assert cursor == 130

    def test_va_resolves_back_to_segment(self):
        w = make_writer()
        segs = w.write(0, 45, PatternPayload(1))
        for s in segs:
            layer, addr = w.vas.resolve(s.va)
            assert layer == s.layer
            assert addr == s.physical_address

    def test_spill_level_is_sticky(self):
        w = make_writer(caps=(20, 30))
        w.write(0, 25, PatternPayload(1))  # spills into layer 1
        segs = w.write(25, 5, PatternPayload(2))
        assert all(s.tier is not StorageTier.DRAM for s in segs)

    def test_free_releases_space(self):
        w = make_writer(caps=(20, 30), chunk=10)
        segs = w.write(0, 20, PatternPayload(1))
        for s in segs:
            w.free(s)
        assert w.bytes_per_layer()[0] == 0

    def test_data_readable_via_va(self):
        w = make_writer(caps=(20, 30), chunk=10)
        segs = w.write(0, 45, PatternPayload(7))
        got = bytearray(45)
        for s in segs:
            layer, addr = w.vas.resolve(s.va)
            data = w.logs[layer].sim_file.read_bytes(int(addr), s.length)
            got[s.logical_offset:s.logical_offset + s.length] = data
        assert bytes(got) == PatternPayload(7).materialize(0, 45)

    def test_mismatched_logs_rejected(self):
        w = make_writer()
        with pytest.raises(ValueError):
            DHPWriter(0, w.vas, w.logs[:2])


class TestDHPProperties:
    @given(writes=st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_spill_conservation(self, writes):
        """Bytes in == bytes across all layers, whatever the write sizes."""
        w = make_writer(caps=(50, 70), chunk=8)
        offset = 0
        for length in writes:
            segs = w.write(offset, length, PatternPayload(offset))
            assert sum(s.length for s in segs) == length
            offset += length
        assert sum(w.bytes_per_layer()) == offset

    @given(writes=st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=15))
    @settings(max_examples=200, deadline=None)
    def test_content_reassembles(self, writes):
        """Reading back through VA resolution yields the exact bytes."""
        w = make_writer(caps=(50, 70), chunk=8)
        offset = 0
        all_segs = []
        for length in writes:
            all_segs.extend(w.write(offset, length, PatternPayload(3),
                                    payload_offset=offset))
            offset += length
        got = bytearray(offset)
        for s in all_segs:
            layer, addr = w.vas.resolve(s.va)
            data = w.logs[layer].sim_file.read_bytes(int(addr), s.length)
            got[s.logical_offset:s.logical_offset + s.length] = data
        assert bytes(got) == PatternPayload(3).materialize(0, offset)

    @given(chunk=st.integers(min_value=1, max_value=16),
           n=st.integers(min_value=1, max_value=60))
    @settings(max_examples=200, deadline=None)
    def test_free_then_rewrite_never_double_allocates(self, chunk, n):
        w = make_writer(caps=(64, 64), chunk=chunk)
        segs = w.write(0, n, PatternPayload(1))
        for s in segs:
            w.free(s)
        w.write(0, n, PatternPayload(2))
        log0 = w.logs[0]
        for cid in range(log0.allocated_chunks):
            c = log0.chunk(cid)
            assert c.live <= log0.chunk_size + 1e-9
