"""Unit tests for the workload generators (hdf5sim, iobench, vpic, bdcats)."""

import pytest

from repro import MachineSpec, Simulation, UniviStorConfig
from repro.units import KiB, MiB
from repro.workloads import (
    BdCatsIO,
    DatasetSpec,
    Hdf5Layout,
    MicroBench,
    VPIC_BYTES_PER_PROC_PER_STEP,
    VpicIO,
)
from repro.workloads.hdf5sim import METADATA_REGION_BYTES
from repro.workloads.vpic import VPIC_PROPERTIES


class TestHdf5Layout:
    def test_vpic_sizes_match_paper(self):
        """§III-A: 8 properties x 8 Mi particles x 4 B = 256 MiB/proc."""
        assert VPIC_BYTES_PER_PROC_PER_STEP == 256 * MiB
        assert len(VPIC_PROPERTIES) == 8

    def test_dataset_offsets_sequential(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 4),
                             DatasetSpec("b", 200, 4)])
        assert layout.dataset_offset("a") == METADATA_REGION_BYTES
        assert layout.dataset_offset("b") == METADATA_REGION_BYTES + 400
        assert layout.file_size == METADATA_REGION_BYTES + 400 + 800

    def test_block_ranges_disjoint_and_contiguous(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 4)])
        ranges = [layout.block_range("a", r) for r in range(4)]
        for (o1, l1), (o2, _l2) in zip(ranges, ranges[1:]):
            assert o1 + l1 == o2

    def test_block_range_bounds(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 4)])
        with pytest.raises(ValueError):
            layout.block_range("a", 4)
        with pytest.raises(KeyError):
            layout.block_range("nope", 0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Hdf5Layout([DatasetSpec("a", 1, 1), DatasetSpec("a", 1, 1)])

    def test_write_requests_cover_dataset(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 4)])
        reqs = layout.write_requests("a")
        assert len(reqs) == 4
        assert sum(r.length for r in reqs) == 400
        assert all(r.payload is not None for r in reqs)

    def test_read_requests_remap_readers(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 4)])
        reqs = layout.read_requests("a", reader_of_block=lambda b: b // 2)
        assert [r.rank for r in reqs] == [0, 0, 1, 1]

    def test_expected_payload_matches_write(self):
        layout = Hdf5Layout([DatasetSpec("a", 100, 2)])
        req = layout.write_requests("a", payload_seed_base=7)[1]
        expected = layout.expected_block_payload("a", 1, 7)
        assert req.payload.same_source(expected)


def make_sim(nodes=2):
    sim = Simulation(MachineSpec.small_test(nodes=nodes))
    sim.install_univistor(UniviStorConfig.dram_only())
    return sim


class TestMicroBench:
    def test_write_then_read_verifies(self):
        sim = make_sim()
        comm = sim.comm("iobench", 8, procs_per_node=4)
        bench = MicroBench(sim, comm, "/pfs/m.h5", "univistor",
                           bytes_per_proc=128 * KiB)

        def app():
            yield from bench.write_phase()
            yield from bench.read_phase(verify=True)

        sim.run_to_completion(app())
        assert sim.telemetry.total_bytes(op="write") == pytest.approx(
            8 * 128 * KiB)

    def test_verify_catches_corruption(self):
        sim = make_sim()
        comm = sim.comm("iobench", 4, procs_per_node=2)
        bench = MicroBench(sim, comm, "/pfs/m.h5", "univistor",
                           bytes_per_proc=64 * KiB)

        def app():
            yield from bench.write_phase()
            # Sabotage: overwrite rank 2's block with wrong data.
            from repro import IORequest, PatternPayload
            fh = yield from sim.open(comm, "/pfs/m.h5", "w",
                                     fstype="univistor")
            offset, length = bench.layout.block_range("data", 2)
            yield from fh.write_at_all([
                IORequest(2, offset, length, PatternPayload(666))])
            yield from fh.close()
            yield from bench.read_phase(verify=True)

        with pytest.raises(AssertionError, match="mismatch"):
            sim.run_to_completion(app())


class TestVpicIO:
    def test_checkpoint_writes_all_properties(self):
        sim = make_sim()
        comm = sim.comm("vpic", 4, procs_per_node=2)
        vpic = VpicIO(sim, comm, "univistor", steps=1, compute_seconds=0,
                      particles_per_proc=1024)
        sim.run_to_completion(vpic.run(sync_last=False))
        session = sim.univistor.session(vpic.step_path(0))
        total = sum(session.cached_bytes_per_tier().values())
        assert total == pytest.approx(4 * 8 * 1024 * 4)

    def test_each_step_gets_own_file(self):
        sim = make_sim()
        comm = sim.comm("vpic", 4, procs_per_node=2)
        vpic = VpicIO(sim, comm, "univistor", steps=3, compute_seconds=0,
                      particles_per_proc=256)
        sim.run_to_completion(vpic.run(sync_last=False))
        for step in range(3):
            assert sim.univistor.has_session(vpic.step_path(step))

    def test_compute_phases_advance_time(self):
        sim = make_sim()
        comm = sim.comm("vpic", 4, procs_per_node=2)
        vpic = VpicIO(sim, comm, "univistor", steps=2, compute_seconds=60,
                      particles_per_proc=256)
        sim.run_to_completion(vpic.run(sync_last=False))
        assert sim.now >= 120.0

    def test_measured_io_time_excludes_compute(self):
        sim = make_sim()
        comm = sim.comm("vpic", 4, procs_per_node=2)
        vpic = VpicIO(sim, comm, "univistor", steps=2, compute_seconds=60,
                      particles_per_proc=256)
        sim.run_to_completion(vpic.run(sync_last=True))
        assert vpic.measured_io_time() < 10.0

    def test_invalid_steps(self):
        sim = make_sim()
        comm = sim.comm("vpic", 2, procs_per_node=1)
        with pytest.raises(ValueError):
            VpicIO(sim, comm, "univistor", steps=0)


class TestBdCatsIO:
    def make_pair(self, writer_ranks=4, reader_ranks=2, steps=2):
        sim = make_sim()
        wcomm = sim.comm("vpic", writer_ranks, procs_per_node=2)
        rcomm = sim.comm("bdcats", reader_ranks, procs_per_node=1)
        vpic = VpicIO(sim, wcomm, "univistor", steps=steps,
                      compute_seconds=0, particles_per_proc=1024)
        bdcats = BdCatsIO(sim, rcomm, vpic, "univistor")
        return sim, vpic, bdcats

    def test_reads_all_data_and_verifies(self):
        sim, vpic, bdcats = self.make_pair()

        def workflow():
            yield from vpic.run(sync_last=False)
            yield from bdcats.run(verify_sample=True)

        sim.run_to_completion(workflow())
        reads = sim.telemetry.select(op="read", app="bdcats")
        per_step = 4 * 8 * 1024 * 4  # writers x props x particles x 4B
        assert sum(r.nbytes for r in reads) == pytest.approx(2 * per_step)

    def test_reader_blocks_coalesce(self):
        sim, vpic, bdcats = self.make_pair(writer_ranks=4, reader_ranks=2)
        reqs = bdcats._read_requests(0, "x")
        # 2 readers x 2 writer-blocks each, coalesced into one request.
        assert len(reqs) == 2
        assert reqs[0].length == 2 * vpic.bytes_per_property

    def test_verify_catches_stale_data(self):
        sim, vpic, bdcats = self.make_pair(steps=1)

        def workflow():
            # Read *before* the writer has produced anything -> the data
            # simply isn't there; with a wrong-but-present file the
            # verifier must catch the mismatch instead.
            yield from vpic.run(sync_last=False)
            # Corrupt one property region.
            from repro import IORequest, PatternPayload
            fh = yield from sim.open(vpic.comm, vpic.step_path(0), "w",
                                     fstype="univistor")
            layout = vpic.layout(0)
            offset, length = layout.block_range("x", 0)
            yield from fh.write_at_all([
                IORequest(0, offset, length, PatternPayload(424242))])
            yield from fh.close()
            yield from bdcats.run(verify_sample=True)

        with pytest.raises(AssertionError, match="stale or wrong"):
            sim.run_to_completion(workflow())
