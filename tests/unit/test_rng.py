"""Unit tests for deterministic RNG streams."""

from repro.sim import StreamRNG


class TestStreamRNG:
    def test_same_seed_same_stream(self):
        a = StreamRNG(5).stream("x").random(10)
        b = StreamRNG(5).stream("x").random(10)
        assert (a == b).all()

    def test_different_names_independent(self):
        rng = StreamRNG(5)
        a = rng.stream("x").random(10)
        b = rng.stream("y").random(10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = StreamRNG(1).stream("x").random(10)
        b = StreamRNG(2).stream("x").random(10)
        assert not (a == b).all()

    def test_stream_cached(self):
        rng = StreamRNG(0)
        assert rng.stream("x") is rng.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        rng1 = StreamRNG(9)
        s = rng1.stream("a")
        first = s.random(5)
        rng2 = StreamRNG(9)
        rng2.stream("b").random(100)  # interleaved unrelated consumer
        second = rng2.stream("a").random(5)
        assert (first == second).all()

    def test_spawn_deterministic_and_independent(self):
        child1 = StreamRNG(3).spawn("node0")
        child2 = StreamRNG(3).spawn("node0")
        other = StreamRNG(3).spawn("node1")
        a = child1.stream("s").random(5)
        assert (a == child2.stream("s").random(5)).all()
        assert not (a == other.stream("s").random(5)).all()
