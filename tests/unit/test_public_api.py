"""The stable public surface of the top-level ``repro`` package."""

import warnings

import pytest

import repro
from repro import MachineSpec, Simulation, UniviStorConfig
from repro.baselines.data_elevator import DataElevatorConfig

PUBLIC = [
    "FaultSpec",
    "File",
    "IORequest",
    "MachineSpec",
    "PatternPayload",
    "Simulation",
    "Table",
    "Telemetry",
    "UniviStorConfig",
    "WorkloadSpec",
    "run_experiment",
    "run_trace",
]


class TestPublicSurface:
    def test_all_is_exactly_the_documented_surface(self):
        assert sorted(repro.__all__) == PUBLIC

    def test_star_import_yields_exactly_all(self):
        ns = {}
        exec("from repro import *", ns)
        imported = sorted(k for k in ns if not k.startswith("__"))
        assert imported == sorted(repro.__all__)

    def test_every_public_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_moved_symbol_error_names_new_home(self):
        with pytest.raises(AttributeError, match="from repro.core import "
                                                 "StorageTier"):
            repro.StorageTier
        with pytest.raises(AttributeError, match="from repro.sim import "
                                                 "Engine"):
            repro.Engine
        with pytest.raises(AttributeError, match="from repro.analysis import "
                                                 "fmt_markdown_table"):
            repro.fmt_markdown_table

    def test_unknown_attribute_plain_error(self):
        with pytest.raises(AttributeError, match="no attribute 'bogus'"):
            repro.bogus


class TestConfigKeywordOnly:
    def test_positional_construction_rejected(self):
        with pytest.raises(TypeError):
            UniviStorConfig(())

    def test_keyword_construction_and_variants_work(self):
        cfg = UniviStorConfig(servers_per_node=4, adaptive_striping=False)
        assert cfg.servers_per_node == 4
        assert not cfg.adaptive_striping
        assert UniviStorConfig.dram_only().cache_tiers


class TestInstallDataElevatorForms:
    def _sim(self):
        return Simulation(MachineSpec.cori_haswell(nodes=2))

    def test_config_object_form_no_warning(self):
        sim = self._sim()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            de = sim.install_data_elevator(
                DataElevatorConfig(servers_per_node=3))
        assert de.servers_per_node == 3
        assert de.config.servers_per_node == 3

    def test_default_form_no_warning(self):
        sim = self._sim()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            de = sim.install_data_elevator()
        assert de.servers_per_node == 2

    def test_positional_int_form_deprecated_but_works(self):
        sim = self._sim()
        with pytest.warns(DeprecationWarning, match="DataElevatorConfig"):
            de = sim.install_data_elevator(3)
        assert de.servers_per_node == 3

    def test_keyword_int_form_deprecated_but_works(self):
        sim = self._sim()
        with pytest.warns(DeprecationWarning, match="DataElevatorConfig"):
            de = sim.install_data_elevator(servers_per_node=3)
        assert de.servers_per_node == 3

    def test_both_forms_together_rejected(self):
        sim = self._sim()
        with pytest.raises(TypeError, match="not both"):
            sim.install_data_elevator(DataElevatorConfig(),
                                      servers_per_node=3)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DataElevatorConfig(servers_per_node=0)


class TestSignatureSnapshots:
    """Pinned call signatures for the stable surface.

    A drifted snapshot means a breaking API change: either restore the
    signature or update this test *and* docs/API.md together.
    """

    def test_run_trace_signature(self):
        import inspect
        assert str(inspect.signature(repro.run_trace)) == (
            "(trace: 'Union[JobTrace, str, os.PathLike]', *, "
            "spec: 'Optional[WorkloadSpec]' = None) -> 'TraceResult'")

    def test_run_experiment_signature(self):
        import inspect
        assert str(inspect.signature(repro.run_experiment)) == (
            "(name: 'str', config: 'Optional[Mapping]' = None)")

    def test_workload_spec_fields(self):
        import dataclasses
        assert tuple(f.name for f in
                     dataclasses.fields(repro.WorkloadSpec)) == (
            "machine", "nodes", "procs_per_node", "system", "config",
            "chunk_size", "strategy", "strategy_params", "bb_pools",
            "bb_fraction", "max_concurrent", "jobs", "mix", "arrival_rate",
            "mean_mb_per_rank", "max_ranks", "compute_seconds", "seed",
            "fault_spec", "fault_seed", "verify_reads")

    def test_workload_spec_is_kw_only(self):
        with pytest.raises(TypeError):
            repro.WorkloadSpec("small")

    def test_univistor_config_field_superset(self):
        """Config fields may grow (defaults keep old calls working) but
        the existing names must never disappear or reorder."""
        import dataclasses
        names = tuple(f.name for f in
                      dataclasses.fields(repro.UniviStorConfig))
        for required in ("servers_per_node", "chunk_size", "cache_tiers",
                         "flush_enabled", "adaptive_striping",
                         "metadata_replication", "bb_quota_enforced"):
            assert required in names
