"""Tests for the adaptive-placement advisor (§V future work)."""


from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.core import StorageTier
from repro.core.advisor import PlacementAdvisor, StreamStats, stream_key
from repro.units import KiB


class TestStreamKey:
    def test_strips_step_digits(self):
        assert stream_key("/pfs/vpic_step3.h5") == "/pfs/vpic_step#.h#"
        assert (stream_key("/pfs/vpic_step3.h5")
                == stream_key("/pfs/vpic_step12.h5"))

    def test_distinct_streams_distinct_keys(self):
        assert stream_key("/a/ckpt1") != stream_key("/b/ckpt1")


class TestAdvisorLogic:
    TIERS = (StorageTier.DRAM, StorageTier.SHARED_BB)

    def test_no_history_keeps_configured_order(self):
        advisor = PlacementAdvisor()
        assert advisor.advise_tiers("/f0", self.TIERS) == self.TIERS

    def test_write_once_stream_demotes_local_tiers(self):
        advisor = PlacementAdvisor()
        advisor.note_write_close("/ckpt0", 100)
        advisor.note_write_close("/ckpt1", 100)
        advised = advisor.advise_tiers("/ckpt2", self.TIERS)
        assert advised == (StorageTier.SHARED_BB, StorageTier.DRAM)

    def test_single_file_history_not_enough(self):
        advisor = PlacementAdvisor()
        advisor.note_write_close("/ckpt0", 100)
        assert advisor.advise_tiers("/ckpt1", self.TIERS) == self.TIERS

    def test_cache_read_keeps_dram_first(self):
        advisor = PlacementAdvisor()
        for i in range(3):
            advisor.note_write_close(f"/wf{i}", 100)
            advisor.note_cache_read(f"/wf{i}", 100)
        assert advisor.advise_tiers("/wf3", self.TIERS) == self.TIERS

    def test_read_counted_once_per_file(self):
        advisor = PlacementAdvisor()
        advisor.note_write_close("/f0", 100)
        advisor.note_cache_read("/f0", 10)
        advisor.note_cache_read("/f0", 10)
        stats = advisor.stats_for("/f0")
        assert stats.files_cache_read == 1
        assert stats.bytes_cache_read == 20

    def test_stats_properties(self):
        s = StreamStats(files_written=4, files_cache_read=1)
        assert s.read_ratio == 0.25
        assert not s.looks_write_once
        assert StreamStats(files_written=2).looks_write_once
        assert not StreamStats().looks_write_once

    def test_describe_snapshot(self):
        advisor = PlacementAdvisor()
        advisor.note_write_close("/ckpt0", 100)
        advisor.note_write_close("/ckpt1", 100)
        snap = advisor.describe()
        assert snap[stream_key("/ckpt0")]["write_once"]


class TestAdaptivePlacementEndToEnd:
    def run_stream(self, adaptive, read_back=False, files=4):
        config = UniviStorConfig.dram_bb(adaptive_placement=adaptive,
                                         flush_enabled=False)
        sim = Simulation(MachineSpec.small_test(nodes=2))
        sim.install_univistor(config)
        comm = sim.comm("app", 4, procs_per_node=2)
        block = int(64 * KiB)

        def app():
            for i in range(files):
                path = f"/pfs/ckpt{i}.h5"
                fh = yield from sim.open(comm, path, "w",
                                         fstype="univistor")
                yield from fh.write_at_all([
                    IORequest.contiguous_block(r, block, PatternPayload(r))
                    for r in range(4)])
                yield from fh.close()
                if read_back:
                    fh2 = yield from sim.open(comm, path, "r",
                                              fstype="univistor")
                    yield from fh2.read_at_all([
                        IORequest(r, r * block, block) for r in range(4)])
                    yield from fh2.close()
        sim.run_to_completion(app())
        return sim

    def tier_of_file(self, sim, path):
        session = sim.univistor.session(path)
        tiers = {t for t, n in session.cached_bytes_per_tier().items()
                 if n > 0}
        return tiers

    def test_write_once_stream_migrates_off_dram(self):
        sim = self.run_stream(adaptive=True, read_back=False)
        # First two files establish the pattern on DRAM; later ones go BB.
        assert StorageTier.DRAM in self.tier_of_file(sim, "/pfs/ckpt0.h5")
        assert self.tier_of_file(sim, "/pfs/ckpt3.h5") == {
            StorageTier.SHARED_BB}

    def test_reread_stream_stays_on_dram(self):
        sim = self.run_stream(adaptive=True, read_back=True)
        assert StorageTier.DRAM in self.tier_of_file(sim, "/pfs/ckpt3.h5")

    def test_disabled_never_migrates(self):
        sim = self.run_stream(adaptive=False, read_back=False)
        assert StorageTier.DRAM in self.tier_of_file(sim, "/pfs/ckpt3.h5")

    def test_correctness_preserved_under_adaptation(self):
        sim = self.run_stream(adaptive=True, read_back=False)
        comm = sim.comm("reader", 2, procs_per_node=1)
        block = int(64 * KiB)

        def app():
            fh = yield from sim.open(comm, "/pfs/ckpt3.h5", "r",
                                     fstype="univistor")
            data = yield from fh.read_at_all([IORequest(0, 0, 4 * block)])
            yield from fh.close()
            return data

        data = sim.run_to_completion(app())
        blob = b"".join(e.materialize() for e in data[0])
        expected = b"".join(PatternPayload(r).materialize(0, block)
                            for r in range(4))
        assert blob == expected
