"""Unit + property tests for virtual addressing (Eq. 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StorageTier
from repro.core.va import VirtualAddressSpace

TIERS3 = [StorageTier.DRAM, StorageTier.SHARED_BB, StorageTier.PFS]


class TestVirtualAddressSpace:
    def test_paper_example(self):
        """§II-B2's worked example: node-local log capacity 2, shared-BB
        log capacity 3; D4 at physical address 1 in the BB log has VA 3."""
        vas = VirtualAddressSpace(
            [StorageTier.DRAM, StorageTier.SHARED_BB], [2, 3])
        assert vas.va(1, 1) == 3
        assert vas.resolve(3) == (1, 1)

    def test_layer_zero_is_identity(self):
        vas = VirtualAddressSpace(TIERS3, [100, 200, math.inf])
        assert vas.va(0, 42) == 42

    def test_layer_bases_are_prefix_sums(self):
        vas = VirtualAddressSpace(TIERS3, [100, 200, math.inf])
        assert vas.layer_base(0) == 0
        assert vas.layer_base(1) == 100
        assert vas.layer_base(2) == 300

    def test_va_rejects_address_beyond_log(self):
        vas = VirtualAddressSpace(TIERS3, [100, 200, math.inf])
        with pytest.raises(ValueError):
            vas.va(0, 100)
        with pytest.raises(ValueError):
            vas.va(1, 200)

    def test_va_rejects_negative(self):
        vas = VirtualAddressSpace(TIERS3, [100, 200, math.inf])
        with pytest.raises(ValueError):
            vas.va(0, -1)
        with pytest.raises(ValueError):
            vas.resolve(-1)

    def test_resolve_boundaries(self):
        vas = VirtualAddressSpace(TIERS3, [100, 200, math.inf])
        assert vas.resolve(0) == (0, 0)
        assert vas.resolve(99) == (0, 99)
        assert vas.resolve(100) == (1, 0)
        assert vas.resolve(299) == (1, 199)
        assert vas.resolve(300) == (2, 0)

    def test_unbounded_last_layer(self):
        vas = VirtualAddressSpace(TIERS3, [10, 10, math.inf])
        assert vas.va(2, 1e15) == 20 + 1e15
        assert vas.resolve(20 + 1e15) == (2, 1e15)

    def test_unbounded_middle_layer_rejected(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace(TIERS3, [10, math.inf, 10])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace(TIERS3, [10, 10])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace([], [])

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace([StorageTier.DRAM], [0])

    def test_tier_of_layer(self):
        vas = VirtualAddressSpace(TIERS3, [1, 1, math.inf])
        assert vas.tier_of_layer(0) is StorageTier.DRAM
        assert vas.tier_of_layer(2) is StorageTier.PFS
        with pytest.raises(ValueError):
            vas.tier_of_layer(3)


class TestVAProperties:
    @given(caps=st.lists(st.integers(min_value=1, max_value=10 ** 9),
                         min_size=1, max_size=4),
           layer=st.integers(min_value=0, max_value=3),
           frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip(self, caps, layer, frac):
        """resolve() is the exact inverse of va() (Eq. 1 bijectivity)."""
        tiers = [StorageTier.DRAM, StorageTier.LOCAL_SSD,
                 StorageTier.SHARED_BB, StorageTier.PFS][:len(caps)]
        vas = VirtualAddressSpace(tiers, caps)
        layer = layer % len(caps)
        addr = int(frac * caps[layer])
        va = vas.va(layer, addr)
        assert vas.resolve(va) == (layer, addr)

    @given(caps=st.lists(st.integers(min_value=1, max_value=1000),
                         min_size=2, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_vas_are_disjoint_across_layers(self, caps):
        """Distinct (layer, addr) pairs never collide in VA space."""
        tiers = [StorageTier.DRAM, StorageTier.LOCAL_SSD,
                 StorageTier.SHARED_BB, StorageTier.PFS][:len(caps)]
        vas = VirtualAddressSpace(tiers, caps)
        seen = {}
        for layer, cap in enumerate(caps):
            for addr in {0, cap - 1}:
                va = vas.va(layer, addr)
                assert seen.setdefault(va, (layer, addr)) == (layer, addr)
