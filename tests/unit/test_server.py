"""Unit tests for the UniviStor server program (sessions, log plumbing)."""

import math

import pytest

from repro.cluster.spec import MachineSpec
from repro.cluster.topology import Machine
from repro.core.config import StorageTier, UniviStorConfig
from repro.core.server import SERVER_PROGRAM, UniviStorServers
from repro.sim import Engine
from repro.simmpi import Communicator
from repro.units import MiB


def make_system(config=None, nodes=2):
    machine = Machine(Engine(), MachineSpec.small_test(nodes=nodes))
    return machine, UniviStorServers(machine,
                                     config or UniviStorConfig.dram_bb())


class TestDeployment:
    def test_servers_registered_on_every_node(self):
        machine, system = make_system()
        for node in machine.nodes:
            assert node.procs_of(SERVER_PROGRAM) == 2

    def test_total_servers(self):
        machine, system = make_system(nodes=2)
        assert system.total_servers == 4

    def test_custom_servers_per_node(self):
        machine, system = make_system(
            UniviStorConfig.dram_only(servers_per_node=1))
        assert system.total_servers == 2

    def test_bb_config_requires_bb(self):
        engine = Engine()
        spec = MachineSpec.small_test(nodes=1)
        spec = spec.__class__(**{**spec.__dict__, "burst_buffer": None})
        machine = Machine(engine, spec)
        with pytest.raises(ValueError, match="burst buffer"):
            UniviStorServers(machine, UniviStorConfig.bb_only())

    def test_ssd_config_requires_ssd(self):
        machine = Machine(Engine(), MachineSpec.small_test(nodes=1))
        with pytest.raises(ValueError, match="SSD"):
            UniviStorServers(machine, UniviStorConfig(
                cache_tiers=(StorageTier.LOCAL_SSD,)))

    def test_connect_disconnect(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        engine = machine.engine

        def proc():
            yield system.connect(comm)
            assert system.connected_clients["app"] == 4
            yield system.disconnect(comm)

        engine.run_process(proc())
        assert "app" not in system.connected_clients


class TestSessions:
    def test_fid_stable_per_path(self):
        _, system = make_system()
        assert system.fid_of("/a") == system.fid_of("/a")
        assert system.fid_of("/a") != system.fid_of("/b")

    def test_session_create_and_lookup(self):
        _, system = make_system()
        s = system.session("/a")
        assert system.session("/a") is s
        assert system.has_session("/a")
        with pytest.raises(FileNotFoundError):
            system.session("/missing", create=False)

    def test_writer_created_lazily_with_all_tiers(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        session = system.session("/f")
        writer = session.writer_for(comm, 1)
        tiers = [log.tier for log in writer.logs]
        assert tiers == [StorageTier.DRAM, StorageTier.SHARED_BB,
                         StorageTier.PFS]
        assert writer.logs[-1].capacity == math.inf
        # The same writer object comes back for the same rank.
        assert session.writer_for(comm, 1) is writer

    def test_log_capacity_follows_cp_rule_node_local(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        writer = system.session("/f").writer_for(comm, 0)
        dram_log = writer.logs[0]
        node = comm.node_of_rank(0)
        expected = node.dram.capacity / 2  # 2 procs on the node
        assert dram_log.capacity == pytest.approx(expected)

    def test_log_capacity_follows_cp_rule_shared(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        writer = system.session("/f").writer_for(comm, 0)
        bb_log = writer.logs[1]
        expected = machine.burst_buffer.device.capacity / 4  # all clients
        assert bb_log.capacity == pytest.approx(expected)

    def test_log_capacity_never_below_chunk(self):
        machine, system = make_system(
            UniviStorConfig.dram_bb(chunk_size=64 * MiB))
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        # Shrink the device so c/p < chunk.
        machine.nodes[0].dram.capacity = 32 * MiB
        writer = system.session("/f").writer_for(comm, 0)
        assert writer.logs[0].capacity >= 64 * MiB

    def test_log_files_created_in_correct_stores(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 4, procs_per_node=2)
        session = system.session("/f")
        session.writer_for(comm, 0)
        node0 = machine.nodes[0]
        fid = session.fid
        assert node0.files.exists(f"/univistor/{fid}/0/dram.log")
        assert machine.bb_files.exists(f"/univistor/{fid}/0/shared_bb.log")
        assert machine.pfs_files.exists(f"/univistor/{fid}/0/pfs.log")

    def test_node_of_proc_requires_writer(self):
        _, system = make_system()
        session = system.session("/f")
        with pytest.raises(RuntimeError):
            session.node_of_proc(0)

    def test_cached_bytes_empty_initially(self):
        machine, system = make_system()
        comm = Communicator(machine, "app", 2, procs_per_node=1)
        session = system.session("/f")
        session.writer_for(comm, 0)
        assert sum(session.cached_bytes_per_tier().values()) == 0

    def test_delete_missing_file_is_noop(self):
        _, system = make_system()
        system.delete_file("/never-existed")  # must not raise
