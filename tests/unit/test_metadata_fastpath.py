"""Metadata fast path: batched inserts, coalescing, in-store compaction
and journal checkpoint + truncation (docs/MODEL.md §9)."""

import pytest

from repro.core.config import StorageTier
from repro.core.metadata import (MetadataRecord, MetadataService,
                                 MetadataUnavailableError, coalesce_records)

KB = 1024


def rec(offset, length, proc=0, va=None, fid=1, tier=StorageTier.DRAM,
        node=0):
    return MetadataRecord(fid=fid, offset=offset, length=length,
                          proc_id=proc,
                          va=float(offset) if va is None else float(va),
                          tier=tier, node_id=node)


class TestCoalesceRecords:
    def test_contiguous_run_collapses(self):
        records = [rec(i * 4 * KB, 4 * KB) for i in range(8)]
        out, merges = coalesce_records(records)
        assert merges == 7
        assert len(out) == 1
        assert out[0].offset == 0 and out[0].length == 32 * KB
        assert out[0].va == 0.0

    def test_different_procs_never_merge(self):
        out, merges = coalesce_records([rec(0, 4 * KB, proc=0),
                                        rec(4 * KB, 4 * KB, proc=1)])
        assert merges == 0 and len(out) == 2

    def test_va_gap_never_merges(self):
        # Offset-contiguous but the virtual addresses jump: merging would
        # resolve the second half to the wrong log bytes.
        out, merges = coalesce_records([rec(0, 4 * KB, va=0),
                                        rec(4 * KB, 4 * KB, va=64 * KB)])
        assert merges == 0 and len(out) == 2

    def test_tier_change_never_merges(self):
        # Contiguous VAs can straddle a layer boundary when a log fills
        # exactly to capacity — the tier guard must refuse the merge.
        out, merges = coalesce_records([
            rec(0, 4 * KB, tier=StorageTier.DRAM),
            rec(4 * KB, 4 * KB, tier=StorageTier.SHARED_BB, node=None)])
        assert merges == 0 and len(out) == 2

    def test_only_adjacent_pairs_merge(self):
        # An intervening record from another proc breaks the run even if
        # the outer two are contiguous with each other's far ends.
        records = [rec(0, 4 * KB, proc=0), rec(8 * KB, 4 * KB, proc=1),
                   rec(4 * KB, 4 * KB, proc=0)]
        out, merges = coalesce_records(records)
        assert merges == 0 and len(out) == 3


class TestInsertCompaction:
    def test_merge_on_insert_bounds_store(self):
        md = MetadataService(n_servers=2, range_size=1024 * KB)
        for i in range(64):
            md.insert(rec(i * 4 * KB, 4 * KB))
        # 256 KB of contiguous same-writer data in one range: one record.
        assert md.record_count == 1
        found, _ = md.lookup(1, 0, 256 * KB)
        assert len(found) == 1
        assert found[0].offset == 0 and found[0].length == 256 * KB

    def test_merge_never_crosses_range_boundary(self):
        md = MetadataService(n_servers=1, range_size=64 * KB)
        md.insert(rec(0, 128 * KB))
        # One server owns both ranges: mergeable but range-partitioned.
        assert md.record_count == 2
        for piece in md.records_of(1):
            first = int(piece.offset // md.range_size)
            last = int((piece.end - 1) // md.range_size)
            assert first == last

    def test_compaction_off_preserves_pieces(self):
        md = MetadataService(n_servers=2, range_size=1024 * KB,
                             compaction=False)
        for i in range(8):
            md.insert(rec(i * 4 * KB, 4 * KB))
        assert md.record_count == 8

    def test_compact_sweep(self):
        md = MetadataService(n_servers=2, range_size=1024 * KB,
                             compaction=False)
        for i in range(8):
            md.insert(rec(i * 4 * KB, 4 * KB))
        merged = md.compact()
        assert merged == 7
        assert md.record_count == 1
        found, _ = md.lookup(1, 0, 32 * KB)
        assert sum(r.length for r in found) == 32 * KB

    def test_compacted_lookup_matches_uncompacted(self):
        plain = MetadataService(n_servers=4, range_size=64 * KB,
                                compaction=False)
        fast = MetadataService(n_servers=4, range_size=64 * KB)
        writes = [(0, 16 * KB, 0), (16 * KB, 16 * KB, 0),
                  (32 * KB, 32 * KB, 1), (8 * KB, 16 * KB, 1),
                  (120 * KB, 16 * KB, 0), (64 * KB, 56 * KB, 0)]
        for off, ln, proc in writes:
            plain.insert(rec(off, ln, proc=proc))
            fast.insert(rec(off, ln, proc=proc))
        for off in range(0, 136 * KB, 8 * KB):
            a, _ = plain.lookup(1, off, 16 * KB)
            b, _ = fast.lookup(1, off, 16 * KB)
            # Same bytes from the same sources, possibly fewer records.
            assert self._bytemap(a) == self._bytemap(b)

    @staticmethod
    def _bytemap(records):
        out = {}
        for r in records:
            for i in range(0, int(r.length), KB):
                out[int(r.offset) + i] = (r.proc_id, r.va + i, r.tier)
        return out


class TestInsertManyBatching:
    def test_touched_set_deduped_and_journal_batched(self):
        md = MetadataService(n_servers=2, range_size=64 * KB,
                             replication=2)
        records = [rec(i * 64 * KB, 64 * KB) for i in range(4)]
        stats = {}
        touched = md.insert_many(records, stats=stats)
        # 4 ranges x full replica set over 2 servers -> both, once each.
        assert touched == {0, 1}
        assert stats["batches"] == 4 and stats["pieces"] == 4
        for range_index in range(4):
            assert len(md._journal[range_index]) == 1

    def test_coalesce_before_journal_append(self):
        md = MetadataService(n_servers=2, range_size=1024 * KB)
        records = [rec(i * 4 * KB, 4 * KB) for i in range(8)]
        stats = {}
        md.insert_many(records, coalesce=True, stats=stats)
        assert stats["coalesced"] == 7
        assert len(md._journal[0]) == 1  # one journaled piece, not 8

    def test_batched_equals_sequential(self):
        a = MetadataService(n_servers=4, range_size=64 * KB, replication=2)
        b = MetadataService(n_servers=4, range_size=64 * KB, replication=2)
        records = [rec(0, 96 * KB, proc=0), rec(96 * KB, 32 * KB, proc=1),
                   rec(16 * KB, 48 * KB, proc=1)]
        touched_a = a.insert_many(records)
        touched_b = set()
        for r in records:
            touched_b |= b.insert(r)
        assert touched_a == touched_b
        assert a.records_of(1) == b.records_of(1)
        assert a.server_record_counts() == b.server_record_counts()

    def test_dead_range_rejects_batch_like_sequential(self):
        md = MetadataService(n_servers=2, range_size=64 * KB)
        md.fail_server(1)  # range 1 (odd ranges) unavailable
        with pytest.raises(MetadataUnavailableError):
            md.insert_many([rec(0, 128 * KB)])
        # The piece in the live range stuck (legacy partial-apply).
        found, _ = md.lookup(1, 0, 64 * KB)
        assert sum(r.length for r in found) == 64 * KB


class TestJournalCheckpoint:
    def make(self, **kw):
        kw.setdefault("n_servers", 2)
        kw.setdefault("range_size", 64 * KB)
        kw.setdefault("replication", 2)
        kw.setdefault("checkpoint_threshold", 4)
        return MetadataService(**kw)

    def test_truncation_fires_and_bounds_journal(self):
        md = self.make()
        for i in range(32):
            md.insert(rec(i * 2 * KB, 2 * KB, va=i * 2 * KB))
        assert md.checkpoints_taken > 0
        assert md.journal_entries_truncated > 0
        for range_index, entries in md._journal.items():
            # Contiguous same-writer stream: the checkpoint compacts to
            # one record, so replay cost stays bounded at threshold-ish
            # instead of growing with the 32-insert history.
            assert len(entries) < 4  # live suffix below the threshold
            assert len(md.journal_records(range_index)) <= 4 + len(entries)

    def test_journal_keys_survive_truncation(self):
        # Range ownership is discovered by iterating journal keys; a
        # truncated range must keep its (emptied) key.
        md = self.make()
        for i in range(8):
            md.insert(rec(i * 2 * KB, 2 * KB, proc=i % 2, va=i * 2 * KB))
        assert md.checkpoints_taken > 0
        assert 0 in md._journal

    def test_no_truncation_with_dead_replica(self):
        md = self.make()
        md.insert(rec(0, 2 * KB))
        md.fail_server(1)
        before = md.checkpoints_taken
        for i in range(1, 8):
            md.insert(rec(i * 2 * KB, 2 * KB, va=i * 2 * KB))
        # Server 1 never acked: the range's journal must stay complete.
        assert md.checkpoints_taken == before
        assert len(md._journal[0]) == 8

    def test_replay_after_truncation_rebuilds_range(self):
        md = self.make(n_servers=4)
        for i in range(16):
            md.insert(rec(i * 2 * KB, 2 * KB, proc=i % 2, va=i * 2 * KB))
        assert md.checkpoints_taken > 0
        expect = md.records_of(1)
        expect_map = [(r.offset, r.length, r.proc_id, r.va) for r in expect]
        md.fail_server(0)
        md.recover_server(0)
        got = [(r.offset, r.length, r.proc_id, r.va)
               for r in md.records_of(1)]
        assert got == expect_map
        # Every range readable again.
        found, _ = md.lookup(1, 0, 32 * KB)
        assert sum(r.length for r in found) == 32 * KB

    def test_replay_counts_shrink(self):
        # The point of the ROADMAP item: takeover replay cost stops
        # growing with session lifetime.
        bounded = self.make()
        unbounded = self.make(checkpoint_threshold=0)
        for i in range(64):
            r = rec(i * KB, KB, va=i * KB)
            bounded.insert(r)
            unbounded.insert(r)
        assert (len(bounded.journal_records(0))
                < len(unbounded.journal_records(0)))

    def test_delete_file_scrubs_checkpoints(self):
        md = self.make()
        for i in range(8):
            md.insert(rec(i * 2 * KB, 2 * KB, va=i * 2 * KB))
        assert md.checkpoints_taken > 0
        md.delete_file(1)
        assert md.record_count == 0
        for range_index in list(md._journal) + list(md._checkpoints):
            assert all(p.fid != 1 for p in md.journal_records(range_index))
