"""Tests for the resilience extension (§V future work)."""

import pytest

from repro import (
    IORequest,
    MachineSpec,
    PatternPayload,
    Simulation,
    UniviStorConfig,
)
from repro.core.resilience import DataLossError
from repro.units import KiB, MiB


def setup(resilience=True, flush=False):
    config = UniviStorConfig.dram_only(resilience_enabled=resilience,
                                       flush_enabled=flush)
    sim = Simulation(MachineSpec.small_test(nodes=2))
    sim.install_univistor(config)
    comm = sim.comm("app", 4, procs_per_node=2)
    return sim, comm


def write_blocks(sim, comm, path, block, sync=True):
    def app():
        fh = yield from sim.open(comm, path, "w", fstype="univistor")
        yield from fh.write_at_all([
            IORequest.contiguous_block(r, block, PatternPayload(r))
            for r in range(comm.size)])
        yield from fh.close()
        if sync:
            yield from fh.sync()  # waits for flush AND replication
        return fh

    return sim.run_to_completion(app())


def read_all(sim, comm, path, block):
    def app():
        fh = yield from sim.open(comm, path, "r", fstype="univistor")
        data = yield from fh.read_at_all([
            IORequest(r, r * block, block) for r in range(comm.size)])
        yield from fh.close()
        return data

    return sim.run_to_completion(app())


class TestReplication:
    def test_replication_happens_asynchronously(self):
        sim, comm = setup()
        block = int(1 * MiB)

        def app():
            fh = yield from sim.open(comm, "/f", "w", fstype="univistor")
            yield from fh.write_at_all([
                IORequest.contiguous_block(r, block, PatternPayload(r))
                for r in range(comm.size)])
            yield from fh.close()
            t_close = sim.now
            yield from fh.sync()
            return t_close, sim.now

        t_close, t_sync = sim.run_to_completion(app())
        assert t_sync > t_close, "replication runs after close"
        rep, = sim.telemetry.select(op="replicate")
        assert rep.nbytes == pytest.approx(comm.size * block)

    def test_no_replication_when_disabled(self):
        sim, comm = setup(resilience=False)
        write_blocks(sim, comm, "/f", int(64 * KiB))
        assert sim.telemetry.select(op="replicate") == []

    def test_pfs_only_data_needs_no_replication(self):
        sim = Simulation(MachineSpec.small_test(nodes=2))
        sim.install_univistor(UniviStorConfig.pfs_only(
            resilience_enabled=True, flush_enabled=False))
        comm = sim.comm("app", 4, procs_per_node=2)
        write_blocks(sim, comm, "/f", int(64 * KiB))
        assert sim.telemetry.select(op="replicate") == []

    def test_incremental_replication(self):
        sim, comm = setup()
        block = int(64 * KiB)

        def app():
            for round_ in range(2):
                fh = yield from sim.open(comm, "/f", "w",
                                         fstype="univistor")
                yield from fh.write_at_all([
                    IORequest(r, (comm.size * round_ + r) * block, block,
                              PatternPayload(10 * round_ + r))
                    for r in range(comm.size)])
                yield from fh.close()
                yield from fh.sync()

        sim.run_to_completion(app())
        reps = sim.telemetry.select(op="replicate")
        assert len(reps) == 2
        assert reps[1].nbytes == pytest.approx(comm.size * block)


class TestFailover:
    def test_read_survives_node_failure(self):
        sim, comm = setup()
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.fail_node(0)  # ranks 0 and 1 lived there
        data = read_all(sim, comm, "/f", block)
        for r in range(comm.size):
            blob = b"".join(e.materialize() for e in data[r])
            assert blob == PatternPayload(r).materialize(0, block), \
                f"rank {r} lost data"

    def test_read_without_resilience_raises(self):
        sim, comm = setup(resilience=False)
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.fail_node(0)
        with pytest.raises(DataLossError):
            read_all(sim, comm, "/f", block)

    def test_failure_before_replication_finishes_raises(self):
        sim, comm = setup()
        block = int(4 * MiB)

        def app():
            fh = yield from sim.open(comm, "/f", "w", fstype="univistor")
            yield from fh.write_at_all([
                IORequest.contiguous_block(r, block, PatternPayload(r))
                for r in range(comm.size)])
            yield from fh.close()
            # Fail immediately — the async replication has not run yet.
            sim.univistor.fail_node(0)
            fh2 = yield from sim.open(comm, "/f", "r", fstype="univistor")
            yield from fh2.read_at_all([IORequest(0, 0, block)])

        with pytest.raises(DataLossError):
            sim.run_to_completion(app())

    def test_surviving_node_data_unaffected(self):
        sim, comm = setup(resilience=False)
        block = int(128 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.fail_node(0)
        # Ranks 2,3 live on node 1: still readable without resilience.
        def app():
            fh = yield from sim.open(comm, "/f", "r", fstype="univistor")
            data = yield from fh.read_at_all(
                [IORequest(2, 2 * block, block)])
            yield from fh.close()
            return data

        data = sim.run_to_completion(app())
        blob = b"".join(e.materialize() for e in data[2])
        assert blob == PatternPayload(2).materialize(0, block)

    def test_fail_unknown_node_rejected(self):
        sim, _ = setup()
        with pytest.raises(ValueError):
            sim.univistor.fail_node(99)

    def test_failover_reads_charged_as_bb(self):
        sim, comm = setup()
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.fail_node(0)
        system = sim.univistor
        session = system.session("/f")

        def app():
            out = yield from system.read_service.read_collective(
                session, comm, [IORequest(0, 0, block)], comm.name)
            return out

        _, breakdown = sim.run_to_completion(app())
        assert breakdown.bb_bytes == block
        assert breakdown.local_bytes == 0


class TestDataLossErrorPayload:
    """The structured fields the chaos harness (and callers) rely on."""

    def test_fields_on_unreplicated_loss(self):
        sim, comm = setup(resilience=False)
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.fail_node(0)
        with pytest.raises(DataLossError) as err:
            read_all(sim, comm, "/f", block)
        e = err.value
        assert e.fid == sim.univistor.session("/f").fid
        assert e.rank in (0, 1)  # ranks that lived on node 0
        assert e.node == 0
        assert e.offset == e.rank * block
        assert e.length == block

    def test_fields_on_replica_gap(self):
        sim, comm = setup()
        block = int(4 * MiB)

        def app():
            fh = yield from sim.open(comm, "/f", "w", fstype="univistor")
            yield from fh.write_at_all([
                IORequest.contiguous_block(r, block, PatternPayload(r))
                for r in range(comm.size)])
            yield from fh.close()
            sim.univistor.fail_node(0)  # replication never ran
            fh2 = yield from sim.open(comm, "/f", "r", fstype="univistor")
            yield from fh2.read_at_all([IORequest(1, block, block)])

        with pytest.raises(DataLossError) as err:
            sim.run_to_completion(app())
        e = err.value
        assert e.rank == 1
        assert e.node == 0
        assert e.offset is not None and e.length is not None

    def test_metadata_unavailable_is_dataloss(self):
        # MetadataUnavailableError subclasses DataLossError, so one
        # except clause covers both loss shapes — and carries the fid.
        from repro.core.metadata import MetadataUnavailableError
        sim = Simulation(MachineSpec.small_test(nodes=2))
        sim.install_univistor(UniviStorConfig.dram_only(
            flush_enabled=False, metadata_replication=1))
        comm = sim.comm("app", 4, procs_per_node=2)
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.crash_server(0)
        with pytest.raises(MetadataUnavailableError) as err:
            read_all(sim, comm, "/f", block)
        assert isinstance(err.value, DataLossError)
        assert err.value.fid == sim.univistor.session("/f").fid


class TestBackToBackCrashes:
    """Re-replication must restore redundancy fast enough that a second
    node crash does not lose data whose first replica just died."""

    def _setup(self, nodes=3):
        config = UniviStorConfig.hardened(flush_enabled=False)
        sim = Simulation(MachineSpec.small_test(nodes=nodes))
        sim.install_univistor(config)
        comm = sim.comm("app", nodes * 2, procs_per_node=2)
        return sim, comm

    def test_rereplication_after_two_node_crashes(self):
        sim, comm = self._setup()
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        sim.univistor.crash_node(0)
        sim.run()  # detection, takeover, re-replication, scrub settle
        sim.univistor.crash_node(1)
        sim.run()
        data = read_all(sim, comm, "/f", block)
        for r in range(comm.size):
            blob = b"".join(e.materialize() for e in data[r])
            assert blob == PatternPayload(r).materialize(0, block), \
                f"rank {r} lost data after back-to-back crashes"

    def test_second_crash_before_rereplication_is_structured_loss(self):
        sim, comm = self._setup()
        block = int(256 * KiB)
        write_blocks(sim, comm, "/f", block)
        # Both crashes land in the same instant: the recovery pass never
        # gets to run.  The replica tier (shared BB) survives, so reads
        # still succeed — but if anything is lost it must be structured.
        sim.univistor.crash_node(0)
        sim.univistor.crash_node(1)
        sim.run()
        try:
            data = read_all(sim, comm, "/f", block)
        except DataLossError as e:
            assert e.fid is not None
        else:
            for r in range(comm.size):
                blob = b"".join(e.materialize() for e in data[r])
                assert blob == PatternPayload(r).materialize(0, block)


class TestResilienceRequiresBB:
    def test_missing_bb_rejected(self):
        spec = MachineSpec.small_test(nodes=1)
        spec = spec.__class__(**{**spec.__dict__, "burst_buffer": None})
        sim = Simulation(spec)
        with pytest.raises(ValueError, match="burst buffer"):
            sim.install_univistor(UniviStorConfig.dram_only(
                resilience_enabled=True))
