"""Unit tests for the interference-aware scheduler service (§II-C)."""

import pytest

from repro.cluster.cpu import PlacementPolicy
from repro.cluster.spec import MachineSpec
from repro.cluster.topology import Machine
from repro.core.config import UniviStorConfig
from repro.core.scheduler import SchedulerService
from repro.sim import Engine


def make(interference_aware=True, nodes=2):
    machine = Machine(Engine(), MachineSpec.cori_haswell(nodes=nodes))
    machine.register_program("uv-server", nodes * 2, kind="server",
                             procs_per_node=2)
    machine.register_program("app", nodes * 32, kind="client",
                             procs_per_node=32)
    config = UniviStorConfig()
    if not interference_aware:
        config = config.without("interference_aware")
    return machine, SchedulerService(machine, config, "uv-server")


class TestPolicySelection:
    def test_ia_config_uses_ia_policy(self):
        _, sched = make(True)
        assert sched.policy is PlacementPolicy.INTERFERENCE_AWARE

    def test_cfs_config_uses_cfs_policy(self):
        _, sched = make(False)
        assert sched.policy is PlacementPolicy.CFS


class TestEfficiencies:
    def test_ia_write_efficiency_high(self):
        machine, sched = make(True)
        eff = sched.client_efficiency(machine.nodes[0], "app", "write")
        assert eff > 0.9

    def test_cfs_write_efficiency_lower(self):
        machine, sched = make(False)
        eff = sched.client_efficiency(machine.nodes[0], "app", "write")
        assert eff < 0.8

    def test_read_less_sensitive_than_write(self):
        machine, sched = make(False)
        w = sched.client_efficiency(machine.nodes[0], "app", "write")
        r = sched.client_efficiency(machine.nodes[0], "app", "read")
        assert r >= w

    def test_unknown_op_rejected(self):
        machine, sched = make(True)
        with pytest.raises(KeyError):
            sched.client_efficiency(machine.nodes[0], "app", "teleport")

    def test_efficiency_cached(self):
        machine, sched = make(False)
        a = sched.client_efficiency(machine.nodes[0], "app", "write")
        b = sched.client_efficiency(machine.nodes[0], "app", "write")
        assert a == b

    def test_mean_flush_efficiency_bounds(self):
        _, sched = make(True)
        assert 0.0 < sched.mean_flush_efficiency() <= 1.0


class TestFlushMigration:
    def test_begin_flush_toggles_machine_state(self):
        machine, sched = make(True)
        sched.begin_flush()
        assert machine.nodes[0].flush_active
        sched.end_flush()
        assert not machine.nodes[0].flush_active

    def test_flush_is_refcounted(self):
        machine, sched = make(True)
        sched.begin_flush()
        sched.begin_flush()
        sched.end_flush()
        assert machine.nodes[0].flush_active, "still one flush outstanding"
        sched.end_flush()
        assert not machine.nodes[0].flush_active

    def test_end_without_begin_raises(self):
        _, sched = make(True)
        with pytest.raises(RuntimeError):
            sched.end_flush()

    def test_cfs_never_migrates(self):
        machine, sched = make(False)
        sched.begin_flush()
        # Under CFS the toggle is a no-op: placements don't react.
        assert not machine.nodes[0].flush_active
        sched.end_flush()

    def test_ia_flush_efficiency_improves_with_migration(self):
        machine, sched_ia = make(True)
        machine2, sched_cfs = make(False)
        sched_ia.begin_flush()
        ia = sched_ia.mean_flush_efficiency()
        sched_ia.end_flush()
        cfs = sched_cfs.mean_flush_efficiency()
        assert ia > cfs, "IA migration must free the flushing servers"
