"""Tests for the telemetry timeline tool — including structural overlap
assertions on a real workflow run."""

import pytest

from repro import MachineSpec, Simulation, UniviStorConfig
from repro.analysis.metrics import Telemetry
from repro.analysis.timeline import Lane, build_timeline
from repro.sim import Engine
from repro.workloads import BdCatsIO, VpicIO


def synthetic_telemetry():
    engine = Engine()
    tel = Telemetry(engine)
    intervals = [("a", "write", 0.0, 2.0), ("a", "write", 4.0, 6.0),
                 ("a", "flush", 2.0, 5.0), ("b", "read", 1.0, 3.0)]
    # Telemetry stamps t_end with the engine clock: replay in end order.
    for app, op, t0, t1 in sorted(intervals, key=lambda iv: iv[3]):
        engine.run(until=t1)
        tel.record(app=app, op=op, path="/f", t_start=t0)
    return tel


class TestLane:
    def test_busy_time(self):
        lane = Lane("a", "write", [(0, 2), (4, 6)])
        assert lane.busy_time == 4.0

    def test_overlap_computation(self):
        a = Lane("a", "write", [(0, 2), (4, 6)])
        b = Lane("b", "read", [(1, 5)])
        assert a.overlaps(b) == pytest.approx(2.0)  # [1,2) + [4,5)
        assert b.overlaps(a) == pytest.approx(2.0)

    def test_disjoint_lanes_no_overlap(self):
        a = Lane("a", "write", [(0, 1)])
        b = Lane("b", "read", [(2, 3)])
        assert a.overlaps(b) == 0.0


class TestBuildTimeline:
    def test_lanes_grouped_by_app_op(self):
        tl = build_timeline(synthetic_telemetry())
        assert {(l.app, l.op) for l in tl.lanes} == {
            ("a", "write"), ("a", "flush"), ("b", "read")}
        assert tl.lane("a", "write").intervals == [(0.0, 2.0), (4.0, 6.0)]

    def test_horizon(self):
        tl = build_timeline(synthetic_telemetry())
        assert tl.t_end == 6.0

    def test_filters(self):
        tel = synthetic_telemetry()
        tl = build_timeline(tel, ops=["write"])
        assert [l.op for l in tl.lanes] == ["write"]
        tl = build_timeline(tel, apps=["b"])
        assert [l.app for l in tl.lanes] == ["b"]

    def test_unknown_lane_raises(self):
        tl = build_timeline(synthetic_telemetry())
        with pytest.raises(KeyError):
            tl.lane("z", "write")

    def test_render_contains_lanes_and_glyphs(self):
        tl = build_timeline(synthetic_telemetry())
        out = tl.render(width=40)
        assert "a/write" in out
        assert "#" in out and "=" in out and "+" in out

    def test_render_empty(self):
        engine = Engine()
        tl = build_timeline(Telemetry(engine))
        assert tl.render() == "(empty timeline)"


class TestWorkflowOverlapStructure:
    def run_workflow(self, overlap):
        sim = Simulation(MachineSpec.cori_haswell(nodes=2))
        sim.install_univistor(
            UniviStorConfig.dram_only(workflow_enabled=overlap))
        wcomm = sim.comm("vpic", 32, procs_per_node=16)
        rcomm = sim.comm("bdcats", 32, procs_per_node=16)
        vpic = VpicIO(sim, wcomm, "univistor", steps=3, compute_seconds=0,
                      particles_per_proc=2 * 2 ** 20)
        bdcats = BdCatsIO(sim, rcomm, vpic, "univistor")
        if overlap:
            w = sim.spawn(vpic.run(sync_last=False), name="w")
            r = sim.spawn(bdcats.run(), name="r")
            sim.run()
            assert w.ok and r.ok
        else:
            def seq():
                yield from vpic.run(sync_last=False)
                yield from bdcats.run()

            sim.run_to_completion(seq())
        return build_timeline(sim.telemetry, ops=["write", "read"])

    def test_overlap_mode_interleaves_reads_and_writes(self):
        tl = self.run_workflow(overlap=True)
        writes = tl.lane("vpic", "write")
        reads = tl.lane("bdcats", "read")
        assert writes.overlaps(reads) > 0, \
            "workflow overlap should interleave producer and consumer"

    def test_sequential_mode_never_interleaves(self):
        tl = self.run_workflow(overlap=False)
        writes = tl.lane("vpic", "write")
        reads = tl.lane("bdcats", "read")
        assert writes.overlaps(reads) == pytest.approx(0.0, abs=1e-9)
