"""Unit + property tests for extent maps and payloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.datamodel import (
    BytesPayload,
    Extent,
    ExtentMap,
    PatternPayload,
    ZeroPayload,
)


class TestPayloads:
    def test_bytes_payload_slices(self):
        p = BytesPayload(b"hello world")
        assert p.materialize(0, 5) == b"hello"
        assert p.materialize(6, 5) == b"world"

    def test_bytes_payload_out_of_range(self):
        p = BytesPayload(b"abc")
        with pytest.raises(IndexError):
            p.materialize(1, 10)

    def test_pattern_deterministic(self):
        assert (PatternPayload(7).materialize(100, 64)
                == PatternPayload(7).materialize(100, 64))

    def test_pattern_seeds_differ(self):
        assert (PatternPayload(1).materialize(0, 64)
                != PatternPayload(2).materialize(0, 64))

    def test_pattern_slice_consistent_with_whole(self):
        whole = PatternPayload(3).materialize(0, 256)
        part = PatternPayload(3).materialize(100, 50)
        assert whole[100:150] == part

    def test_zero_payload_zeros(self):
        assert ZeroPayload().materialize(5, 4) == b"\x00" * 4

    def test_zero_payload_singleton(self):
        assert ZeroPayload() is ZeroPayload()

    def test_same_source(self):
        assert PatternPayload(4).same_source(PatternPayload(4))
        assert not PatternPayload(4).same_source(PatternPayload(5))
        assert not PatternPayload(4).same_source(ZeroPayload())
        assert BytesPayload(b"x").same_source(BytesPayload(b"x"))


class TestExtent:
    def test_end(self):
        e = Extent(10, 5, ZeroPayload())
        assert e.end == 15

    def test_slice_preserves_payload_alignment(self):
        e = Extent(10, 10, PatternPayload(1), payload_offset=100)
        s = e.slice(12, 17)
        assert s.offset == 12 and s.length == 5
        assert s.payload_offset == 102

    def test_slice_out_of_range(self):
        e = Extent(10, 10, ZeroPayload())
        with pytest.raises(ValueError):
            e.slice(5, 12)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Extent(-1, 5, ZeroPayload())
        with pytest.raises(ValueError):
            Extent(0, 0, ZeroPayload())

    def test_abuts(self):
        a = Extent(0, 10, PatternPayload(1), 0)
        b = Extent(10, 5, PatternPayload(1), 10)
        c = Extent(10, 5, PatternPayload(1), 11)
        assert a.abuts(b)
        assert not a.abuts(c)


class TestExtentMapBasics:
    def test_empty(self):
        m = ExtentMap()
        assert m.size == 0
        assert m.bytes_stored == 0
        assert m.read(0, 10)[0].payload.same_source(ZeroPayload())

    def test_single_write_read_back(self):
        m = ExtentMap()
        m.write(100, 50, PatternPayload(1), 0)
        ext, = m.read(100, 50)
        assert ext.offset == 100 and ext.length == 50
        assert ext.payload.same_source(PatternPayload(1))

    def test_read_with_holes(self):
        m = ExtentMap()
        m.write(10, 10, PatternPayload(1))
        parts = m.read(0, 30)
        assert [(e.offset, e.length) for e in parts] == [
            (0, 10), (10, 10), (20, 10)]
        assert parts[0].payload.same_source(ZeroPayload())
        assert parts[2].payload.same_source(ZeroPayload())

    def test_overwrite_middle_splits(self):
        m = ExtentMap()
        m.write(0, 30, PatternPayload(1), 0)
        m.write(10, 10, PatternPayload(2), 0)
        exts = m.read(0, 30)
        assert [(e.offset, e.length, e.payload.describe()) for e in exts] == [
            (0, 10, "pattern[1]"),
            (10, 10, "pattern[2]"),
            (20, 10, "pattern[1]"),
        ]
        # The tail keeps its original payload alignment.
        assert exts[2].payload_offset == 20

    def test_overwrite_exact(self):
        m = ExtentMap()
        m.write(0, 10, PatternPayload(1))
        m.write(0, 10, PatternPayload(2))
        ext, = m.read(0, 10)
        assert ext.payload.same_source(PatternPayload(2))

    def test_adjacent_writes_merge(self):
        m = ExtentMap()
        m.write(0, 10, PatternPayload(1), 0)
        m.write(10, 10, PatternPayload(1), 10)
        assert len(m) == 1

    def test_non_continuation_does_not_merge(self):
        m = ExtentMap()
        m.write(0, 10, PatternPayload(1), 0)
        m.write(10, 10, PatternPayload(1), 0)  # restarts payload at 0
        assert len(m) == 2

    def test_size_tracks_last_byte(self):
        m = ExtentMap()
        m.write(100, 10, PatternPayload(1))
        assert m.size == 110

    def test_zero_length_write_noop(self):
        m = ExtentMap()
        m.write(0, 0, PatternPayload(1))
        assert len(m) == 0

    def test_read_bytes_materialises(self):
        m = ExtentMap()
        m.write(2, 3, BytesPayload(b"abc"))
        assert m.read_bytes(0, 7) == b"\x00\x00abc\x00\x00"

    def test_same_content(self):
        a, b = ExtentMap(), ExtentMap()
        a.write(0, 20, PatternPayload(1), 0)
        b.write(0, 10, PatternPayload(1), 0)
        b.write(10, 10, PatternPayload(1), 10)
        assert a.same_content(b, 0, 20)
        b.write(5, 1, PatternPayload(9), 0)
        assert not a.same_content(b, 0, 20)


# -- property-based tests ---------------------------------------------------

write_op = st.tuples(
    st.integers(min_value=0, max_value=200),   # offset
    st.integers(min_value=1, max_value=64),    # length
    st.integers(min_value=0, max_value=5),     # payload seed
    st.integers(min_value=0, max_value=100),   # payload offset
)


class TestExtentMapProperties:
    @given(st.lists(write_op, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_bytes(self, ops):
        """The extent map must describe exactly the bytes a plain buffer holds."""
        m = ExtentMap()
        ref = bytearray(512)
        for offset, length, seed, poff in ops:
            m.write(offset, length, PatternPayload(seed), poff)
            ref[offset:offset + length] = PatternPayload(seed).materialize(
                poff, length)
        assert m.read_bytes(0, 512) == bytes(ref)

    @given(st.lists(write_op, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_invariants_hold(self, ops):
        m = ExtentMap()
        for offset, length, seed, poff in ops:
            m.write(offset, length, PatternPayload(seed), poff)
            m.check_invariants()

    @given(st.lists(write_op, max_size=20),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_read_covers_exactly_requested_range(self, ops, offset, length):
        m = ExtentMap()
        for o, l, s, p in ops:
            m.write(o, l, PatternPayload(s), p)
        parts = m.read(offset, length)
        assert parts[0].offset == offset
        assert parts[-1].end == offset + length
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.offset

    @given(st.lists(write_op, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bytes_stored_le_span(self, ops):
        m = ExtentMap()
        for o, l, s, p in ops:
            m.write(o, l, PatternPayload(s), p)
        assert m.bytes_stored <= m.size
